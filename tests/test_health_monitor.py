"""Tests for the failure detector (``repro.health.monitor``)."""

import pytest

from repro import errors
from repro.cluster import build_local_cluster
from repro.health import (
    DEAD,
    HEALTHY,
    HealthConfig,
    HealthMonitor,
    PROBATION,
    SUSPECT,
)
from repro.log.config import LogConfig
from repro.log.layer import LogLayer
from repro.rpc import messages as m
from repro.rpc.retry import RetryingTransport, RetryPolicy, wrap_transport


class FakeProbeChannel:
    """Just enough transport for attach() + probe(): a server list and a
    set of currently-down servers."""

    def __init__(self, servers=("s0", "s1", "s2"), down=()):
        self._servers = list(servers)
        self.down = set(down)
        self.probed = []

    def server_ids(self):
        return list(self._servers)

    def probe(self, server_id):
        self.probed.append(server_id)
        if server_id in self.down:
            raise errors.ServerUnavailableError(
                "server %s is down" % server_id)


def fail(monitor, server_id, times=1):
    for _ in range(times):
        monitor.observe(server_id, ok=False)


class TestStateMachine:
    def test_starts_healthy_and_stays_healthy_on_success(self):
        monitor = HealthMonitor()
        assert monitor.status("s0") == HEALTHY
        for _ in range(20):
            monitor.observe("s0", ok=True)
        assert monitor.status("s0") == HEALTHY
        assert monitor.is_usable("s0")

    def test_consecutive_failures_suspect_then_dead(self):
        monitor = HealthMonitor()
        fail(monitor, "s0", times=3)
        # EWMA after three straight failures is 1 - 0.7^3 ≈ 0.657 ≥ 0.5.
        assert monitor.status("s0") == SUSPECT
        assert monitor.is_usable("s0")  # suspect still takes traffic
        fail(monitor, "s0", times=3)
        assert monitor.status("s0") == DEAD
        assert not monitor.is_usable("s0")
        assert monitor.dead_servers() == ["s0"]

    def test_one_success_resets_the_consecutive_count(self):
        monitor = HealthMonitor()
        fail(monitor, "s0", times=2)
        monitor.observe("s0", ok=True)
        fail(monitor, "s0", times=2)
        assert monitor.status("s0") == HEALTHY

    def test_chaos_burst_bound_never_kills_a_live_server(self):
        # The chaos plan forces a clean call after 3 consecutive faults
        # per server, so a *live* server's worst case is endless
        # (3 failures, 1 success) cycles. The detector may suspect it,
        # but must never declare it dead — that is the safety half of
        # the detection argument (the liveness half: a crashed server
        # fails everything and crosses dead_consecutive=6 quickly).
        monitor = HealthMonitor()
        for _ in range(50):
            fail(monitor, "s0", times=3)
            monitor.observe("s0", ok=True)
            assert monitor.status("s0") != DEAD

    def test_two_retry_exhaustions_prove_dead(self):
        monitor = HealthMonitor()
        monitor.note_exhausted("s0")
        assert monitor.status("s0") != DEAD
        monitor.note_exhausted("s0")
        assert monitor.status("s0") == DEAD

    def test_success_between_exhaustions_resets_them(self):
        monitor = HealthMonitor()
        monitor.note_exhausted("s0")
        monitor.observe("s0", ok=True)
        monitor.note_exhausted("s0")
        assert monitor.status("s0") != DEAD

    def test_transitions_recorded_and_hooks_fired(self):
        monitor = HealthMonitor()
        seen = []
        monitor.on_transition(lambda sid, old, new: seen.append((sid, old,
                                                                 new)))
        fail(monitor, "s0", times=6)
        assert seen == [("s0", HEALTHY, SUSPECT), ("s0", SUSPECT, DEAD)]
        assert monitor.transitions == seen

    def test_readmission_needs_three_probe_successes(self):
        channel = FakeProbeChannel(down={"s0"})
        monitor = HealthMonitor()
        monitor.attach(channel)
        fail(monitor, "s0", times=6)
        assert monitor.status("s0") == DEAD
        assert not monitor.probe("s0")  # still down: verdict confirmed
        assert monitor.status("s0") == DEAD
        channel.down.clear()  # server comes back
        assert monitor.probe("s0")
        assert monitor.status("s0") == PROBATION
        assert not monitor.is_usable("s0")  # not yet trusted with data
        monitor.probe("s0")
        assert monitor.status("s0") == PROBATION
        monitor.probe("s0")
        assert monitor.status("s0") == HEALTHY

    def test_probation_failure_demotes_to_dead(self):
        channel = FakeProbeChannel(down={"s0"})
        monitor = HealthMonitor()
        monitor.attach(channel)
        fail(monitor, "s0", times=6)
        channel.down.clear()
        monitor.probe("s0")
        assert monitor.status("s0") == PROBATION
        channel.down.add("s0")  # flaps right back down
        monitor.probe("s0")
        assert monitor.status("s0") == DEAD

    def test_automatic_probe_fires_on_the_interval(self):
        channel = FakeProbeChannel(down={"s0"})
        monitor = HealthMonitor()
        monitor.attach(channel)
        fail(monitor, "s0", times=6)          # observations 1..6
        channel.probed.clear()
        monitor.observe("s1", ok=True)        # 7
        assert channel.probed == []
        monitor.observe("s1", ok=True)        # 8 → probe the one suspect
        assert channel.probed == ["s0"]

    def test_probes_are_seeded_deterministic(self):
        def run():
            channel = FakeProbeChannel(down={"s0", "s1"})
            monitor = HealthMonitor(seed=7)
            monitor.attach(channel)
            fail(monitor, "s0", times=6)
            fail(monitor, "s1", times=6)
            for _ in range(24):
                monitor.observe("s2", ok=True)
            return channel.probed

        assert run() == run()

    def test_config_validation(self):
        with pytest.raises(errors.ConfigError):
            HealthConfig(ewma_alpha=0.0).validate()
        with pytest.raises(errors.ConfigError):
            HealthConfig(dead_consecutive=1, suspect_consecutive=3).validate()

    def test_health_report_shape(self):
        monitor = HealthMonitor()
        fail(monitor, "s0", times=6)
        monitor.observe("s1", ok=True)
        report = monitor.health_report()
        assert report["observations"] == 7
        assert report["servers"]["s0"]["status"] == DEAD
        assert report["servers"]["s0"]["failures"] == 6
        assert report["servers"]["s1"]["successes"] == 1
        assert ("s0", SUSPECT, DEAD) in report["transitions"]


class TestRetryIntegration:
    def test_monitor_without_policy_is_rejected(self, cluster4):
        with pytest.raises(errors.ConfigError):
            wrap_transport(cluster4.transport, None,
                           monitor=HealthMonitor())

    def test_crashed_server_declared_dead_from_exhaustions(self, cluster4):
        monitor = HealthMonitor(seed=1)
        transport = RetryingTransport(
            cluster4.transport,
            RetryPolicy(max_attempts=3, base_backoff_s=0.0, seed=1),
            monitor=monitor)
        cluster4.servers["s2"].crash()
        for _ in range(2):
            with pytest.raises(errors.ServerUnavailableError):
                transport.call("s2", m.HoldsRequest(fids=()))
        assert monitor.status("s2") == DEAD
        # Live servers meanwhile accumulate successes, not suspicion.
        transport.call("s0", m.HoldsRequest(fids=()))
        assert monitor.status("s0") == HEALTHY

    def test_transport_health_report_counts_per_server(self, cluster4):
        monitor = HealthMonitor(seed=1)
        transport = RetryingTransport(
            cluster4.transport,
            RetryPolicy(max_attempts=2, base_backoff_s=0.0, seed=1),
            monitor=monitor)
        transport.call("s0", m.HoldsRequest(fids=()))
        cluster4.servers["s1"].crash()
        with pytest.raises(errors.ServerUnavailableError):
            transport.call("s1", m.HoldsRequest(fids=()))
        report = transport.health_report()
        assert report["servers"]["s0"]["successes"] == 1
        assert report["servers"]["s1"]["exhausted"] == 1
        assert report["servers"]["s1"]["failures"] >= 2  # every attempt
        assert report["totals"]["exhausted"] == 1

    def test_log_layer_health_report_merges_all_layers(self, cluster4):
        monitor = HealthMonitor(seed=3)
        log = LogLayer(cluster4.transport, cluster4.stripe_group(),
                       LogConfig(client_id=1,
                                 fragment_size=cluster4.config.fragment_size),
                       retry_policy=RetryPolicy(seed=3),
                       health_monitor=monitor)
        log.write_block(9, b"x" * 4000)
        log.flush().wait()
        report = log.health_report()
        assert report["log"]["stripes_written"] == log.stripes_written
        assert report["log"]["failures_by_server"] == {}
        assert "servers" in report["transport"]
        assert "transitions" in report["monitor"]
        assert log.failures() == {}
