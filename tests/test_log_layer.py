"""Unit/integration tests for the log layer."""

import pytest

from repro import errors
from repro.log import LogConfig, LogLayer, StripeGroup
from repro.log.address import BlockAddress, fid_seq
from repro.log.records import RecordType
from repro.rpc import messages as m

SVC = 7
FRAG = 1 << 16


class TestAppends:
    def test_address_resolves_immediately_and_after_flush(self, log4):
        addr = log4.write_block(SVC, b"hello-swarm")
        assert log4.read(addr) == b"hello-swarm"  # from the write buffer
        log4.flush().wait()
        assert log4.read(addr) == b"hello-swarm"  # from the servers

    def test_useful_bytes_counted(self, log4):
        log4.write_block(SVC, b"x" * 1000)
        log4.write_block(SVC, b"y" * 500)
        assert log4.useful_bytes_written == 1500

    def test_block_too_large(self, log4):
        with pytest.raises(errors.LogError):
            log4.write_block(SVC, b"z" * (FRAG + 1))

    def test_max_block_size_accepted(self, log4):
        size = log4.max_block_size()
        addr = log4.write_block(SVC, b"m" * size)
        log4.flush().wait()
        assert len(log4.read(addr)) == size

    def test_records_get_increasing_lsns(self, log4):
        first = log4.write_record(SVC, RecordType.USER_BASE, b"a")
        second = log4.write_record(SVC, RecordType.USER_BASE, b"b")
        assert second.lsn > first.lsn

    def test_blocks_spill_into_next_fragment(self, log4):
        chunk = b"q" * 20000
        addresses = [log4.write_block(SVC, chunk) for _ in range(10)]
        fids = {addr.fid for addr in addresses}
        assert len(fids) > 1
        log4.flush().wait()
        for addr in addresses:
            assert log4.read(addr) == chunk


class TestStriping:
    def test_full_stripe_has_parity_on_distinct_servers(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for _ in range(12):
            log.write_block(SVC, b"f" * 30000)
        log.flush().wait()
        # Every stored fragment names its stripe in its header; check
        # parity placement by asking servers what they hold.
        held = {sid: server.list_fids()
                for sid, server in cluster4.servers.items()}
        total = sum(len(fids) for fids in held.values())
        assert total == len(set(fid for fids in held.values()
                                for fid in fids)), "fragment stored twice"
        assert log.stripes_written >= 2

    def test_raw_exceeds_useful_due_to_parity(self, log4):
        for _ in range(12):
            log4.write_block(SVC, b"f" * 30000)
        log4.flush().wait()
        assert log4.raw_bytes_written > log4.useful_bytes_written * 4 / 3.5

    def test_consecutive_fids_within_stripe(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for _ in range(12):
            log.write_block(SVC, b"f" * 30000)
        log.flush().wait()
        from repro.log.fragment import Fragment

        for sid, server in cluster4.servers.items():
            for fid in server.list_fids():
                fragment = Fragment.decode(server.retrieve(fid))
                header = fragment.header
                assert (header.stripe_base_fid <= fid
                        < header.stripe_base_fid + header.stripe_width)
                assert header.servers[fid - header.stripe_base_fid] == sid

    def test_single_server_group_writes_without_parity(self, cluster4):
        group = StripeGroup(("s0",))
        log = LogLayer(cluster4.transport, group,
                       LogConfig(client_id=2, fragment_size=FRAG))
        addr = log.write_block(SVC, b"solo")
        log.flush().wait()
        assert log.read(addr) == b"solo"
        assert log.raw_bytes_written < 2 * FRAG

    def test_flush_emits_short_stripe(self, cluster4):
        log = cluster4.make_log(client_id=1)
        addr = log.write_block(SVC, b"tiny")
        ticket = log.flush()
        ticket.wait()
        # one data fragment + one parity fragment
        assert ticket.fragment_count == 2
        assert log.read(addr) == b"tiny"

    def test_empty_flush_is_empty(self, log4):
        ticket = log4.flush()
        ticket.wait()
        assert ticket.fragment_count == 0

    def test_rotation_balances_servers(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for _ in range(60):
            log.write_block(SVC, b"r" * 30000)
        log.flush().wait()
        counts = [len(server.list_fids())
                  for server in cluster4.servers.values()]
        assert max(counts) - min(counts) <= 3


class TestDeleteAndUsage:
    def test_usage_listener_events(self, log4):
        events = []
        log4.add_usage_listener(
            lambda e, a, s, owner, info: events.append((e, s, owner)))
        addr = log4.write_block(SVC, b"watched")
        log4.delete_block(addr, SVC)
        assert events == [("create", 7, SVC), ("delete", 7, SVC)]

    def test_delete_writes_record(self, log4):
        addr = log4.write_block(SVC, b"dying")
        record = log4.delete_block(addr, SVC)
        assert record.rtype == RecordType.DELETE

    def test_delete_stripe_removes_fragments(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC, b"gone")
        ticket = log.flush()
        ticket.wait()
        fids = [fid for server in cluster4.servers.values()
                for fid in server.list_fids()]
        base = min(fids)
        log.delete_stripe(base, 2)
        assert all(not server.list_fids()
                   for server in cluster4.servers.values())


class TestCheckpoints:
    def test_checkpoint_marks_exactly_one_fragment(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC, b"pre")
        log.checkpoint(SVC, b"state-1").wait()
        marked = [server.last_marked(1)
                  for server in cluster4.servers.values()]
        assert sum(1 for fid in marked if fid) == 1

    def test_checkpoint_table_updated(self, log4):
        log4.checkpoint(SVC, b"s1").wait()
        table = log4.checkpoint_table
        assert SVC in table
        addr, lsn = table[SVC]
        assert lsn > 0

    def test_two_services_both_in_table(self, log4):
        log4.checkpoint(5, b"five").wait()
        log4.checkpoint(6, b"six").wait()
        assert set(log4.checkpoint_table) == {5, 6}

    def test_newest_marked_moves_forward(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC, b"one").wait()
        first = max(server.last_marked(1)
                    for server in cluster4.servers.values())
        log.write_block(SVC, b"between")
        log.checkpoint(SVC, b"two").wait()
        second = max(server.last_marked(1)
                     for server in cluster4.servers.values())
        assert second > first


class TestReads:
    def test_read_range_across_servers(self, log4):
        addr = log4.write_block(SVC, b"0123456789" * 100)
        log4.flush().wait()
        data = log4.read_range(addr.fid, addr.offset + 10, 10)
        assert data == b"0123456789"

    def test_read_after_locate_via_broadcast(self, cluster4):
        writer = cluster4.make_log(client_id=1)
        addr = writer.write_block(SVC, b"shared-data")
        writer.flush().wait()
        # A different log layer instance has no location cache.
        reader = cluster4.make_log(client_id=1)
        assert reader.read(addr) == b"shared-data"

    def test_read_with_server_down_reconstructs(self, cluster4):
        log = cluster4.make_log(client_id=1)
        addresses = [log.write_block(SVC, bytes([i]) * 25000)
                     for i in range(12)]
        log.flush().wait()
        cluster4.servers["s2"].crash()
        for i, addr in enumerate(addresses):
            assert log.read(addr) == bytes([i]) * 25000

    def test_short_read_detected(self, log4):
        addr = log4.write_block(SVC, b"abc")
        log4.flush().wait()
        bogus = BlockAddress(addr.fid, addr.offset, 2)
        assert log4.read(bogus) == b"ab"

    def test_read_returns_owned_bytes(self, log4):
        """Service boundary: callers get bytes, never borrowed views."""
        addr = log4.write_block(SVC, b"own-me")
        log4.flush().wait()
        assert type(log4.read(addr)) is bytes

    def test_failed_read_evicts_stale_location(self, cluster4):
        log = cluster4.make_log(client_id=1)
        addresses = [log.write_block(SVC, bytes([i]) * 25000)
                     for i in range(12)]
        log.flush().wait()
        stale = [a for a in addresses if log.known_location(a.fid) == "s1"]
        assert stale  # rotation places some data on every server
        cluster4.servers["s1"].crash()
        evictions_before = log.locations.evictions
        for i, addr in enumerate(addresses):
            assert log.read(addr) == bytes([i]) * 25000
        # Every placement pointing at the dead server was dropped, so
        # later reads go straight to reconstruction instead of retrying
        # the stale mapping.
        assert log.locations.evictions > evictions_before
        for addr in stale:
            assert log.known_location(addr.fid) != "s1"


class TestFlowControlSurface:
    def test_pending_events_exposed(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for _ in range(12):
            log.write_block(SVC, b"f" * 30000)
        # Stripes already dispatched show up before flush.
        assert len(log.pending_events()) > 0
        ticket = log.flush()
        assert log.pending_events() == []
        ticket.wait()

    def test_ticket_wait_raises_store_failure(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC, b"x")
        for server in cluster4.servers.values():
            server.crash()
        ticket = log.flush()
        with pytest.raises(errors.SwarmError):
            ticket.wait()


class TestPreallocation:
    def test_preallocated_stripes_round_trip(self, cluster4):
        from repro.log import LogConfig, LogLayer

        log = LogLayer(cluster4.transport, cluster4.stripe_group(),
                       LogConfig(client_id=3, fragment_size=FRAG,
                                 preallocate_stripes=True))
        addresses = [log.write_block(SVC, bytes([i]) * 20000)
                     for i in range(12)]
        log.flush().wait()
        for i, addr in enumerate(addresses):
            assert log.read(addr) == bytes([i]) * 20000

    def test_preallocation_reserves_before_store(self, cluster4):
        """With preallocation on, every stored fragment's slot was
        reserved first — observable as preallocate-then-fill."""
        from repro.log import LogConfig, LogLayer

        log = LogLayer(cluster4.transport, cluster4.stripe_group(),
                       LogConfig(client_id=3, fragment_size=FRAG,
                                 preallocate_stripes=True))
        log.write_block(SVC, b"x" * 1000)
        ticket = log.flush()
        ticket.wait()
        # Stores succeeded into preallocated slots; fragments readable.
        held = [fid for server in cluster4.servers.values()
                for fid in server.list_fids()]
        assert len(held) == ticket.fragment_count


class TestDegradedWritesAndReform:
    def test_flush_with_one_server_down_is_degraded_but_readable(self, cluster4):
        log = cluster4.make_log(client_id=1)
        cluster4.servers["s2"].crash()
        addresses = [log.write_block(SVC, bytes([i]) * 25000)
                     for i in range(12)]
        ticket = log.flush()
        with pytest.raises(errors.SwarmError):
            ticket.wait()                       # strict mode raises
        ticket.wait(allow_degraded=True)        # tolerant mode accepts
        assert ticket.failures()                # ...but reports the losses
        for i, addr in enumerate(addresses):
            assert log.read(addr) == bytes([i]) * 25000

    def test_reform_group_avoids_dead_server(self, cluster4):
        log = cluster4.make_log(client_id=1)
        cluster4.servers["s2"].crash()
        log.reform_group(StripeGroup(("s0", "s1", "s3")))
        addr = log.write_block(SVC, b"after-reform" * 1000)
        ticket = log.flush()
        ticket.wait()                           # clean: no dead member
        assert not ticket.failures()
        assert log.read(addr) == b"after-reform" * 1000

    def test_pre_reform_data_still_readable_after_reform(self, cluster4):
        log = cluster4.make_log(client_id=1)
        old = [log.write_block(SVC, bytes([i]) * 20000) for i in range(8)]
        log.flush().wait()
        cluster4.servers["s1"].crash()
        log.reform_group(StripeGroup(("s0", "s2", "s3")))
        new = log.write_block(SVC, b"fresh")
        log.flush().wait()
        for i, addr in enumerate(old):
            assert log.read(addr) == bytes([i]) * 20000
        assert log.read(new) == b"fresh"


class TestAdaptiveGroupCommit:
    """Latency-bounded group commit: batches drain by age, not only size.

    The clock is injected so the sim-time tests advance it
    deterministically; one test uses the real wall clock to prove the
    bound holds outside the lab.
    """

    def make_log(self, cluster, latency_ms, clock=None):
        return LogLayer(cluster.transport, cluster.stripe_group(),
                        LogConfig(client_id=1, fragment_size=FRAG,
                                  group_commit_latency_ms=latency_ms),
                        clock=clock)

    def test_negative_latency_rejected(self):
        with pytest.raises(errors.ConfigError):
            LogConfig(client_id=1, group_commit_latency_ms=-0.5)

    def test_stale_batch_drains_when_next_record_arrives(self, cluster4):
        now = [100.0]
        log = self.make_log(cluster4, latency_ms=50.0, clock=lambda: now[0])
        log.write_record(SVC, RecordType.USER_BASE, b"early")
        assert log.buffered_records() == 1
        now[0] += 0.049                  # still inside the bound
        log.write_record(SVC, RecordType.USER_BASE, b"joins")
        assert log.buffered_records() == 2
        assert log.group_commit_timeouts == 0
        now[0] += 0.002                  # the batch is now 51 ms old
        log.write_record(SVC, RecordType.USER_BASE, b"late")
        # The stale pair drained first; the newcomer opened a fresh
        # window instead of extending the old one indefinitely.
        assert log.buffered_records() == 1
        assert log.group_commit_timeouts == 1
        assert log.records_coalesced == 2

    def test_poll_drains_idle_batch(self, cluster4):
        now = [0.0]
        log = self.make_log(cluster4, latency_ms=20.0, clock=lambda: now[0])
        log.write_record(SVC, RecordType.USER_BASE, b"quiet client")
        assert log.poll_group_commit() is False   # too young
        assert log.buffered_records() == 1
        now[0] += 0.021
        assert log.poll_group_commit() is True
        assert log.buffered_records() == 0
        assert log.group_commit_timeouts == 1
        assert log.poll_group_commit() is False   # nothing left to drain

    def test_size_threshold_still_drains_without_timeout(self, cluster4):
        now = [0.0]
        log = self.make_log(cluster4, latency_ms=1000.0,
                            clock=lambda: now[0])
        for _ in range(80):
            log.write_record(SVC, RecordType.USER_BASE, b"r" * 100)
        assert log.group_commit_batches >= 1
        assert log.group_commit_timeouts == 0     # drained by bytes, not age

    def test_disabled_by_default(self, cluster4):
        now = [0.0]
        log = self.make_log(cluster4, latency_ms=0.0, clock=lambda: now[0])
        log.write_record(SVC, RecordType.USER_BASE, b"sits")
        now[0] += 3600.0
        assert log.poll_group_commit() is False   # no latency bound set
        assert log.buffered_records() == 1
        assert log.group_commit_timeouts == 0

    def test_wall_clock_bound_holds(self, cluster4):
        import time as _time
        log = self.make_log(cluster4, latency_ms=10.0)   # real clock
        log.write_record(SVC, RecordType.USER_BASE, b"tick")
        deadline = _time.monotonic() + 2.0
        while not log.poll_group_commit():
            if _time.monotonic() > deadline:
                raise AssertionError("latency bound never fired")
            _time.sleep(0.002)
        assert log.buffered_records() == 0
        assert log.group_commit_timeouts == 1

    def test_flush_drains_batch_and_records_survive(self, cluster4):
        now = [0.0]
        log = self.make_log(cluster4, latency_ms=100.0,
                            clock=lambda: now[0])
        first = log.write_record(SVC, RecordType.USER_BASE, b"alpha")
        second = log.write_record(SVC, RecordType.USER_BASE, b"beta")
        log.flush().wait()                        # flush drains, then ships
        assert log.buffered_records() == 0
        assert second.lsn > first.lsn
