"""Tests for checkpoint discovery, rollforward, and the log reader."""

import pytest

from repro.cluster.failures import FailureInjector
from repro.errors import SwarmError
from repro.log.reader import LogReader
from repro.log.records import RecordType
from repro.log.recovery import (
    find_newest_marked_fid,
    recover_service_state,
)
from repro.util.fids import make_fid

SVC_A, SVC_B = 11, 12


def _holder_of(cluster, fid):
    """The server currently storing ``fid``."""
    return next(sid for sid, server in cluster.servers.items()
                if server.holds(fid))


class TestLogReader:
    def test_fragments_in_fid_order(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(10):
            log.write_block(SVC_A, bytes([i]) * 30000)
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        fids = [f.fid for f in reader.fragments_from(make_fid(1, 1))]
        assert fids == sorted(fids)
        assert len(fids) >= 5

    def test_stops_at_end_of_log(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"only")
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        fragments = list(reader.fragments_from(make_fid(1, 1)))
        assert 1 <= len(fragments) <= 2

    def test_reads_through_failed_server(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(10):
            log.write_block(SVC_A, bytes([i]) * 30000)
        log.flush().wait()
        cluster4.servers["s0"].crash()
        reader = LogReader(cluster4.transport, "client-1")
        fragments = list(reader.fragments_from(make_fid(1, 1)))
        data_fragments = [f for f in fragments if not f.header.is_parity]
        blocks = sum(1 for f in data_fragments for item in f.items()
                     if item.record is None)
        assert blocks == 10

    def test_records_from_filters_lsn(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_record(SVC_A, RecordType.USER_BASE, b"one")
        cut = log.write_record(SVC_A, RecordType.USER_BASE, b"two").lsn
        log.write_record(SVC_A, RecordType.USER_BASE, b"three")
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        records = reader.records_from(make_fid(1, 1), min_lsn=cut)
        assert [r.payload for r in records
                if r.rtype == RecordType.USER_BASE] == [b"three"]


class TestCheckpointDiscovery:
    def test_find_newest_marked(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"first").wait()
        log.write_block(SVC_A, b"pad" * 1000)
        log.checkpoint(SVC_A, b"second").wait()
        newest = find_newest_marked_fid(cluster4.transport, 1)
        assert newest > 0
        reader = LogReader(cluster4.transport, "client-1")
        fragment = reader.read_fragment(newest)
        payloads = [r.payload for r in fragment.records()
                    if r.rtype == RecordType.CHECKPOINT]
        assert b"second" in payloads

    def test_no_checkpoints_returns_zero(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"data")
        log.flush().wait()
        assert find_newest_marked_fid(cluster4.transport, 1) == 0

    def test_discovery_raises_on_total_partition(self, cluster4):
        """With every server unreachable, discovery must fail loudly —
        silently returning 0 would replay an empty head as an empty log
        and quietly lose everything after the last checkpoint."""
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"cp").wait()
        for server in cluster4.servers.values():
            server.crash()
        with pytest.raises(SwarmError, match="none of .* answered"):
            find_newest_marked_fid(cluster4.transport, 1)

    def test_per_client_isolation(self, cluster4):
        log1 = cluster4.make_log(client_id=1)
        log2 = cluster4.make_log(client_id=2)
        log1.checkpoint(SVC_A, b"c1").wait()
        log2.checkpoint(SVC_A, b"c2").wait()
        fid1 = find_newest_marked_fid(cluster4.transport, 1)
        fid2 = find_newest_marked_fid(cluster4.transport, 2)
        from repro.util.fids import fid_client

        assert fid_client(fid1) == 1
        assert fid_client(fid2) == 2


class TestRecovery:
    def test_checkpoint_plus_tail_records(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"before")           # obsoleted by ckpt
        log.checkpoint(SVC_A, b"the-state").wait()
        log.write_block(SVC_A, b"after-1")
        log.write_block(SVC_A, b"after-2")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"the-state"
        creates = [r for r in recovered.records
                   if r.rtype == RecordType.CREATE]
        assert len(creates) == 2

    def test_no_checkpoint_replays_from_head(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"one")
        log.write_block(SVC_A, b"two")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state is None
        assert len([r for r in recovered.records
                    if r.rtype == RecordType.CREATE]) == 2

    def test_records_in_lsn_order(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(40):
            log.write_record(SVC_A, RecordType.USER_BASE, b"%d" % i)
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        lsns = [r.lsn for r in recovered.records]
        assert lsns == sorted(lsns)

    def test_services_recover_independently(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"A").wait()
        log.write_record(SVC_B, RecordType.USER_BASE, b"b-rec")
        log.checkpoint(SVC_B, b"B").wait()
        log.write_record(SVC_A, RecordType.USER_BASE, b"a-rec")
        log.flush().wait()
        rec_a = recover_service_state(cluster4.transport, 1, SVC_A)
        rec_b = recover_service_state(cluster4.transport, 1, SVC_B)
        assert rec_a.checkpoint_state == b"A"
        assert rec_b.checkpoint_state == b"B"
        assert [r.payload for r in rec_a.records
                if r.rtype == RecordType.USER_BASE] == [b"a-rec"]
        # B's record predates B's checkpoint, so it must NOT replay.
        assert [r.payload for r in rec_b.records
                if r.rtype == RecordType.USER_BASE] == []

    def test_old_service_checkpoint_still_found_via_table(self, cluster4):
        """SVC_A checkpoints once, then only SVC_B checkpoints; A's
        checkpoint must still be reachable from the newest marked
        fragment's checkpoint table."""
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"a-old").wait()
        for i in range(5):
            log.write_block(SVC_B, bytes([i]) * 20000)
            log.checkpoint(SVC_B, b"b-%d" % i).wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"a-old"

    def test_highest_fid_and_lsn_reported(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"x").wait()
        record = log.write_record(SVC_A, RecordType.USER_BASE, b"tail")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.highest_lsn >= record.lsn
        assert recovered.highest_fid > 0

    def test_adopted_state_prevents_fid_collisions(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"first-life")
        log.checkpoint(SVC_A, b"cp").wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        fresh = cluster4.make_log(client_id=1)
        fresh.adopt_recovered_state(recovered.highest_fid,
                                    recovered.highest_lsn,
                                    recovered.checkpoint_table)
        addr = fresh.write_block(SVC_A, b"second-life")
        fresh.flush().wait()  # would FragmentExists on collision
        assert fresh.read(addr) == b"second-life"

    def test_recovery_with_server_down_uses_parity(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(8):
            log.write_block(SVC_A, bytes([i]) * 25000)
        log.checkpoint(SVC_A, b"cp").wait()
        log.write_block(SVC_A, b"tail-block")
        log.flush().wait()
        cluster4.servers["s2"].crash()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"cp"

    def test_unflushed_tail_lost_after_crash(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"cp").wait()
        log.write_block(SVC_A, b"never-flushed")  # client crashes here
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        creates = [r for r in recovered.records
                   if r.rtype == RecordType.CREATE]
        assert creates == []

    def test_recover_twice_is_identical(self, cluster4):
        """Recovery is idempotent: recovering the same untouched log
        twice yields structurally identical RecoveredState — every
        field, every record, in the same order."""
        log = cluster4.make_log(client_id=1)
        for i in range(6):
            log.write_block(SVC_A, bytes([i + 1]) * 9000)
        log.checkpoint(SVC_A, b"cp").wait()
        log.write_record(SVC_A, RecordType.USER_BASE, b"tail")
        log.flush().wait()
        first = recover_service_state(cluster4.transport, 1, SVC_A)
        second = recover_service_state(cluster4.transport, 1, SVC_A)
        assert first == second

    def test_checkpoint_table_via_parity_reconstruction(self, cluster4):
        """The newest marked fragment's holder answers the last-marked
        query (its fragment map survived) but serves a torn image;
        loading the checkpoint table must fall through to parity
        reconstruction rather than give up or trust garbage."""
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"x" * 20000)
        log.checkpoint(SVC_A, b"golden").wait()
        marked = find_newest_marked_fid(cluster4.transport, 1)
        holder = _holder_of(cluster4, marked)
        FailureInjector(cluster4).tear_fragment(holder, marked,
                                                keep_fraction=0.4)
        # Discovery still names the torn fragment...
        assert find_newest_marked_fid(cluster4.transport, 1) == marked
        # ...and recovery still reaches the checkpoint through parity.
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"golden"

    def test_unreadable_checkpoint_entry_falls_back_to_scan(self, cluster4):
        """A checkpoint table naming a checkpoint whose fragment is
        gone beyond reconstruction: trusting the entry's LSN would skip
        every record up to it. Recovery must drop the entry and replay
        from the head instead."""
        log = cluster4.make_log(client_id=1)
        log.write_record(SVC_A, RecordType.USER_BASE, b"early")
        log.flush().wait()
        log.checkpoint(SVC_A, b"a-state").wait()
        log.write_block(SVC_B, b"pad" * 4000)
        log.checkpoint(SVC_B, b"b-state").wait()
        ckpt_fid = log.checkpoint_table[SVC_A][0].fid
        reader = LogReader(cluster4.transport, "client-1")
        header = reader.read_fragment(ckpt_fid).header
        sibling = next(f for f in header.sibling_fids() if f != ckpt_fid)
        injector = FailureInjector(cluster4)
        for doomed in (ckpt_fid, sibling):
            injector.tear_fragment(_holder_of(cluster4, doomed), doomed,
                                   keep_fraction=0.3)
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        # The named checkpoint could not be read back: no state adopted,
        # no LSN trusted — and the pre-checkpoint record replays.
        assert recovered.checkpoint_state is None
        payloads = [r.payload for r in recovered.records
                    if r.rtype == RecordType.USER_BASE]
        assert b"early" in payloads
