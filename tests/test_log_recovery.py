"""Tests for checkpoint discovery, rollforward, and the log reader."""

import pytest

from repro.log.reader import LogReader
from repro.log.records import RecordType
from repro.log.recovery import (
    find_newest_marked_fid,
    recover_service_state,
)
from repro.util.fids import make_fid

SVC_A, SVC_B = 11, 12


class TestLogReader:
    def test_fragments_in_fid_order(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(10):
            log.write_block(SVC_A, bytes([i]) * 30000)
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        fids = [f.fid for f in reader.fragments_from(make_fid(1, 1))]
        assert fids == sorted(fids)
        assert len(fids) >= 5

    def test_stops_at_end_of_log(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"only")
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        fragments = list(reader.fragments_from(make_fid(1, 1)))
        assert 1 <= len(fragments) <= 2

    def test_reads_through_failed_server(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(10):
            log.write_block(SVC_A, bytes([i]) * 30000)
        log.flush().wait()
        cluster4.servers["s0"].crash()
        reader = LogReader(cluster4.transport, "client-1")
        fragments = list(reader.fragments_from(make_fid(1, 1)))
        data_fragments = [f for f in fragments if not f.header.is_parity]
        blocks = sum(1 for f in data_fragments for item in f.items()
                     if item.record is None)
        assert blocks == 10

    def test_records_from_filters_lsn(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_record(SVC_A, RecordType.USER_BASE, b"one")
        cut = log.write_record(SVC_A, RecordType.USER_BASE, b"two").lsn
        log.write_record(SVC_A, RecordType.USER_BASE, b"three")
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        records = reader.records_from(make_fid(1, 1), min_lsn=cut)
        assert [r.payload for r in records
                if r.rtype == RecordType.USER_BASE] == [b"three"]


class TestCheckpointDiscovery:
    def test_find_newest_marked(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"first").wait()
        log.write_block(SVC_A, b"pad" * 1000)
        log.checkpoint(SVC_A, b"second").wait()
        newest = find_newest_marked_fid(cluster4.transport, 1)
        assert newest > 0
        reader = LogReader(cluster4.transport, "client-1")
        fragment = reader.read_fragment(newest)
        payloads = [r.payload for r in fragment.records()
                    if r.rtype == RecordType.CHECKPOINT]
        assert b"second" in payloads

    def test_no_checkpoints_returns_zero(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"data")
        log.flush().wait()
        assert find_newest_marked_fid(cluster4.transport, 1) == 0

    def test_per_client_isolation(self, cluster4):
        log1 = cluster4.make_log(client_id=1)
        log2 = cluster4.make_log(client_id=2)
        log1.checkpoint(SVC_A, b"c1").wait()
        log2.checkpoint(SVC_A, b"c2").wait()
        fid1 = find_newest_marked_fid(cluster4.transport, 1)
        fid2 = find_newest_marked_fid(cluster4.transport, 2)
        from repro.util.fids import fid_client

        assert fid_client(fid1) == 1
        assert fid_client(fid2) == 2


class TestRecovery:
    def test_checkpoint_plus_tail_records(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"before")           # obsoleted by ckpt
        log.checkpoint(SVC_A, b"the-state").wait()
        log.write_block(SVC_A, b"after-1")
        log.write_block(SVC_A, b"after-2")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"the-state"
        creates = [r for r in recovered.records
                   if r.rtype == RecordType.CREATE]
        assert len(creates) == 2

    def test_no_checkpoint_replays_from_head(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"one")
        log.write_block(SVC_A, b"two")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state is None
        assert len([r for r in recovered.records
                    if r.rtype == RecordType.CREATE]) == 2

    def test_records_in_lsn_order(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(40):
            log.write_record(SVC_A, RecordType.USER_BASE, b"%d" % i)
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        lsns = [r.lsn for r in recovered.records]
        assert lsns == sorted(lsns)

    def test_services_recover_independently(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"A").wait()
        log.write_record(SVC_B, RecordType.USER_BASE, b"b-rec")
        log.checkpoint(SVC_B, b"B").wait()
        log.write_record(SVC_A, RecordType.USER_BASE, b"a-rec")
        log.flush().wait()
        rec_a = recover_service_state(cluster4.transport, 1, SVC_A)
        rec_b = recover_service_state(cluster4.transport, 1, SVC_B)
        assert rec_a.checkpoint_state == b"A"
        assert rec_b.checkpoint_state == b"B"
        assert [r.payload for r in rec_a.records
                if r.rtype == RecordType.USER_BASE] == [b"a-rec"]
        # B's record predates B's checkpoint, so it must NOT replay.
        assert [r.payload for r in rec_b.records
                if r.rtype == RecordType.USER_BASE] == []

    def test_old_service_checkpoint_still_found_via_table(self, cluster4):
        """SVC_A checkpoints once, then only SVC_B checkpoints; A's
        checkpoint must still be reachable from the newest marked
        fragment's checkpoint table."""
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"a-old").wait()
        for i in range(5):
            log.write_block(SVC_B, bytes([i]) * 20000)
            log.checkpoint(SVC_B, b"b-%d" % i).wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"a-old"

    def test_highest_fid_and_lsn_reported(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"x").wait()
        record = log.write_record(SVC_A, RecordType.USER_BASE, b"tail")
        log.flush().wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.highest_lsn >= record.lsn
        assert recovered.highest_fid > 0

    def test_adopted_state_prevents_fid_collisions(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC_A, b"first-life")
        log.checkpoint(SVC_A, b"cp").wait()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        fresh = cluster4.make_log(client_id=1)
        fresh.adopt_recovered_state(recovered.highest_fid,
                                    recovered.highest_lsn,
                                    recovered.checkpoint_table)
        addr = fresh.write_block(SVC_A, b"second-life")
        fresh.flush().wait()  # would FragmentExists on collision
        assert fresh.read(addr) == b"second-life"

    def test_recovery_with_server_down_uses_parity(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(8):
            log.write_block(SVC_A, bytes([i]) * 25000)
        log.checkpoint(SVC_A, b"cp").wait()
        log.write_block(SVC_A, b"tail-block")
        log.flush().wait()
        cluster4.servers["s2"].crash()
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        assert recovered.checkpoint_state == b"cp"

    def test_unflushed_tail_lost_after_crash(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.checkpoint(SVC_A, b"cp").wait()
        log.write_block(SVC_A, b"never-flushed")  # client crashes here
        recovered = recover_service_state(cluster4.transport, 1, SVC_A)
        creates = [r for r in recovered.records
                   if r.rtype == RecordType.CREATE]
        assert creates == []
