"""Tests for the logical disk, cache, and compression services."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.cluster import build_local_cluster
from repro.services.cache import CacheService
from repro.services.compress import CompressionService
from repro.services.logical_disk import LogicalDiskService


@pytest.fixture
def disk_stack(cluster4):
    stack = cluster4.make_stack(client_id=1)
    disk = stack.push(LogicalDiskService(1))
    return stack, disk


class TestLogicalDisk:
    def test_write_read(self, disk_stack):
        _stack, disk = disk_stack
        disk.write(0, b"zero")
        assert disk.read(0) == b"zero"

    def test_overwrite_returns_new_data(self, disk_stack):
        _stack, disk = disk_stack
        disk.write(3, b"old")
        disk.write(3, b"new")
        assert disk.read(3) == b"new"

    def test_trim_removes(self, disk_stack):
        _stack, disk = disk_stack
        disk.write(1, b"x")
        disk.trim(1)
        assert not disk.exists(1)
        with pytest.raises(errors.ServiceError):
            disk.read(1)

    def test_read_unwritten_block(self, disk_stack):
        _stack, disk = disk_stack
        with pytest.raises(errors.ServiceError):
            disk.read(42)

    def test_negative_block_rejected(self, disk_stack):
        _stack, disk = disk_stack
        with pytest.raises(errors.ServiceError):
            disk.write(-1, b"x")

    def test_block_numbers_sorted(self, disk_stack):
        _stack, disk = disk_stack
        for block in (5, 1, 9):
            disk.write(block, b"d")
        assert disk.block_numbers() == [1, 5, 9]

    def test_recovery_from_checkpoint(self, cluster4, disk_stack):
        stack, disk = disk_stack
        disk.write(1, b"one")
        disk.write(2, b"two")
        stack.checkpoint_all()
        disk.write(2, b"two-v2")
        disk.write(3, b"three")
        stack.flush().wait()

        stack2 = cluster4.make_stack(client_id=1)
        disk2 = stack2.push(LogicalDiskService(1))
        stack2.recover_all()
        assert disk2.read(1) == b"one"
        assert disk2.read(2) == b"two-v2"
        assert disk2.read(3) == b"three"

    def test_recovery_of_trim(self, cluster4, disk_stack):
        stack, disk = disk_stack
        disk.write(7, b"doomed")
        stack.checkpoint_all()
        disk.trim(7)
        stack.flush().wait()
        stack2 = cluster4.make_stack(client_id=1)
        disk2 = stack2.push(LogicalDiskService(1))
        stack2.recover_all()
        assert not disk2.exists(7)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(st.tuples(
        st.sampled_from(["write", "trim", "read"]),
        st.integers(min_value=0, max_value=8),
        st.binary(min_size=1, max_size=200)), max_size=40))
    def test_matches_dict_oracle(self, ops):
        cluster = build_local_cluster(num_servers=3,
                                      fragment_size=1 << 16)
        stack = cluster.make_stack(client_id=1)
        disk = stack.push(LogicalDiskService(1))
        oracle = {}
        for op, block, data in ops:
            if op == "write":
                disk.write(block, data)
                oracle[block] = data
            elif op == "trim":
                disk.trim(block)
                oracle.pop(block, None)
            else:
                if block in oracle:
                    assert disk.read(block) == oracle[block]
                else:
                    assert not disk.exists(block)
        assert disk.block_numbers() == sorted(oracle)
        for block, data in oracle.items():
            assert disk.read(block) == data


class TestCache:
    def test_lru_eviction(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        cache = stack.push(CacheService(1, capacity_bytes=3000))
        disk = stack.push(LogicalDiskService(2))
        for block in range(4):
            disk.write(block, bytes([block]) * 1000)
        stack.flush().wait()
        for block in range(4):
            disk.read(block)
        assert cache.cached_bytes <= 3000
        # Oldest entries were evicted; newest are present.
        from repro.log.address import BlockAddress

        assert cache.hits + cache.misses >= 4

    def test_hit_rate_improves_on_reread(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        cache = stack.push(CacheService(1, capacity_bytes=1 << 20))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"hot" * 100)
        stack.flush().wait()
        disk.read(0)
        misses_after_first = cache.misses
        for _ in range(5):
            disk.read(0)
        assert cache.misses == misses_after_first
        assert cache.hits >= 5

    def test_oversized_entry_not_cached(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        cache = stack.push(CacheService(1, capacity_bytes=100))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"z" * 500)
        stack.flush().wait()
        disk.read(0)
        assert cache.cached_bytes == 0

    def test_clear_keeps_stats(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        cache = stack.push(CacheService(1))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"x")
        stack.flush().wait()
        disk.read(0)
        disk.read(0)
        hits = cache.hits
        cache.clear()
        assert cache.cached_bytes == 0
        assert cache.hits == hits

    def test_prefetch_caches_fragment_siblings(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        cache = stack.push(CacheService(1, capacity_bytes=1 << 20,
                                        prefetch_fragments=True))
        disk = stack.push(LogicalDiskService(2))
        for block in range(20):
            disk.write(block, bytes([block]) * 500)
        stack.flush().wait()
        disk.read(0)  # miss -> prefetches the whole fragment
        assert cache.prefetched_blocks > 1
        before = cache.misses
        disk.read(1)  # sibling in the same fragment: a hit now
        assert cache.misses == before


class TestPrefetch:
    def prefetching_stack(self, cluster, capacity=1 << 20):
        stack = cluster.make_stack(client_id=1)
        cache = stack.push(CacheService(1, capacity_bytes=capacity,
                                        prefetch_fragments=True))
        disk = stack.push(LogicalDiskService(2))
        return stack, cache, disk

    def test_prefetch_satisfied_read_still_counts_as_miss(self, cluster4):
        """Hit-rate accounting: the read that *triggered* the prefetch
        was a miss; only subsequent sibling reads are hits."""
        stack, cache, disk = self.prefetching_stack(cluster4)
        for block in range(8):
            disk.write(block, bytes([block + 1]) * 500)
        stack.flush().wait()
        disk.read(0)
        assert (cache.hits, cache.misses) == (0, 1)
        disk.read(1)
        disk.read(2)
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_prefetch_counts_only_blocks_not_records(self, cluster4):
        """A fragment holds the blocks *and* their CREATE records; only
        the blocks may land in the cache."""
        stack, cache, disk = self.prefetching_stack(cluster4)
        for block in range(6):
            disk.write(block, bytes([block + 1]) * 400)
        stack.flush().wait()
        disk.read(0)
        assert 1 < cache.prefetched_blocks <= 6

    def test_invalidated_prefetched_block_refetches(self, cluster4):
        stack, cache, disk = self.prefetching_stack(cluster4)
        for block in range(6):
            disk.write(block, bytes([block + 1]) * 400)
        stack.flush().wait()
        data = disk.read(0)
        bytes_before = cache.cached_bytes
        # Invalidate every cached entry for the fragment's blocks.
        for addr in list(cache._entries):
            cache.cache_invalidate(addr)
        assert cache.cached_bytes == 0
        assert cache.cached_bytes < bytes_before
        misses_before = cache.misses
        assert disk.read(0) == data    # miss again, prefetches again
        assert cache.misses == misses_before + 1

    def test_prefetch_failure_degrades_to_plain_read(self, cluster4):
        """An unreadable fragment must not break the lookup — the read
        falls through to the normal log path."""
        from repro.log.address import BlockAddress

        stack, cache, disk = self.prefetching_stack(cluster4)
        bogus = BlockAddress(make_fid_for_tests(), 0, 16)
        assert cache.cache_lookup(bogus) is None
        assert cache.misses == 1
        assert cache.prefetched_blocks == 0

    def test_prefetch_respects_capacity(self, cluster4):
        stack, cache, disk = self.prefetching_stack(cluster4, capacity=1500)
        for block in range(10):
            disk.write(block, bytes([block + 1]) * 500)
        stack.flush().wait()
        disk.read(9)
        assert cache.cached_bytes <= 1500


def make_fid_for_tests():
    from repro.util.fids import make_fid

    return make_fid(99, 12345)  # a fid no server holds


class TestCompression:
    def test_round_trip_through_stack(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        comp = stack.push(CompressionService(1))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"A" * 5000)
        stack.flush().wait()
        assert disk.read(0) == b"A" * 5000
        assert comp.ratio < 0.2

    def test_incompressible_stored_raw(self):
        import os

        comp = CompressionService(1)
        noise = os.urandom(1000)
        stored = comp.transform_block_down(2, noise)
        assert stored[0:1] == b"\x00"
        assert comp.transform_block_up(2, stored) == noise

    def test_empty_block_fails_loudly(self):
        comp = CompressionService(1)
        with pytest.raises(errors.ServiceError):
            comp.transform_block_up(2, b"")

    def test_unknown_header_rejected(self):
        comp = CompressionService(1)
        with pytest.raises(errors.ServiceError):
            comp.transform_block_up(2, b"\x07junk")

    @given(st.binary(max_size=5000))
    def test_round_trip_property(self, data):
        comp = CompressionService(1)
        assert comp.transform_block_up(2, comp.transform_block_down(2, data)) == data

    def test_compressed_data_survives_striping_and_failure(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        stack.push(CompressionService(1))
        disk = stack.push(LogicalDiskService(2))
        blob = (b"swarm " * 5000)  # compressible, multi-fragment scale
        disk.write(0, blob[:30000])
        disk.write(1, blob[30000:60000])
        stack.flush().wait()
        cluster4.servers["s1"].crash()
        assert disk.read(0) == blob[:30000]
        assert disk.read(1) == blob[30000:60000]


class TestEncryption:
    def _stack(self, cluster, nonce_source=None):
        import os

        from repro.services.encrypt import EncryptionService

        stack = cluster.make_stack(client_id=1)
        enc = stack.push(EncryptionService(
            1, key=b"0123456789abcdef",
            nonce_source=nonce_source or os.urandom))
        disk = stack.push(LogicalDiskService(2))
        return stack, enc, disk

    def test_round_trip(self, cluster4):
        _stack, enc, disk = self._stack(cluster4)
        disk.write(0, b"top secret payload")
        assert disk.read(0) == b"top secret payload"
        assert enc.blocks_encrypted >= 1

    def test_servers_only_see_ciphertext(self, cluster4):
        stack, _enc, disk = self._stack(cluster4)
        secret = b"the-plaintext-marker" * 10
        disk.write(0, secret)
        stack.flush().wait()
        for server in cluster4.servers.values():
            for fid in server.list_fids():
                assert secret not in server.retrieve(fid)

    def test_same_plaintext_distinct_ciphertext(self, cluster4):
        stack, _enc, disk = self._stack(cluster4)
        disk.write(0, b"same-data")
        disk.write(1, b"same-data")
        addr0, addr1 = disk._map[0], disk._map[1]
        assert stack.log.read(addr0) != stack.log.read(addr1)

    def test_tamper_detected(self, cluster4):
        stack, _enc, disk = self._stack(cluster4)
        disk.write(0, b"integrity matters")
        stack.flush().wait()
        # Flip one ciphertext byte at the server.
        server = next(s for s in cluster4.servers.values()
                      if s.list_fids())
        fid = server.list_fids()[0]
        slot = server.slots.slot_of(fid)
        image = bytearray(server.backend.read_slot(slot))
        addr = disk._map[0]
        image[addr.offset + 25] ^= 0x01
        server.backend.write_slot(slot, bytes(image))
        with pytest.raises(errors.ServiceError):
            disk.read(0)

    def test_short_key_rejected(self):
        from repro.services.encrypt import EncryptionService

        with pytest.raises(errors.ServiceError):
            EncryptionService(1, key=b"short")

    def test_wrong_key_cannot_read(self, cluster4):
        from repro.services.encrypt import EncryptionService

        stack, _enc, disk = self._stack(cluster4)
        disk.write(0, b"locked")
        stack.flush().wait()
        addr = disk._map[0]
        wrong = EncryptionService(9, key=b"another-16-bytes")
        stored = stack.log.read(addr)
        with pytest.raises(errors.ServiceError):
            wrong.transform_block_up(2, stored)

    def test_recovery_with_encryption(self, cluster4):
        from repro.services.encrypt import EncryptionService

        stack, _enc, disk = self._stack(cluster4)
        disk.write(5, b"survives-crash")
        stack.checkpoint_all()

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(EncryptionService(1, key=b"0123456789abcdef"))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        assert disk2.read(5) == b"survives-crash"

    def test_stacks_with_compression(self, cluster4):
        """Compress-then-encrypt: order matters and both undo cleanly."""
        from repro.services.encrypt import EncryptionService

        stack = cluster4.make_stack(client_id=2)
        stack.push(EncryptionService(1, key=b"0123456789abcdef"))
        comp = stack.push(CompressionService(2))
        disk = stack.push(LogicalDiskService(3))
        disk.write(0, b"A" * 20000)
        stack.flush().wait()
        assert disk.read(0) == b"A" * 20000
        assert comp.ratio < 0.2   # compression ran before encryption
