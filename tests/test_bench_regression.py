"""Tests for the perf regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    DEFAULT_TOLERANCE,
    compare,
    main,
    resolve_tolerance,
)


def metrics(append=200.0, ratio=2.4, overlap=0.5):
    return {
        "log_append_mb_s": append,
        "reconstruct_latency": {"ratio": ratio},
        "write_pipeline": {"overlap_ratio": overlap},
    }


class TestCompare:
    def test_identical_numbers_pass(self):
        assert compare(metrics(), metrics()) == []

    def test_small_drift_within_tolerance_passes(self):
        fresh = metrics(append=200.0 * 0.90, ratio=2.4 * 1.10)
        assert compare(metrics(), fresh, tolerance=0.15) == []

    def test_append_regression_fails(self):
        fresh = metrics(append=200.0 * 0.80)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "log_append_mb_s" in problems[0]

    def test_latency_ratio_regression_fails(self):
        fresh = metrics(ratio=2.4 * 1.30)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "reconstruct_latency.ratio" in problems[0]

    def test_improvements_always_pass(self):
        fresh = metrics(append=400.0, ratio=1.2)
        assert compare(metrics(), fresh, tolerance=0.0) == []

    def test_overlap_ratio_must_stay_below_one(self):
        problems = compare(metrics(), metrics(overlap=1.05))
        assert len(problems) == 1
        assert "overlap_ratio" in problems[0]

    def test_tolerance_widens_the_gate(self):
        fresh = metrics(append=200.0 * 0.70)
        assert compare(metrics(), fresh, tolerance=0.15)
        assert compare(metrics(), fresh, tolerance=0.40) == []

    def test_missing_baseline_metric_is_a_problem(self):
        problems = compare({}, metrics())
        assert any("log_append_mb_s" in p for p in problems)
        assert any("reconstruct_latency" in p for p in problems)


class TestToleranceResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("PERF_REGRESSION_TOLERANCE", raising=False)
        assert resolve_tolerance() == DEFAULT_TOLERANCE

    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "0.35")
        assert resolve_tolerance() == 0.35

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "0.35")
        assert resolve_tolerance(0.05) == 0.05

    def test_negative_env_rejected(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "-1")
        with pytest.raises(ValueError):
            resolve_tolerance()


class TestMain:
    def write_doc(self, path, m):
        path.write_text(json.dumps({"metrics": m}))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json", metrics())
        assert main(["--baseline", baseline, "--fresh-json", fresh]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json",
                               metrics(append=100.0))
        assert main(["--baseline", baseline, "--fresh-json", fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_tolerance_flag(self, tmp_path):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json",
                               metrics(append=150.0))
        assert main(["--baseline", baseline, "--fresh-json", fresh,
                     "--tolerance", "0.5"]) == 0
        assert main(["--baseline", baseline, "--fresh-json", fresh,
                     "--tolerance", "0.1"]) == 1
