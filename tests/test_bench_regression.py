"""Tests for the perf regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    DEFAULT_OPCOUNT_TOLERANCE,
    DEFAULT_TOLERANCE,
    compare,
    compare_opcounts,
    main,
    resolve_opcount_tolerance,
    resolve_tolerance,
)


def metrics(append=200.0, ratio=2.4, overlap=0.5, seq_read=3.3,
            cleaning=300.0, read_overlap=0.5, rs_encode=270.0,
            degraded=2.9, scan_rpcs=11, scan_bytes=160000,
            efficiency=0.95, client_overlap=0.4,
            view_rpcs=2, view_bytes=2200,
            sweep_points=9, recovery=180.0,
            codec=300000.0, net_append=13.0, net_scan=11.0,
            net_overlap=0.5, net_rpcs=20, net_local_rpcs=20,
            net_bytes=300000, net_local_bytes=300000):
    return {
        "log_append_mb_s": append,
        "codec_msgs_s": codec,
        "net": {"append_mb_s": net_append,
                "scan_mb_s": net_scan,
                "overlap_ratio": net_overlap,
                "opcounts": {"rpcs": net_rpcs, "bytes": net_bytes},
                "local_opcounts": {"rpcs": net_local_rpcs,
                                   "bytes": net_local_bytes}},
        "reconstruct_latency": {"ratio": ratio},
        "write_pipeline": {"overlap_ratio": overlap},
        "read_pipeline": {"sequential_read_mb_s": seq_read,
                          "cleaning_mb_s": cleaning,
                          "overlap_ratio": read_overlap},
        "erasure": {"parity_fragments": 2,
                    "xor_encode_mb_s": 620.0,
                    "rs_encode_mb_s": rs_encode,
                    "rs_vs_xor_ratio": round(rs_encode / 620.0, 3),
                    "degraded_read_ratio": degraded},
        "opcounts": {"sequential_scan": {"rpcs": scan_rpcs,
                                         "bytes": scan_bytes}},
        "placement": {"stripe_width": 8,
                      "scaling": [
                          {"servers": 16, "append_mb_s": 4.6},
                          {"servers": 64, "append_mb_s": 4.6 * efficiency},
                          {"servers": 256, "append_mb_s": 4.6}],
                      "scaling_efficiency_64": efficiency,
                      "multi_client_overlap_ratio": client_overlap,
                      "view_change_rpcs": view_rpcs,
                      "view_change_bytes": view_bytes},
        "crash": {"sweep_points": sweep_points,
                  "recovery_short_blocks": 64,
                  "recovery_long_blocks": 256,
                  "recovery_short_ms": 1.2,
                  "recovery_long_ms": 5.7,
                  "recovery_mb_s": recovery},
    }


class TestCompare:
    def test_identical_numbers_pass(self):
        assert compare(metrics(), metrics()) == []

    def test_small_drift_within_tolerance_passes(self):
        fresh = metrics(append=200.0 * 0.90, ratio=2.4 * 1.10)
        assert compare(metrics(), fresh, tolerance=0.15) == []

    def test_append_regression_fails(self):
        fresh = metrics(append=200.0 * 0.80)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "log_append_mb_s" in problems[0]

    def test_latency_ratio_regression_fails(self):
        fresh = metrics(ratio=2.4 * 1.30)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "reconstruct_latency.ratio" in problems[0]

    def test_improvements_always_pass(self):
        fresh = metrics(append=400.0, ratio=1.2)
        assert compare(metrics(), fresh, tolerance=0.0) == []

    def test_overlap_ratio_must_stay_below_one(self):
        problems = compare(metrics(), metrics(overlap=1.05))
        assert len(problems) == 1
        assert "overlap_ratio" in problems[0]

    def test_tolerance_widens_the_gate(self):
        fresh = metrics(append=200.0 * 0.70)
        assert compare(metrics(), fresh, tolerance=0.15)
        assert compare(metrics(), fresh, tolerance=0.40) == []

    def test_missing_baseline_metric_is_a_problem(self):
        problems = compare({}, metrics())
        assert any("log_append_mb_s" in p for p in problems)
        assert any("reconstruct_latency" in p for p in problems)
        assert any("read_pipeline" in p for p in problems)

    def test_sequential_read_regression_fails(self):
        fresh = metrics(seq_read=3.3 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "sequential_read_mb_s" in problems[0]

    def test_cleaning_regression_fails(self):
        fresh = metrics(cleaning=300.0 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "cleaning_mb_s" in problems[0]

    def test_read_overlap_ratio_must_stay_below_one(self):
        problems = compare(metrics(), metrics(read_overlap=1.02))
        assert len(problems) == 1
        assert "read_pipeline.overlap_ratio" in problems[0]

    def test_rs_encode_regression_fails(self):
        fresh = metrics(rs_encode=270.0 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "erasure.rs_encode_mb_s" in problems[0]

    def test_degraded_read_ratio_rise_fails(self):
        fresh = metrics(degraded=2.9 * 1.30)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "erasure.degraded_read_ratio" in problems[0]

    def test_erasure_improvements_pass(self):
        fresh = metrics(rs_encode=500.0, degraded=2.0)
        assert compare(metrics(), fresh, tolerance=0.0) == []

    def test_missing_baseline_erasure_is_a_problem(self):
        baseline = metrics()
        del baseline["erasure"]
        problems = compare(baseline, metrics())
        assert any("erasure.rs_encode_mb_s" in p for p in problems)
        assert any("erasure.degraded_read_ratio" in p for p in problems)

    def test_scaling_efficiency_regression_fails(self):
        fresh = metrics(efficiency=0.95 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "placement.scaling_efficiency_64" in problems[0]

    def test_scaling_efficiency_drift_within_tolerance_passes(self):
        fresh = metrics(efficiency=0.95 * 0.90)
        assert compare(metrics(), fresh, tolerance=0.15) == []

    def test_client_overlap_must_stay_below_one(self):
        problems = compare(metrics(), metrics(client_overlap=1.05))
        assert len(problems) == 1
        assert "multi_client_overlap_ratio" in problems[0]

    def test_missing_baseline_placement_is_a_problem(self):
        baseline = metrics()
        del baseline["placement"]
        problems = compare(baseline, metrics())
        assert any("placement.scaling_efficiency_64" in p for p in problems)

    def test_shrinking_sweep_points_fails(self):
        problems = compare(metrics(sweep_points=9),
                           metrics(sweep_points=8))
        assert len(problems) == 1
        assert "crash.sweep_points shrank" in problems[0]

    def test_sweep_points_below_floor_fails(self):
        problems = compare(metrics(sweep_points=7),
                           metrics(sweep_points=7))
        assert any("coverage floor of 8" in p for p in problems)

    def test_recovery_throughput_regression_fails(self):
        fresh = metrics(recovery=180.0 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "crash.recovery_mb_s" in problems[0]

    def test_recovery_drift_within_tolerance_passes(self):
        fresh = metrics(recovery=180.0 * 0.90)
        assert compare(metrics(), fresh, tolerance=0.15) == []

    def test_missing_baseline_crash_is_a_problem(self):
        baseline = metrics()
        del baseline["crash"]
        problems = compare(baseline, metrics())
        assert any("crash.sweep_points" in p for p in problems)
        assert any("crash.recovery_mb_s" in p for p in problems)

    def test_codec_below_absolute_floor_fails(self):
        # The floor is absolute: even a matching baseline can't excuse
        # a codec slower than 220k msgs/s.
        slow = metrics(codec=150000.0)
        problems = compare(slow, slow)
        assert len(problems) == 1
        assert "codec_msgs_s" in problems[0]

    def test_codec_above_floor_passes(self):
        assert compare(metrics(), metrics(codec=220000.0)) == []

    def test_net_append_regression_fails(self):
        fresh = metrics(net_append=13.0 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert len(problems) == 1
        assert "net.append_mb_s" in problems[0]

    def test_net_scan_regression_fails(self):
        fresh = metrics(net_scan=11.0 * 0.70)
        problems = compare(metrics(), fresh, tolerance=0.15)
        assert problems and "net.scan_mb_s" in problems[0]

    def test_net_overlap_ratio_must_stay_below_one(self):
        problems = compare(metrics(), metrics(net_overlap=1.02))
        assert len(problems) == 1
        assert "net.overlap_ratio" in problems[0]

    def test_missing_baseline_net_is_a_problem(self):
        baseline = metrics()
        del baseline["net"]
        problems = compare(baseline, metrics())
        assert any("net.append_mb_s" in p for p in problems)
        assert any("net.scan_mb_s" in p for p in problems)


class TestCompareOpcounts:
    def test_identical_counts_pass(self):
        assert compare_opcounts(metrics(), metrics()) == []

    def test_rpc_growth_beyond_tolerance_fails(self):
        fresh = metrics(scan_rpcs=13)  # 11 -> 13 is ~18% chattier
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert len(problems) == 1
        assert "sequential_scan.rpcs" in problems[0]

    def test_byte_growth_beyond_tolerance_fails(self):
        fresh = metrics(scan_bytes=200000)
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert problems and "sequential_scan.bytes" in problems[0]

    def test_shrinking_counts_pass(self):
        fresh = metrics(scan_rpcs=5, scan_bytes=80000)
        assert compare_opcounts(metrics(), fresh, tolerance=0.0) == []

    def test_missing_baseline_counts_flagged(self):
        problems = compare_opcounts({}, metrics())
        assert problems and "opcounts" in problems[0]

    def test_view_change_rpc_growth_fails(self):
        fresh = metrics(view_rpcs=3)  # 2 -> 3: a grow got chattier
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert len(problems) == 1
        assert "placement.view_change_rpcs" in problems[0]

    def test_view_change_byte_growth_fails(self):
        fresh = metrics(view_bytes=4400)
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert problems and "placement.view_change_bytes" in problems[0]

    def test_view_change_identical_passes(self):
        assert compare_opcounts(metrics(), metrics(), tolerance=0.0) == []

    def test_missing_baseline_placement_flagged(self):
        baseline = metrics()
        del baseline["placement"]
        problems = compare_opcounts(baseline, metrics())
        assert problems and "placement" in problems[0]

    def test_tcp_opcounts_must_equal_local(self):
        # One extra RPC over the wire = the TCP plane changed the
        # protocol, not just the plumbing.
        fresh = metrics(net_rpcs=21, net_local_rpcs=20)
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert problems
        assert any("net.opcounts.rpcs" in p for p in problems)

    def test_tcp_byte_divergence_from_local_fails(self):
        fresh = metrics(net_bytes=330000, net_local_bytes=300000)
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert problems and any("net.opcounts.bytes" in p
                                for p in problems)

    def test_net_scan_growth_vs_baseline_fails(self):
        fresh = metrics(net_rpcs=23, net_local_rpcs=23)
        problems = compare_opcounts(metrics(), fresh, tolerance=0.02)
        assert problems  # chattier than the committed baseline

    def test_missing_baseline_net_flagged(self):
        baseline = metrics()
        del baseline["net"]
        problems = compare_opcounts(baseline, metrics())
        assert problems and any("net" in p for p in problems)


class TestToleranceResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("PERF_REGRESSION_TOLERANCE", raising=False)
        assert resolve_tolerance() == DEFAULT_TOLERANCE

    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "0.35")
        assert resolve_tolerance() == 0.35

    def test_cli_beats_env(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "0.35")
        assert resolve_tolerance(0.05) == 0.05

    def test_negative_env_rejected(self, monkeypatch):
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "-1")
        with pytest.raises(ValueError):
            resolve_tolerance()

    def test_opcount_default(self, monkeypatch):
        monkeypatch.delenv("PERF_OPCOUNT_TOLERANCE", raising=False)
        assert resolve_opcount_tolerance() == DEFAULT_OPCOUNT_TOLERANCE

    def test_opcount_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("PERF_OPCOUNT_TOLERANCE", "0.1")
        assert resolve_opcount_tolerance() == 0.1

    def test_opcount_ignores_wide_regression_tolerance(self, monkeypatch):
        # CI widens PERF_REGRESSION_TOLERANCE for noisy machines; the
        # deterministic counters must not inherit that slack.
        monkeypatch.setenv("PERF_REGRESSION_TOLERANCE", "0.5")
        monkeypatch.delenv("PERF_OPCOUNT_TOLERANCE", raising=False)
        assert resolve_opcount_tolerance() == DEFAULT_OPCOUNT_TOLERANCE


class TestMain:
    def write_doc(self, path, m):
        path.write_text(json.dumps({"metrics": m}))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json", metrics())
        assert main(["--baseline", baseline, "--fresh-json", fresh]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json",
                               metrics(append=100.0))
        assert main(["--baseline", baseline, "--fresh-json", fresh]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_tolerance_flag(self, tmp_path):
        baseline = self.write_doc(tmp_path / "base.json", metrics())
        fresh = self.write_doc(tmp_path / "fresh.json",
                               metrics(append=150.0))
        assert main(["--baseline", baseline, "--fresh-json", fresh,
                     "--tolerance", "0.5"]) == 0
        assert main(["--baseline", baseline, "--fresh-json", fresh,
                     "--tolerance", "0.1"]) == 1
