"""Property-based crash-recovery and cleaner-safety invariants.

The two invariants everything else rests on:

1. **Recovery equivalence** — for any flushed operation sequence, a
   crashed-and-recovered client's state equals the state implied by the
   flushed prefix (nothing lost, nothing resurrected).
2. **Cleaner safety** — for any churn pattern and any amount of
   cleaning, every live block remains byte-identical and every dead
   block stays dead.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import build_local_cluster
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService


def ops_strategy(max_size=40):
    return st.lists(st.tuples(
        st.sampled_from(["write", "trim"]),
        st.integers(min_value=0, max_value=6),
        st.binary(min_size=1, max_size=4000)), max_size=max_size)


def apply_ops(disk, oracle, ops):
    for op, block, data in ops:
        if op == "write":
            disk.write(block, data)
            oracle[block] = data
        elif block in oracle:
            disk.trim(block)
            del oracle[block]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(before=ops_strategy(), after=ops_strategy(max_size=15))
def test_recovery_equals_flushed_prefix(before, after):
    cluster = build_local_cluster(num_servers=3, fragment_size=1 << 16,
                                  server_slots=1024)
    stack = cluster.make_stack(client_id=1)
    disk = stack.push(LogicalDiskService(1))
    oracle = {}
    apply_ops(disk, oracle, before)
    stack.checkpoint_all()
    apply_ops(disk, oracle, after)
    stack.flush().wait()
    # Crash now; everything flushed must come back exactly.
    stack2 = cluster.make_stack(client_id=1)
    disk2 = stack2.push(LogicalDiskService(1))
    stack2.recover_all()
    assert disk2.block_numbers() == sorted(oracle)
    for block, data in oracle.items():
        assert disk2.read(block) == data


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy(max_size=60),
       threshold=st.sampled_from([0.4, 0.7, 0.95]))
def test_cleaning_never_harms_live_data(ops, threshold):
    cluster = build_local_cluster(num_servers=3, fragment_size=1 << 16,
                                  server_slots=1024)
    stack = cluster.make_stack(client_id=1)
    cleaner = stack.push(CleanerService(1, utilization_threshold=threshold))
    disk = stack.push(LogicalDiskService(2))
    oracle = {}
    apply_ops(disk, oracle, ops)
    stack.checkpoint_all()
    cleaner.clean(target_stripes=50)
    assert disk.block_numbers() == sorted(oracle)
    for block, data in oracle.items():
        assert disk.read(block) == data
    # And the whole thing still recovers after the cleaning.
    stack.checkpoint_all()
    stack2 = cluster.make_stack(client_id=1)
    stack2.push(CleanerService(1))
    disk2 = stack2.push(LogicalDiskService(2))
    stack2.recover_all()
    for block, data in oracle.items():
        assert disk2.read(block) == data
