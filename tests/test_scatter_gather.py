"""Scatter-gather completion layer: combinators, fan-out transports,
and the degraded-read latency bound.

Covers the read-side pipelining contract end to end:

* ``gather``/``results``/``first_of`` over mixed success/failure
  completions and over live simulator processes;
* ``submit_many`` on the local transport (mixed outcomes stay inside
  their futures) and on the simulated transport in deferred mode
  (a scatter charges roughly one overlapped round trip, not W serial
  ones);
* fan-out reads under :class:`FaultyTransport` — a mid-scatter drop
  fails exactly its own future, the schedule replays bit-identically
  per seed, and a retry wrapper recovers the whole scatter;
* the acceptance bound: simulated width-4 reconstruction costs less
  than 2.5× a single healthy fragment retrieve.

Seeds come from ``CHAOS_SEEDS`` (comma-separated), matching the chaos
property suite, so CI exercises fixed seeds plus a per-run one.
"""

import os

import pytest

from repro import errors
from repro.bench.perf import bench_reconstruct_latency
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.transport import FaultyTransport
from repro.cluster import ClusterConfig, SimCluster
from repro.rpc import messages as m
from repro.rpc.completion import (
    CompletedFuture,
    first_of,
    gather,
    results,
    scatter_call,
)
from repro.rpc.retry import RetryPolicy, RetryingTransport
from repro.rpc.transport import LocalTransport
from repro.server.config import ServerConfig
from repro.server.server import StorageServer

SEEDS = [int(s) for s in
         os.environ.get("CHAOS_SEEDS", "101,202,303").split(",") if s.strip()]

#: Every request to the wire-fault victim is dropped (and nothing
#: else): the deterministic worst case for one member of a scatter.
DROP_ALL_SPEC = FaultSpec(drop_request=1.0, drop_response=0.0, delay=0.0,
                          duplicate=0.0, torn_store=0.0, bit_flip=0.0)


def _local_cluster(num_servers=4, fragment_size=1 << 16):
    """A LocalTransport with fragment ``i+1`` stored on server ``i``."""
    servers = {"s%d" % i: StorageServer(ServerConfig(
        "s%d" % i, fragment_size=fragment_size))
        for i in range(num_servers)}
    transport = LocalTransport(servers)
    for i in range(num_servers):
        transport.call("s%d" % i, m.StoreRequest(
            fid=i + 1, data=b"frag-%d" % (i + 1)))
    return transport


def _retrieve_plan(transport):
    return [("s%d" % i, m.RetrieveRequest(fid=i + 1))
            for i in range(len(transport.server_ids()))]


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------

class TestGatherCombinators:
    def test_gather_keeps_failures_inside_futures(self):
        futures = [
            CompletedFuture(value=1),
            CompletedFuture(exception=errors.ServerUnavailableError("down")),
            CompletedFuture(value=3),
        ]
        gathered = gather(futures)
        assert [f.ok for f in gathered] == [True, False, True]
        assert gathered[1].exception.args == ("down",)
        assert gathered[0].value + gathered[2].value == 4

    def test_results_raises_the_first_failure(self):
        futures = [
            CompletedFuture(value=1),
            CompletedFuture(exception=errors.FragmentNotFoundError("gone")),
            CompletedFuture(exception=errors.ServerUnavailableError("down")),
        ]
        with pytest.raises(errors.FragmentNotFoundError):
            results(futures)
        assert results([CompletedFuture(value=v) for v in (7, 8)]) == [7, 8]

    def test_first_of_is_submission_ordered_and_filtered(self):
        futures = [
            CompletedFuture(exception=errors.ServerUnavailableError("down")),
            CompletedFuture(value="early"),
            CompletedFuture(value="late"),
        ]
        assert first_of(futures).value == "early"
        assert first_of(futures, lambda v: v == "late").value == "late"
        assert first_of(futures, lambda v: v == "never") is None
        assert first_of([CompletedFuture(
            exception=errors.ServerUnavailableError("x"))]) is None

    def test_gather_drives_simulator_processes(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        transport = cluster.make_transport(0)  # true-async path
        for i, server_id in enumerate(sorted(cluster.server_nodes)):
            transport.call(server_id, m.StoreRequest(
                fid=i + 1, data=b"sim-%d" % (i + 1)))
        futures = [transport.submit(server_id, m.RetrieveRequest(fid=i + 1))
                   for i, server_id in
                   enumerate(sorted(cluster.server_nodes))]
        assert not any(f.triggered for f in futures)
        gathered = gather(futures)
        assert all(f.ok for f in gathered)
        payloads = [bytes(f.value.payload) for f in gathered]
        assert payloads == [b"sim-1", b"sim-2"]


# ----------------------------------------------------------------------
# submit_many
# ----------------------------------------------------------------------

class TestSubmitMany:
    def test_local_scatter_mixed_outcomes(self):
        transport = _local_cluster(num_servers=2)
        futures = transport.submit_many([
            ("s0", m.RetrieveRequest(fid=1)),
            ("s1", m.RetrieveRequest(fid=999)),   # never stored
        ])
        assert futures[0].ok
        assert bytes(futures[0].value.payload) == b"frag-1"
        assert not futures[1].ok
        assert isinstance(futures[1].exception, errors.FragmentNotFoundError)

    def test_scatter_call_matches_sequential_calls(self):
        transport = _local_cluster(num_servers=3)
        plan = _retrieve_plan(transport)
        scattered = scatter_call(transport, plan)
        sequential = [transport.call(sid, req) for sid, req in plan]
        assert [bytes(f.value.payload) for f in scattered] == \
            [bytes(r.payload) for r in sequential]

    def test_sim_deferred_scatter_overlaps(self):
        """A width-W scatter must cost far less than W serial trips."""
        width = 4
        cluster = SimCluster(ClusterConfig(num_servers=width, num_clients=1))
        transport = cluster.make_transport(0, deferred_mode=True)
        server_ids = sorted(cluster.server_nodes)
        for i, server_id in enumerate(server_ids):
            transport.call(server_id, m.StoreRequest(
                fid=i + 1, data=b"x" * 4096))
        plan = [(server_id, m.RetrieveRequest(fid=i + 1))
                for i, server_id in enumerate(server_ids)]
        transport.take_deferred_time()
        for server_id, request in plan:
            transport.call(server_id, request)
        serial_s = transport.take_deferred_time()
        futures = transport.submit_many(plan)
        scatter_s = transport.take_deferred_time()
        assert all(f.ok for f in futures)
        # Perfect overlap would approach serial/width; the resource
        # model's client-NIC and fabric contention keeps it above that,
        # but anything near the serial figure means the scatter
        # serialized and the pipelining contract is broken.
        assert scatter_s < 0.6 * serial_s, (
            "scatter %.6fs vs serial %.6fs" % (scatter_s, serial_s))


# ----------------------------------------------------------------------
# Fan-out reads under fault injection
# ----------------------------------------------------------------------

class TestScatterUnderChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_scatter_drop_fails_only_its_future(self, seed):
        transport = _local_cluster()
        faulty = FaultyTransport(transport, FaultPlan(seed, DROP_ALL_SPEC))
        plan = _retrieve_plan(transport)
        victim = faulty.plan.current_victim
        futures = faulty.submit_many(plan)
        for (server_id, request), future in zip(plan, futures):
            if server_id == victim:
                assert isinstance(future.exception,
                                  errors.ServerUnavailableError), \
                    "seed=%d: victim op should have dropped" % seed
            else:
                assert future.ok, "seed=%d: clean op failed" % seed
                assert bytes(future.value.payload) == \
                    b"frag-%d" % request.fid

    @pytest.mark.parametrize("seed", SEEDS)
    def test_scatter_fault_schedule_replays_identically(self, seed):
        histories = []
        for _run in range(2):
            transport = _local_cluster()
            faulty = FaultyTransport(transport, FaultPlan(seed, DROP_ALL_SPEC))
            faulty.submit_many(_retrieve_plan(transport))
            faulty.submit_many(_retrieve_plan(transport))
            histories.append([
                (e.index, e.kind, e.server_id, e.request, e.fid)
                for e in faulty.plan.history])
        assert histories[0] == histories[1], \
            "seed=%d: fault schedule diverged across replays" % seed
        assert histories[0], "seed=%d: expected at least one fault" % seed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_retrying_scatter_recovers_every_operation(self, seed):
        transport = _local_cluster()
        faulty = FaultyTransport(transport, FaultPlan(seed, DROP_ALL_SPEC))
        retrying = RetryingTransport(faulty, RetryPolicy(
            max_attempts=6, jitter=0.0, seed=seed))
        futures = retrying.submit_many(_retrieve_plan(transport))
        assert all(f.ok for f in futures), \
            "seed=%d: retried scatter left failures" % seed
        # The victim's operation needed retries (the fault plan's
        # consecutive-fault bound guarantees a clean call eventually).
        assert retrying.retries > 0
        assert retrying.exhausted == 0
        assert faulty.faults_applied > 0


# ----------------------------------------------------------------------
# Acceptance: degraded-read latency
# ----------------------------------------------------------------------

class TestReconstructLatencyBound:
    def test_width4_reconstruction_under_two_point_five_x(self):
        metrics = bench_reconstruct_latency()
        assert metrics["single_retrieve_ms"] > 0
        assert metrics["reconstruct_ms"] > metrics["single_retrieve_ms"]
        assert metrics["ratio"] < 2.5, (
            "width-4 degraded read cost %.3f× a single retrieve; the "
            "scatter-gather read path should stay under 2.5×" %
            metrics["ratio"])
