"""Capstone integration: every layer of the system working together.

One client stack carrying cleaner + ARU + encryption + compression +
cache + Sting, driven through churn, client crashes, cleaning, and a
server failure — the whole paper in one test module. Plus determinism
checks: the simulated testbed must produce bit-identical results run
to run, which is what makes the benchmark figures trustworthy.
"""

import pytest

from repro.cluster import build_local_cluster
from repro.services import (
    AruService,
    CacheService,
    CleanerService,
    CompressionService,
    EncryptionService,
)
from repro.sting import StingFileSystem

SERVICES = dict(cleaner=1, aru=2, encrypt=3, compress=4, cache=5, sting=6)
KEY = b"integration-key-16b!"


def full_stack(cluster):
    stack = cluster.make_stack(client_id=1)
    cleaner = stack.push(CleanerService(SERVICES["cleaner"],
                                        utilization_threshold=0.7))
    stack.push(AruService(SERVICES["aru"]))
    stack.push(EncryptionService(SERVICES["encrypt"], key=KEY))
    stack.push(CompressionService(SERVICES["compress"]))
    stack.push(CacheService(SERVICES["cache"], capacity_bytes=2 << 20))
    fs = stack.push(StingFileSystem(SERVICES["sting"], block_size=4096))
    return stack, cleaner, fs


class TestFullStack:
    def test_everything_at_once(self, cluster4):
        stack, cleaner, fs = full_stack(cluster4)
        fs.format()
        fs.mkdir("/work")

        # Churn through the full stack (encrypted + compressed blocks).
        contents = {}
        for round_no in range(5):
            for index in range(15):
                path = "/work/f%02d" % index
                data = (b"round-%d " % round_no) * (100 + 37 * index)
                fs.write_file(path, data)
                contents[path] = data
        fs.unmount()

        # Ciphertext on the wire: no plaintext visible at any server.
        for server in cluster4.servers.values():
            for fid in server.list_fids():
                assert b"round-0 round-0" not in server.retrieve(fid)

        # Clean, then verify every file.
        cleaner.clean(target_stripes=100)
        for path, data in contents.items():
            assert fs.read_file(path) == data

        # Client crash: recover the whole stack.
        fs.unmount()
        stack2, cleaner2, fs2 = full_stack(cluster4)
        stack2.recover_all()
        for path, data in contents.items():
            assert fs2.read_file(path) == data

        # Server failure on top: reads still good (parity + decrypt).
        cluster4.servers["s3"].crash()
        fs2._inodes.clear()
        for path in list(contents)[:5]:
            assert fs2.read_file(path) == contents[path]

    def test_double_crash_with_cleaning_between(self, cluster4):
        stack, cleaner, fs = full_stack(cluster4)
        fs.format()
        for index in range(10):
            fs.write_file("/f%d" % index, bytes([index]) * 9000)
        fs.unmount()

        stack2, cleaner2, fs2 = full_stack(cluster4)
        stack2.recover_all()
        for index in range(10):
            fs2.write_file("/f%d" % index, bytes([index + 100]) * 9000)
        fs2.unmount()
        cleaner2.clean(target_stripes=50)
        fs2.unmount()

        stack3, _cleaner3, fs3 = full_stack(cluster4)
        stack3.recover_all()
        for index in range(10):
            assert fs3.read_file("/f%d" % index) == bytes([index + 100]) * 9000


class TestDeterminism:
    def test_sim_write_bench_bit_identical(self):
        from repro.workloads.microbench import run_write_bench

        first = run_write_bench(2, 3, blocks=500)
        second = run_write_bench(2, 3, blocks=500)
        assert first.elapsed_s == second.elapsed_s
        assert first.raw_bytes == second.raw_bytes

    def test_mab_bit_identical(self):
        from repro.workloads.mab import run_mab_on_ext2, run_mab_on_sting

        assert run_mab_on_sting().elapsed_s == run_mab_on_sting().elapsed_s
        assert run_mab_on_ext2().elapsed_s == run_mab_on_ext2().elapsed_s

    def test_functional_log_layout_deterministic(self):
        def build():
            cluster = build_local_cluster(num_servers=3,
                                          fragment_size=1 << 16)
            log = cluster.make_log(client_id=1)
            for index in range(50):
                log.write_block(9, bytes([index]) * 3000)
            log.flush().wait()
            return {sid: sorted(server.list_fids())
                    for sid, server in cluster.servers.items()}

        assert build() == build()
