"""Tests for the measurement helpers and report formatting."""

import pytest

from repro.bench.figures import (
    Fig5Result,
    FigureSweep,
    ReadBenchResult,
    ServerSustainedResult,
)
from repro.bench.report import (
    format_figure_table,
    format_mab_table,
    format_read_result,
    format_server_result,
)
from repro.sim.stats import BandwidthSample, SweepResult, UtilizationTracker
from repro.workloads.mab import MabResult
from repro.workloads.microbench import WriteBenchResult


class TestUtilizationTracker:
    def test_accumulates_by_name(self):
        tracker = UtilizationTracker()
        tracker.add("cpu", 2.0)
        tracker.add("cpu", 1.0)
        tracker.add("disk", 0.5)
        assert tracker.busy("cpu") == 3.0
        assert tracker.utilization("cpu", 6.0) == 0.5
        assert tracker.utilization("disk", 1.0) == 0.5

    def test_capped_at_one(self):
        tracker = UtilizationTracker()
        tracker.add("cpu", 10.0)
        assert tracker.utilization("cpu", 5.0) == 1.0

    def test_zero_elapsed(self):
        assert UtilizationTracker().utilization("cpu", 0.0) == 0.0


class TestBandwidthSample:
    def test_mb_per_s(self):
        sample = BandwidthSample(clients=1, servers=2,
                                 bytes_moved=10_000_000, elapsed_s=2.0)
        assert sample.mb_per_s == pytest.approx(5.0)

    def test_zero_elapsed_is_zero(self):
        sample = BandwidthSample(1, 2, 100, 0.0)
        assert sample.mb_per_s == 0.0

    def test_sweep_series_sorted(self):
        sweep = SweepResult("one client")
        sweep.add(BandwidthSample(1, 4, 4_000_000, 1.0))
        sweep.add(BandwidthSample(1, 2, 2_000_000, 1.0))
        assert sweep.series() == [(2, 2.0), (4, 4.0)]


def _result(clients, servers, useful, raw, elapsed=1.0):
    return WriteBenchResult(clients=clients, servers=servers,
                            blocks_per_client=100, block_size=4096,
                            elapsed_s=elapsed,
                            useful_bytes=int(useful * 1e6 * elapsed),
                            raw_bytes=int(raw * 1e6 * elapsed))


class TestWriteBenchResult:
    def test_rates(self):
        result = _result(1, 2, useful=3.0, raw=6.0, elapsed=2.0)
        assert result.useful_mb_per_s == pytest.approx(3.0)
        assert result.raw_mb_per_s == pytest.approx(6.0)


class TestFigureTable:
    def test_rows_and_columns(self):
        sweep = FigureSweep("fig3")
        sweep.curves[1] = [_result(1, 2, 3.0, 6.0), _result(1, 4, 4.5, 6.2)]
        sweep.curves[4] = [_result(4, 2, 6.7, 13.4)]
        table = format_figure_table(sweep, raw=False)
        lines = table.splitlines()
        assert "1 client (MB/s)" in lines[0]
        assert "4 clients (MB/s)" in lines[0]
        assert any(line.startswith("| 2 |") for line in lines)
        assert any(line.startswith("| 4 |") for line in lines)
        assert "3.0" in table and "6.7" in table

    def test_raw_mode_switches_metric(self):
        sweep = FigureSweep("fig3")
        sweep.curves[1] = [_result(1, 2, 3.0, 6.0)]
        assert "6.0" in format_figure_table(sweep, raw=True)
        assert "6.0" not in format_figure_table(sweep, raw=False)

    def test_series_helper(self):
        sweep = FigureSweep("fig4")
        sweep.curves[1] = [_result(1, 4, 4.5, 6.2), _result(1, 2, 3.0, 6.0)]
        series = sweep.series(1, raw=False)
        assert series == [(4, pytest.approx(4.5)), (2, pytest.approx(3.0))]


class TestMabTable:
    def test_contains_both_systems_and_speedup(self):
        result = Fig5Result(
            sting=MabResult("sting", elapsed_s=9.0, cpu_busy_s=8.5,
                            io_busy_s=0.5),
            ext2=MabResult("ext2fs", elapsed_s=17.0, cpu_busy_s=9.0,
                           io_busy_s=8.0))
        table = format_mab_table(result)
        assert "Sting" in table and "ext2fs" in table
        assert "1.89x" in table
        assert "94%" in table  # 8.5/9.0

    def test_speedup_property(self):
        result = Fig5Result(
            sting=MabResult("sting", 10.0, 9.0, 1.0),
            ext2=MabResult("ext2fs", 20.0, 10.0, 10.0))
        assert result.speedup == pytest.approx(2.0)


class TestInTextFormatting:
    def test_read_result(self):
        text = format_read_result(ReadBenchResult(
            blocks=100, block_size=4096, elapsed_s=1.0,
            bytes_read=1_200_000, prefetch=False))
        assert "1.20 MB/s" in text
        assert "1.7" in text  # paper value alongside

    def test_server_result(self):
        text = format_server_result(ServerSustainedResult(
            clients=4, raw_mb_per_s=8.0,
            disk_upper_bound_mb_per_s=10.6))
        assert "8.0" in text and "7.7" in text and "10.3" in text


class TestMabResult:
    def test_utilization(self):
        result = MabResult("x", elapsed_s=10.0, cpu_busy_s=9.3,
                           io_busy_s=0.7)
        assert result.cpu_utilization == pytest.approx(0.93)

    def test_zero_elapsed(self):
        assert MabResult("x", 0.0, 0.0, 0.0).cpu_utilization == 0.0
