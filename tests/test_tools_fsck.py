"""Tests for the fsck scrubber and repair tool."""

import pytest

from repro.rpc import messages as m
from repro.server import ServerConfig, StorageServer
from repro.tools.fsck import check_client_log, repair_client_log

SVC = 6


@pytest.fixture
def populated(cluster4):
    log = cluster4.make_log(client_id=1)
    payloads = {i: bytes([i + 1]) * 22000 for i in range(12)}
    addresses = {i: log.write_block(SVC, data)
                 for i, data in payloads.items()}
    log.flush().wait()
    return log, payloads, addresses


class TestCheck:
    def test_intact_log_is_healthy(self, cluster4, populated):
        report = check_client_log(cluster4.transport, 1)
        assert report.healthy
        assert report.fragments_checked > 0
        assert all(s.parity_valid for s in report.stripes)
        assert "healthy" in report.summary()

    def test_missing_fragment_degrades_stripe(self, cluster4, populated):
        victim = cluster4.servers["s1"]
        doomed = victim.list_fids()[0]
        victim.delete(doomed)
        report = check_client_log(cluster4.transport, 1)
        degraded = report.by_status("degraded")
        assert len(degraded) == 1
        assert degraded[0].missing == [doomed]

    def test_corrupt_fragment_detected(self, cluster4, populated):
        victim = cluster4.servers["s2"]
        fid = victim.list_fids()[0]
        slot = victim.slots.slot_of(fid)
        image = bytearray(victim.backend.read_slot(slot))
        image[500] ^= 0xFF
        image[5] ^= 0xFF  # also break the header checksum
        victim.backend.write_slot(slot, bytes(image))
        report = check_client_log(cluster4.transport, 1)
        assert any(fid in s.corrupt for s in report.stripes)
        assert not report.healthy

    def test_two_missing_members_is_lost(self, cluster4, populated):
        fids = []
        from repro.log.fragment import Fragment

        # Delete two members of the SAME stripe.
        some_server = cluster4.servers["s0"]
        fid = some_server.list_fids()[0]
        header = Fragment.decode(some_server.retrieve(fid)).header
        victims = header.sibling_fids()[:2]
        for victim_fid in victims:
            for server in cluster4.servers.values():
                if server.holds(victim_fid):
                    server.delete(victim_fid)
        report = check_client_log(cluster4.transport, 1)
        assert report.by_status("lost")

    def test_parity_mismatch_flagged(self, cluster4, populated):
        """Silent data corruption that keeps checksums valid (a re-stored
        wrong fragment) is caught by the parity cross-check."""
        from repro.log.fragment import Fragment, FragmentBuilder

        victim = cluster4.servers["s1"]
        fid = next(f for f in victim.list_fids()
                   if not Fragment.decode(victim.retrieve(f)).header.is_parity)
        old = Fragment.decode(victim.retrieve(fid))
        builder = FragmentBuilder(fid, 1, 1 << 16)
        builder.add_block(SVC, b"forged!" * 100)
        forged = builder.seal(old.header.stripe_base_fid,
                              old.header.stripe_width,
                              old.header.stripe_index,
                              old.header.parity_index,
                              old.header.servers)
        victim.delete(fid)
        victim.store(fid, forged.encode())
        report = check_client_log(cluster4.transport, 1)
        assert any(s.parity_valid is False for s in report.stripes)

    def test_per_client_scoping(self, cluster4, populated):
        other = cluster4.make_log(client_id=2)
        other.write_block(SVC, b"other-client")
        other.flush().wait()
        report1 = check_client_log(cluster4.transport, 1)
        report2 = check_client_log(cluster4.transport, 2)
        assert report1.client_id == 1
        assert report2.fragments_checked < report1.fragments_checked


class TestRepair:
    def test_missing_fragments_restored(self, cluster4, populated):
        log, payloads, addresses = populated
        lost = sorted(cluster4.servers["s3"].list_fids())
        cluster4.servers["s3"].crash()
        spare = StorageServer(ServerConfig("spare", fragment_size=1 << 16))
        cluster4.transport.add_server(spare)
        restored = repair_client_log(cluster4.transport, 1, "spare")
        assert restored == len(lost)
        report = check_client_log(cluster4.transport, 1)
        assert report.healthy
        # And the data is still byte-identical.
        fresh = cluster4.make_log(client_id=1)
        for i, addr in addresses.items():
            assert fresh.read(addr) == payloads[i]

    def test_corrupt_fragment_rebuilt(self, cluster4, populated):
        victim = cluster4.servers["s2"]
        fid = victim.list_fids()[0]
        slot = victim.slots.slot_of(fid)
        image = bytearray(victim.backend.read_slot(slot))
        image[5] ^= 0xFF
        victim.backend.write_slot(slot, bytes(image))
        restored = repair_client_log(cluster4.transport, 1, "s2")
        assert restored >= 1
        assert check_client_log(cluster4.transport, 1).healthy

    def test_repair_noop_on_healthy_log(self, cluster4, populated):
        assert repair_client_log(cluster4.transport, 1, "s0") == 0


class TestServerCache:
    def test_cache_serves_hits(self):
        server = StorageServer(ServerConfig("c", fragment_size=1 << 16,
                                            cache_fragments=4))
        server.store(1, b"cached-bytes")
        server.retrieve(1)
        assert server.last_retrieve_was_cached  # write-through insert
        assert server.cache_hits >= 1

    def test_cache_disabled_by_default(self, server):
        server.store(1, b"x")
        server.retrieve(1)
        assert not server.last_retrieve_was_cached

    def test_lru_bound(self):
        server = StorageServer(ServerConfig("c", fragment_size=1 << 16,
                                            cache_fragments=2))
        for fid in (1, 2, 3):
            server.store(fid, b"%d" % fid)
        server.retrieve(1)   # evicted: must come from the backend
        assert not server.last_retrieve_was_cached
        server.retrieve(1)   # now cached again
        assert server.last_retrieve_was_cached

    def test_cache_cleared_on_crash(self):
        server = StorageServer(ServerConfig("c", fragment_size=1 << 16,
                                            cache_fragments=4))
        server.store(1, b"x")
        server.crash()
        server.restart()
        server.retrieve(1)
        assert not server.last_retrieve_was_cached

    def test_delete_invalidates(self):
        server = StorageServer(ServerConfig("c", fragment_size=1 << 16,
                                            cache_fragments=4))
        server.store(1, b"x")
        server.delete(1)
        server.store(1, b"y")  # same fid, fresh contents
        assert server.retrieve(1) == b"y"

    def test_sim_read_faster_with_server_cache(self):
        """The paper's prediction: server fragment caching would
        'greatly improve' repeated reads."""
        from repro.cluster import ClusterConfig, SimCluster
        from repro.rpc import messages as m

        def run(cache):
            cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
            node = cluster.server_nodes["s0"]
            object.__setattr__(node.server.config, "cache_fragments",
                               8 if cache else 0)
            node.server.store(1, b"z" * (1 << 20))
            transport = cluster.make_transport(0)

            def reads():
                for _ in range(10):
                    yield transport.submit("s0", m.RetrieveRequest(fid=1))

            cluster.sim.run_process(reads())
            return cluster.sim.now

        # The disk stage vanishes on hits; protocol/network costs remain,
        # so the win is real but bounded.
        assert run(cache=True) < 0.85 * run(cache=False)


class TestClusterStatus:
    def _populate(self, cluster):
        log = cluster.make_log(client_id=1)
        for i in range(8):
            log.write_block(SVC, bytes([i]) * 20000)
        log.checkpoint(SVC, b"cp").wait()
        other = cluster.make_log(client_id=2)
        other.write_block(SVC, b"two")
        other.flush().wait()
        return log

    def test_collect_counts_fragments_per_client(self, cluster4):
        from repro.tools.status import collect_status

        self._populate(cluster4)
        status = collect_status(cluster4)
        assert status.client_ids == [1, 2]
        assert status.total_fragments == sum(
            s.slots_used for s in status.servers)
        assert any(s.newest_marked_fid for s in status.servers)

    def test_down_server_reported(self, cluster4):
        from repro.tools.status import collect_status

        self._populate(cluster4)
        cluster4.servers["s1"].crash()
        status = collect_status(cluster4)
        down = [s for s in status.servers if not s.available]
        assert [s.server_id for s in down] == ["s1"]

    def test_balance_near_one_after_rotation(self, cluster4):
        from repro.tools.status import collect_status

        log = cluster4.make_log(client_id=1)
        for _ in range(60):
            log.write_block(SVC, b"r" * 30000)
        log.flush().wait()
        status = collect_status(cluster4)
        assert status.imbalance() <= 1.5

    def test_format_renders_all_servers(self, cluster4):
        from repro.tools.status import collect_status, format_status

        self._populate(cluster4)
        cluster4.servers["s3"].crash()
        text = format_status(collect_status(cluster4))
        for server_id in ("s0", "s1", "s2", "s3"):
            assert server_id in text
        assert "DOWN" in text
        assert "balance" in text

    def test_works_on_sim_cluster(self):
        from repro.cluster import ClusterConfig, SimCluster, SimClientDriver
        from repro.tools.status import collect_status

        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        driver = SimClientDriver(cluster, 0)
        cluster.sim.process(driver.write_blocks(50, 4096))
        cluster.sim.run()
        status = collect_status(cluster)
        assert status.total_fragments > 0


class TestParityLayouts:
    """fsck status and repair across m=0 and m=2 stripe layouts.

    Regression tests for the coding-engine refactor: stripe health is
    judged against the stripe's actual parity budget (``parity_count``
    from the header geometry), not a hardwired single-parity rule, and
    repair can spread a multi-erasure stripe over several targets.
    """

    def _populate(self, cluster, **overrides):
        log = cluster.make_log(client_id=1, **overrides)
        payloads = {i: bytes([(i * 13 + 1) % 256]) * 22000
                    for i in range(12)}
        addresses = {i: log.write_block(SVC, data)
                     for i, data in payloads.items()}
        log.flush().wait()
        return log, payloads, addresses

    def _stripe_members(self, cluster, server_id):
        """Some full stripe's member fids, via a surviving header."""
        from repro.log.fragment import Fragment

        server = cluster.servers[server_id]
        fid = server.list_fids()[0]
        header = Fragment.decode(server.retrieve(fid)).header
        return header.sibling_fids()

    def _delete_everywhere(self, cluster, fids):
        for doomed in fids:
            for server in cluster.servers.values():
                if server.holds(doomed):
                    server.delete(doomed)

    def test_m0_single_loss_is_lost_not_degraded(self):
        """With no parity members, every loss is final — the old
        ``bad <= 1`` rule would have called this recoverable."""
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=4, fragment_size=1 << 16,
                                      server_slots=512)
        self._populate(cluster, parity_fragments=0)
        healthy = check_client_log(cluster.transport, 1)
        assert healthy.healthy
        assert all(s.parity_count == 0 for s in healthy.stripes)
        victim = cluster.servers["s1"]
        doomed = victim.list_fids()[0]
        victim.delete(doomed)
        report = check_client_log(cluster.transport, 1)
        assert not report.by_status("degraded")
        lost = report.by_status("lost")
        assert len(lost) == 1
        assert lost[0].missing == [doomed]

    def test_m2_degraded_until_third_loss(self):
        """An m=2 stripe absorbs two losses; the third makes it lost."""
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=5, fragment_size=1 << 16,
                                      server_slots=512)
        self._populate(cluster, parity_fragments=2, coding="rs")
        members = self._stripe_members(cluster, "s0")
        assert len(members) == 5
        for losses, expected in ((1, "degraded"), (2, "degraded"),
                                 (3, "lost")):
            self._delete_everywhere(cluster, members[:losses])
            report = check_client_log(cluster.transport, 1)
            assert all(s.parity_count == 2 for s in report.stripes)
            wounded = [s for s in report.stripes
                       if s.base_fid == members[0]]
            assert len(wounded) == 1
            assert wounded[0].status == expected, \
                "%d losses -> %s" % (losses, wounded[0].status)

    def test_m2_repair_round_robins_over_target_list(self):
        """A doubly-degraded stripe's rebuilt pair lands on distinct
        targets, and the repaired log is fully healthy and readable."""
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=5, fragment_size=1 << 16,
                                      server_slots=512)
        log, payloads, addresses = self._populate(
            cluster, parity_fragments=2, coding="rs")
        members = self._stripe_members(cluster, "s0")
        self._delete_everywhere(cluster, members[:2])
        for spare_id in ("spare_a", "spare_b"):
            cluster.transport.add_server(StorageServer(ServerConfig(
                spare_id, fragment_size=1 << 16)))
        restored = repair_client_log(cluster.transport, 1,
                                     ["spare_a", "spare_b"])
        assert restored == 2
        homes = set()
        for fid in members[:2]:
            holders = [sid for sid in ("spare_a", "spare_b")
                       if cluster.transport.servers[sid].holds(fid)]
            assert len(holders) == 1
            homes.add(holders[0])
        assert homes == {"spare_a", "spare_b"}
        assert check_client_log(cluster.transport, 1).healthy
        fresh = cluster.make_log(client_id=1, parity_fragments=2,
                                 coding="rs")
        for i, addr in addresses.items():
            assert fresh.read(addr) == payloads[i]


class TestTornTail:
    """A stripe whose missing members are an exact suffix is a torn
    client-crash tail: present prefix durable, missing suffix never
    stored. It is repairable by seal-completion even when the losses
    exceed parity."""

    def _tear_last_two(self, cluster4):
        from repro.log.fragment import Fragment

        some_server = cluster4.servers["s0"]
        fid = some_server.list_fids()[0]
        header = Fragment.decode(some_server.retrieve(fid)).header
        siblings = header.sibling_fids()
        doomed = siblings[-2:]
        for victim_fid in doomed:
            for server in cluster4.servers.values():
                if server.holds(victim_fid):
                    server.delete(victim_fid)
        return doomed

    def test_suffix_missing_is_torn_not_lost(self, cluster4, populated):
        doomed = self._tear_last_two(cluster4)
        report = check_client_log(cluster4.transport, 1)
        torn = report.by_status("torn")
        assert len(torn) == 1
        assert torn[0].missing == sorted(doomed)
        assert not report.by_status("lost")
        assert not report.healthy
        assert report.repairable
        assert "torn" in report.summary()

    def test_torn_stripe_seal_completed_to_healthy(self, cluster4,
                                                   populated):
        doomed = self._tear_last_two(cluster4)
        restored = repair_client_log(cluster4.transport, 1, "s0")
        assert restored == len(doomed)
        after = check_client_log(cluster4.transport, 1)
        assert after.healthy, after.summary()

    def test_prefix_missing_stays_lost(self, cluster4, populated):
        """Missing members that are NOT a pure suffix cannot be a torn
        tail — a crash dispatches stores in stripe order — so beyond
        parity they are honest data loss."""
        from repro.log.fragment import Fragment

        some_server = cluster4.servers["s0"]
        fid = some_server.list_fids()[0]
        header = Fragment.decode(some_server.retrieve(fid)).header
        for victim_fid in header.sibling_fids()[:2]:
            for server in cluster4.servers.values():
                if server.holds(victim_fid):
                    server.delete(victim_fid)
        report = check_client_log(cluster4.transport, 1)
        assert report.by_status("lost")
        assert not report.by_status("torn")
        assert not report.repairable
