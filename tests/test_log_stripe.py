"""Unit tests for striping, parity algebra, and placement rotation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.log.stripe import (
    ParityAccumulator,
    StripeGroup,
    StripeLayout,
    parity_of,
    parity_of_fast,
    recover_data_image,
)


class TestParityAlgebra:
    def test_simple_xor(self):
        assert parity_of([b"\x0f\x0f", b"\xf0\xf0"]) == b"\xff\xff"

    def test_padding_with_unequal_lengths(self):
        parity = parity_of([b"\xff", b"\x0f\xf0"])
        assert parity == b"\xf0\xf0"

    def test_empty(self):
        assert parity_of([]) == b""

    @given(st.lists(st.binary(max_size=500), min_size=1, max_size=6))
    def test_fast_equals_reference(self, images):
        assert parity_of_fast(images) == parity_of(images)

    @given(st.lists(st.binary(min_size=1, max_size=500), min_size=2,
                    max_size=6),
           st.data())
    def test_any_member_recoverable(self, images, data):
        """Core RAID invariant: parity ^ survivors == missing image."""
        parity = parity_of_fast(images)
        missing = data.draw(st.integers(min_value=0,
                                        max_value=len(images) - 1))
        survivors = [img for i, img in enumerate(images) if i != missing]
        recovered = recover_data_image(parity, survivors)
        original = images[missing]
        assert recovered[:len(original)] == original
        # Only zero padding beyond the original length.
        assert not any(recovered[len(original):])

    @given(st.lists(st.binary(min_size=1, max_size=300), min_size=1,
                    max_size=5))
    def test_xor_of_everything_is_zero(self, images):
        parity = parity_of_fast(images)
        assert not any(parity_of_fast(images + [parity]))

    def test_fast_empty(self):
        assert parity_of_fast([]) == b""

    def test_fast_unequal_lengths_pads_like_reference(self):
        images = [b"\xff", b"\x0f\xf0", b"\x01\x02\x03"]
        assert parity_of_fast(images) == parity_of(images)
        assert parity_of_fast(images) == b"\xf1\xf2\x03"

    def test_fast_equals_reference_at_fragment_scale(self):
        """One megabyte per member — the real stripe-close shape."""
        images = [bytes([17 * (i + 1) & 0xFF]) * (1 << 20) for i in range(3)]
        assert parity_of_fast(images) == parity_of(images)

    def test_fast_accepts_buffer_views(self):
        """Zero-copy write path hands memoryviews, not owned bytes."""
        images = [b"\x0f\x0f\x55", b"\xf0\xf0\xaa"]
        views = [memoryview(img) for img in images]
        assert parity_of_fast(views) == parity_of(images) == b"\xff\xff\xff"


from repro.log.fragment import HEADER_SIZE as HEADER


class TestParityAccumulator:
    """The incremental accumulator must agree byte-for-byte with the
    one-shot :func:`parity_of` over complete images, however the folds
    are interleaved."""

    @given(st.lists(st.binary(min_size=HEADER, max_size=HEADER + 300),
                    min_size=1, max_size=5))
    def test_matches_oracle_in_layer_fold_order(self, images):
        """Payload regions fold as fragments fill, headers at close —
        the exact order the log layer uses."""
        acc = ParityAccumulator()
        for image in images:
            acc.add_range(HEADER, image[HEADER:])
        for image in images:
            acc.add_range(0, image[:HEADER])
        assert acc.parity_payload() == parity_of(images)

    @given(st.lists(st.binary(min_size=HEADER, max_size=HEADER + 300),
                    min_size=1, max_size=5), st.data())
    def test_matches_oracle_any_interleaving(self, images, data):
        """Fold order must not matter: XOR commutes."""
        folds = []
        for image in images:
            folds.append((HEADER, image[HEADER:]))
            folds.append((0, image[:HEADER]))
        order = data.draw(st.permutations(range(len(folds))))
        acc = ParityAccumulator()
        for i in order:
            acc.add_range(*folds[i])
        assert acc.parity_payload() == parity_of(images)

    def test_consumed_counts_every_folded_byte(self):
        acc = ParityAccumulator()
        acc.add_range(HEADER, b"\x01" * 100)
        acc.add_range(0, b"\x02" * HEADER)
        assert acc.consumed == 100 + HEADER

    def test_empty_accumulator_yields_empty_payload(self):
        assert ParityAccumulator().parity_payload() == b""

    def test_zero_length_fold_is_ignored(self):
        acc = ParityAccumulator()
        acc.add_range(HEADER, b"")
        assert acc.consumed == 0
        assert acc.parity_payload() == b""

    def test_rebase_pads_leading_gap_with_zeros(self):
        """A range folded above offset 0, never rebased: the payload
        still covers [0, end) with zero padding below the base."""
        acc = ParityAccumulator()
        acc.add_range(2, b"\x01\x02")
        assert acc.parity_payload() == b"\x00\x00\x01\x02"
        acc.add_range(0, b"\xff")
        assert acc.parity_payload() == b"\xff\x00\x01\x02"

    def test_accepts_memoryviews(self):
        acc = ParityAccumulator()
        acc.add_range(0, memoryview(b"\x0f\x0f"))
        acc.add_range(0, memoryview(b"\xf0\xf0"))
        assert acc.parity_payload() == b"\xff\xff"


class TestStripeGroup:
    def test_size_and_parity_support(self):
        assert StripeGroup(("a",)).size == 1
        assert not StripeGroup(("a",)).supports_parity
        assert StripeGroup(("a", "b")).supports_parity

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            StripeGroup(())

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            StripeGroup(("a", "a"))

    def test_rejects_oversized(self):
        with pytest.raises(ConfigError):
            StripeGroup(tuple("s%d" % i for i in range(17)))


class TestStripeLayout:
    def test_width_adds_parity_member(self):
        layout = StripeLayout(StripeGroup(("a", "b", "c")))
        assert layout.width_for(2) == 3
        assert layout.max_data_fragments() == 2

    def test_single_server_group_has_no_parity(self):
        layout = StripeLayout(StripeGroup(("a",)))
        assert layout.width_for(1) == 1
        assert layout.max_data_fragments() == 1

    def test_rotation_moves_parity_server(self):
        layout = StripeLayout(StripeGroup(("a", "b", "c", "d")))
        parity_servers = [layout.servers_for_stripe(k, 4)[3]
                          for k in range(4)]
        assert sorted(parity_servers) == ["a", "b", "c", "d"]

    def test_each_stripe_uses_distinct_servers(self):
        layout = StripeLayout(StripeGroup(("a", "b", "c", "d")))
        for stripe in range(8):
            servers = layout.servers_for_stripe(stripe, 4)
            assert len(set(servers)) == 4

    def test_short_stripe_placement(self):
        layout = StripeLayout(StripeGroup(("a", "b", "c", "d")))
        servers = layout.servers_for_stripe(1, 2)
        assert servers == ("b", "c")

    def test_too_wide_rejected(self):
        layout = StripeLayout(StripeGroup(("a", "b")))
        with pytest.raises(ValueError):
            layout.servers_for_stripe(0, 3)

    def test_width_for_requires_positive(self):
        layout = StripeLayout(StripeGroup(("a", "b")))
        with pytest.raises(ValueError):
            layout.width_for(0)
