"""Sting crash recovery and cleaner integration."""

import pytest

from repro.services.cache import CacheService
from repro.services.cleaner import CleanerService
from repro.sting.fs import StingFileSystem


def build(cluster, client_id=1):
    stack = cluster.make_stack(client_id=client_id)
    cleaner = stack.push(CleanerService(1, utilization_threshold=0.6))
    stack.push(CacheService(2, capacity_bytes=4 << 20))
    fs = stack.push(StingFileSystem(3, block_size=4096))
    return stack, cleaner, fs


class TestRecovery:
    def test_recover_after_unmount(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.mkdir("/d")
        fs.write_file("/d/f", b"payload" * 100)
        fs.unmount()

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert fs2.formatted
        assert fs2.read_file("/d/f") == b"payload" * 100
        assert fs2.listdir("/") == ["d"]

    def test_recover_after_sync_without_checkpoint(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.write_file("/a", b"1111")
        fs.unmount()
        fs.write_file("/b", b"2222")
        fs.sync()   # durable tail, no checkpoint

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert fs2.read_file("/a") == b"1111"
        assert fs2.read_file("/b") == b"2222"

    def test_unsynced_tail_lost_cleanly(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.write_file("/kept", b"safe")
        fs.unmount()
        fs.write_file("/lost", b"never flushed")  # crash before sync

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert fs2.read_file("/kept") == b"safe"
        assert not fs2.exists("/lost")

    def test_recovery_replays_overwrites_in_order(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.unmount()
        for version in range(5):
            fs.write_file("/f", b"version-%d" % version)
        fs.sync()
        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert fs2.read_file("/f") == b"version-4"

    def test_recovery_of_deletions(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.write_file("/doomed", b"x")
        fs.unmount()
        fs.unlink("/doomed")
        fs.sync()
        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert not fs2.exists("/doomed")

    def test_inode_numbers_not_reused_after_recovery(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        ino_a = fs.create("/a", b"a")
        fs.unmount()
        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        ino_b = fs2.create("/b", b"b")
        assert ino_b > ino_a

    def test_double_crash_recovery(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        fs.write_file("/gen0", b"zero")
        fs.unmount()

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        fs2.write_file("/gen1", b"one")
        fs2.sync()

        stack3, _c3, fs3 = build(cluster4)
        stack3.recover_all()
        assert fs3.read_file("/gen0") == b"zero"
        assert fs3.read_file("/gen1") == b"one"

    def test_recovery_with_failed_server(self, cluster4):
        stack, _cleaner, fs = build(cluster4)
        fs.format()
        blob = bytes(range(256)) * 100
        fs.write_file("/big", blob)
        fs.unmount()
        cluster4.servers["s0"].crash()
        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        assert fs2.read_file("/big") == blob


class TestCleanerIntegration:
    def _churn(self, fs):
        contents = {}
        for round_no in range(6):
            for index in range(25):
                path = "/files/f%02d" % index
                data = bytes([round_no * 11 + index]) * (3000 + 101 * index)
                fs.write_file(path, data)
                contents[path] = data
        return contents

    def test_cleaning_under_live_filesystem(self, cluster4):
        stack, cleaner, fs = build(cluster4)
        fs.format()
        fs.mkdir("/files")
        contents = self._churn(fs)
        fs.unmount()
        moved = cleaner.clean(target_stripes=100)
        assert cleaner.stripes_cleaned > 0
        for path, data in contents.items():
            assert fs.read_file(path) == data

    def test_recovery_after_cleaning(self, cluster4):
        stack, cleaner, fs = build(cluster4)
        fs.format()
        fs.mkdir("/files")
        contents = self._churn(fs)
        fs.unmount()
        cleaner.clean(target_stripes=100)
        fs.unmount()  # persist post-move metadata

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        for path, data in contents.items():
            assert fs2.read_file(path) == data

    def test_crash_between_clean_and_checkpoint(self, cluster4):
        stack, cleaner, fs = build(cluster4)
        fs.format()
        fs.mkdir("/files")
        contents = self._churn(fs)
        fs.unmount()
        cleaner.clean(target_stripes=100)
        stack.flush().wait()  # crash here: moves durable, no checkpoint

        stack2, _c2, fs2 = build(cluster4)
        stack2.recover_all()
        for path, data in contents.items():
            assert fs2.read_file(path) == data

    def test_space_reclaimed_under_churn(self, cluster4):
        stack, cleaner, fs = build(cluster4)
        fs.format()
        fs.mkdir("/files")
        self._churn(fs)
        fs.unmount()
        before = sum(len(server.slots)
                     for server in cluster4.servers.values())
        cleaner.clean(target_stripes=100)
        after = sum(len(server.slots)
                    for server in cluster4.servers.values())
        assert after < before


class TestMultiClientIsolation:
    def test_two_clients_share_servers_without_interference(self, cluster4):
        stack_a, _ca, fs_a = build(cluster4, client_id=1)
        stack_b, _cb, fs_b = build(cluster4, client_id=2)
        fs_a.format()
        fs_b.format()
        fs_a.write_file("/mine", b"client-1 data")
        fs_b.write_file("/mine", b"client-2 data")
        fs_a.unmount()
        fs_b.unmount()
        assert fs_a.read_file("/mine") == b"client-1 data"
        assert fs_b.read_file("/mine") == b"client-2 data"

        # Each client recovers its own log.
        stack_a2, _c, fs_a2 = build(cluster4, client_id=1)
        stack_a2.recover_all()
        stack_b2, _c, fs_b2 = build(cluster4, client_id=2)
        stack_b2.recover_all()
        assert fs_a2.read_file("/mine") == b"client-1 data"
        assert fs_b2.read_file("/mine") == b"client-2 data"
