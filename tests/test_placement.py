"""Placement-layer tests: reallocation-free scale-out.

Covers the :mod:`repro.placement` policies themselves (view history,
rotation stability, validation), their integration with the log layer
(grow/shrink mid-stream, view-history persistence and rollforward
recovery), the bounded location cache, and the multi-client chaos
scenarios at 64 and 256 servers.
"""

import pytest

from repro.chaos.runner import (
    replay_check,
    replay_kill_check,
    run_kill_server,
)
from repro.cluster.cluster import build_local_cluster
from repro.errors import ConfigError
from repro.log.config import LogConfig
from repro.log.fragment import MAX_STRIPE_WIDTH
from repro.log.layer import LogLayer
from repro.log.location import LocationCache
from repro.log.stripe import StripeGroup, StripeLayout
from repro.placement import (
    SequentialCheckingPlacement,
    StaticPlacement,
    decode_views,
    encode_views,
)
from repro.services.logical_disk import LogicalDiskService
from repro.services.stack import ServiceStack

SERVICE_DISK = 17


def _fleet(n):
    return tuple("s%d" % i for i in range(n))


# ---------------------------------------------------------------------------
# Policy geometry and view history
# ---------------------------------------------------------------------------


class TestSequentialPolicy:
    def test_grow_moves_no_preexisting_stripe(self):
        """The tentpole property: growing 16 -> 64 servers changes the
        placement of zero stripes written before the view change."""
        fleet = _fleet(64)
        policy = SequentialCheckingPlacement(fleet, stripe_width=8,
                                             view_servers=fleet[:16])
        before = [policy.servers_for_stripe(n, 8) for n in range(100)]
        policy.grow(fleet[16:], first_stripe=100)
        assert policy.view_epoch == 1
        assert len(policy.current_servers()) == 64
        after = [policy.servers_for_stripe(n, 8) for n in range(100)]
        assert before == after
        # Stripes after the change rotate over the grown view.
        wide = policy.servers_for_stripe(150, 8)
        assert set(wide) - set(fleet[:16])

    def test_view_for_stripe_across_epochs(self):
        fleet = _fleet(32)
        policy = SequentialCheckingPlacement(fleet, stripe_width=4,
                                             view_servers=fleet[:8])
        policy.grow(fleet[8:16], first_stripe=10)
        policy.shrink(fleet[:2], first_stripe=20)
        assert policy.view_for_stripe(5).epoch == 0
        assert policy.view_for_stripe(15).epoch == 1
        assert policy.view_for_stripe(25).epoch == 2
        assert policy.view_for_stripe(10).epoch == 1
        # Epoch-0 placements still resolve after two later epochs.
        assert (policy.servers_for_stripe(3, 4)
                == tuple(fleet[(3 + i) % 8] for i in range(4)))

    def test_rotation_formula(self):
        fleet = _fleet(16)
        policy = SequentialCheckingPlacement(fleet, stripe_width=8)
        for n in (0, 5, 15, 99):
            assert (policy.servers_for_stripe(n, 8)
                    == tuple(fleet[(n + i) % 16] for i in range(8)))

    def test_width_independent_of_fleet_size(self):
        # A 256-server fleet still stripes at MAX_STRIPE_WIDTH at most.
        policy = SequentialCheckingPlacement(_fleet(256), stripe_width=8)
        assert policy.max_data_fragments() == 7
        assert len(policy.servers_for_stripe(0, 8)) == 8

    def test_width_over_limit_is_clear_error(self):
        with pytest.raises(ConfigError) as err:
            SequentialCheckingPlacement(_fleet(64),
                                        stripe_width=MAX_STRIPE_WIDTH + 1)
        assert "independent of the fleet size" in str(err.value)

    def test_group_over_limit_points_at_placement(self):
        with pytest.raises(ConfigError) as err:
            StripeGroup(_fleet(MAX_STRIPE_WIDTH + 1))
        assert "SequentialCheckingPlacement" in str(err.value)

    def test_width_wider_than_view(self):
        with pytest.raises(ConfigError):
            SequentialCheckingPlacement(_fleet(16), stripe_width=8,
                                        view_servers=_fleet(4))

    def test_shrink_below_width_refused(self):
        policy = SequentialCheckingPlacement(_fleet(8), stripe_width=8)
        with pytest.raises(ConfigError) as err:
            policy.shrink(("s0",), first_stripe=10)
        assert "shrink below the stripe width" in str(err.value)

    def test_first_stripe_must_not_regress(self):
        policy = SequentialCheckingPlacement(_fleet(16), stripe_width=4)
        policy.grow((), first_stripe=10)  # no-op grow, no new epoch
        policy.change_view(_fleet(16)[:8], first_stripe=10)
        with pytest.raises(ConfigError):
            policy.change_view(_fleet(16), first_stripe=5)

    def test_encode_decode_roundtrip(self):
        fleet = _fleet(64)
        policy = SequentialCheckingPlacement(fleet, stripe_width=8,
                                             view_servers=fleet[:16])
        policy.grow(fleet[16:], first_stripe=7)
        payload = policy.encode_views()
        assert tuple(decode_views(payload)) == policy.views()
        assert (tuple(decode_views(encode_views(policy.views())))
                == policy.views())

    def test_adopt_views_newest_epoch_wins(self):
        fleet = _fleet(16)
        a = SequentialCheckingPlacement(fleet, stripe_width=4)
        b = SequentialCheckingPlacement(fleet, stripe_width=4)
        a.grow((), first_stripe=0)
        b.change_view(fleet[:8], first_stripe=9)
        assert a.adopt_views(b.views())
        assert a.views() == b.views()
        # Stale history (lower newest epoch) is ignored.
        fresh = SequentialCheckingPlacement(fleet, stripe_width=4)
        assert not b.adopt_views(fresh.views())
        assert b.view_epoch == 1

    def test_plan_reform_prefers_spares(self):
        fleet = _fleet(10)
        policy = SequentialCheckingPlacement(
            fleet, stripe_width=4, spare_servers=fleet[8:],
            view_servers=fleet[:8])
        new_servers, replacement, kept = policy.plan_reform("s3")
        assert not kept
        assert replacement == "s8"
        assert "s3" not in new_servers
        assert "s8" in new_servers

    def test_plan_reform_shrinks_without_spares(self):
        fleet = _fleet(6)
        policy = SequentialCheckingPlacement(fleet, stripe_width=4)
        new_servers, replacement, kept = policy.plan_reform("s1")
        assert not kept and replacement is None
        assert "s1" not in new_servers and len(new_servers) == 5

    def test_plan_reform_keeps_group_at_width_floor(self):
        policy = SequentialCheckingPlacement(_fleet(4), stripe_width=4)
        new_servers, replacement, kept = policy.plan_reform("s0")
        assert kept and new_servers is None and replacement is None


class TestStaticPlacement:
    def test_bit_identical_to_stripe_layout(self):
        group = StripeGroup(_fleet(5))
        layout = StripeLayout(group, parity_fragments=1)
        policy = StaticPlacement(group, parity_fragments=1)
        assert policy.group.servers == group.servers
        for n in range(12):
            for width in range(2, 6):
                assert (policy.servers_for_stripe(n, width)
                        == layout.servers_for_stripe(n, width))
                assert policy.parity_index(width) == layout.parity_index(width)
        assert policy.max_data_fragments() == layout.max_data_fragments()
        for cid in range(7):
            assert policy.initial_stripe_number(cid) == cid % 5

    def test_no_view_persistence(self):
        policy = StaticPlacement(StripeGroup(_fleet(4)))
        assert not policy.persist_views
        assert policy.resets_rotation


# ---------------------------------------------------------------------------
# Bounded location cache
# ---------------------------------------------------------------------------


class TestLocationCacheLRU:
    def test_bound_and_eviction_order(self):
        cache = LocationCache(transport=None, max_entries=4)
        for fid in range(6):
            cache.record(fid, "s%d" % fid)
        assert len(cache) == 4
        assert cache.lru_evictions == 2
        assert cache.get(0) is None and cache.get(1) is None
        assert cache.get(5) == "s5"

    def test_get_refreshes_recency(self):
        cache = LocationCache(transport=None, max_entries=2)
        cache.record(1, "a")
        cache.record(2, "b")
        assert cache.get(1) == "a"   # 1 becomes most recent
        cache.record(3, "c")          # evicts 2, not 1
        assert cache.get(2) is None
        assert cache.get(1) == "a"

    def test_unbounded_by_default(self):
        cache = LocationCache(transport=None)
        for fid in range(100):
            cache.record(fid, "s")
        assert len(cache) == 100 and cache.lru_evictions == 0

    def test_stats_keys(self):
        cache = LocationCache(transport=None, max_entries=8)
        stats = cache.stats()
        for key in ("entries", "max_entries", "hits", "misses",
                    "broadcasts", "evictions", "lru_evictions"):
            assert key in stats

    def test_counter_reaches_health_report(self):
        cluster = build_local_cluster(num_servers=4, fragment_size=4096)
        log = cluster.make_log(1, location_cache_entries=3)
        stack = ServiceStack(log)
        disk = stack.push(LogicalDiskService(SERVICE_DISK))
        for block in range(24):
            disk.write(block, b"x" * 900)
        stack.flush().wait()
        locations = log.health_report()["log"]["locations"]
        assert locations["max_entries"] == 3
        assert locations["entries"] <= 3
        assert locations["lru_evictions"] > 0


# ---------------------------------------------------------------------------
# Log-layer integration: grow/shrink mid-stream, recovery rollforward
# ---------------------------------------------------------------------------


def _write_blocks(disk, start, count, size=700):
    for block in range(start, start + count):
        disk.write(block, bytes([block % 251]) * size)


def _check_blocks(disk, start, count, size=700):
    for block in range(start, start + count):
        assert disk.read(block) == bytes([block % 251]) * size


class TestLogLayerScaleOut:
    def _stack(self, cluster, view, **overrides):
        group = cluster.make_placement(stripe_width=4, view_servers=view)
        log = cluster.make_log(1, group=group, **overrides)
        stack = ServiceStack(log)
        disk = stack.push(LogicalDiskService(SERVICE_DISK))
        return log, stack, disk

    def test_grow_mid_stream_zero_movement(self):
        cluster = build_local_cluster(num_servers=64, fragment_size=4096)
        fleet = cluster.fleet()
        log, stack, disk = self._stack(cluster, fleet[:16])
        _write_blocks(disk, 0, 10)
        stack.flush().wait()
        grown_at = log.next_stripe_number
        assert grown_at > 0
        placed_before = [log.placement.servers_for_stripe(n, 4)
                         for n in range(grown_at)]
        log.grow_fleet(fleet[16:])
        assert log.placement.view_epoch == 1
        _write_blocks(disk, 10, 10)
        stack.flush().wait()
        # Zero movement: every pre-grow stripe resolves identically.
        assert placed_before == [log.placement.servers_for_stripe(n, 4)
                                 for n in range(grown_at)]
        _check_blocks(disk, 0, 20)

    def test_grow_with_write_behind_inflight(self):
        """View bump while the write-behind window holds unflushed
        stripes: in-flight stripes keep their epoch-0 placement."""
        cluster = build_local_cluster(num_servers=32, fragment_size=4096)
        fleet = cluster.fleet()
        log, stack, disk = self._stack(cluster, fleet[:8],
                                       max_inflight_stripes=4,
                                       group_commit_bytes=0)
        # No flush: stripes seal and dispatch as fragments fill.
        _write_blocks(disk, 0, 12)
        assert log.next_stripe_number > 0
        log.grow_fleet(fleet[8:])
        _write_blocks(disk, 12, 12)
        stack.flush().wait()
        _check_blocks(disk, 0, 24)
        views = log.placement.views()
        assert len(views) == 2
        assert views[1].first_stripe > 0

    def test_shrink_keeps_old_stripes_readable(self):
        cluster = build_local_cluster(num_servers=16, fragment_size=4096)
        fleet = cluster.fleet()
        log, stack, disk = self._stack(cluster, fleet)
        _write_blocks(disk, 0, 10)
        stack.flush().wait()
        log.shrink_fleet(fleet[:4])
        assert log.placement.view_epoch == 1
        assert len(log.group.servers) == 12
        _write_blocks(disk, 10, 6)
        stack.flush().wait()
        # Blocks striped onto the removed (still alive) servers remain
        # readable through the view history.
        _check_blocks(disk, 0, 16)

    def test_shrink_below_width_refused_through_layer(self):
        cluster = build_local_cluster(num_servers=8, fragment_size=4096)
        fleet = cluster.fleet()
        group = cluster.make_placement(stripe_width=8)
        log = cluster.make_log(1, group=group)
        with pytest.raises(ConfigError):
            log.shrink_fleet(fleet[:4])

    def test_recovery_rolls_view_history_forward(self):
        """A stripe written under epoch 0 is read by a fresh client
        after two subsequent epochs: the view history must come back
        from the log (checkpoint + rollforward), not from luck."""
        cluster = build_local_cluster(num_servers=64, fragment_size=4096)
        fleet = cluster.fleet()
        log, stack, disk = self._stack(cluster, fleet[:8])
        _write_blocks(disk, 0, 8)
        stack.flush().wait()
        log.grow_fleet(fleet[8:32])          # epoch 1
        _write_blocks(disk, 8, 8)
        stack.flush().wait()
        log.grow_fleet(fleet[32:])           # epoch 2
        _write_blocks(disk, 16, 8)
        stack.checkpoint(disk).wait()
        assert log.placement.view_epoch == 2

        fresh_group = cluster.make_placement(stripe_width=4,
                                             view_servers=fleet[:8])
        fresh_log = cluster.make_log(1, group=fresh_group)
        fresh_stack = ServiceStack(fresh_log)
        fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
        fresh_stack.recover_all()
        assert fresh_log.placement.view_epoch == 2
        assert fresh_log.placement.views() == log.placement.views()
        _check_blocks(fresh_disk, 0, 24)
        # And the recovered client keeps appending under the new view.
        _write_blocks(fresh_disk, 24, 4)
        fresh_stack.flush().wait()
        _check_blocks(fresh_disk, 24, 4)

    def test_static_default_unchanged_for_small_fleets(self):
        cluster = build_local_cluster(num_servers=4, fragment_size=4096)
        log = cluster.make_log(1)
        assert log.placement.kind == "static"
        assert log.group.servers == tuple(cluster.fleet())


# ---------------------------------------------------------------------------
# Chaos at scale: multi-client, big fleets, replay determinism
# ---------------------------------------------------------------------------


class TestChaosAtScale:
    def test_two_client_replay_determinism(self):
        first, second, identical = replay_check(31, num_clients=2)
        assert first.ok, first.problems
        assert identical

    def test_kill_server_64_sequential(self):
        report = run_kill_server(101, num_servers=64, num_clients=2)
        assert report.ok, report.problems
        assert report.stats["clients"] == 2
        assert report.stats["fragments_repaired"] > 0

    def test_kill_server_256_four_clients_replays(self):
        # The view payload for 256 servers needs roomier fragments; the
        # bounded location cache keeps per-client memory flat.
        first, second, identical = replay_kill_check(
            202, num_servers=256, num_clients=4, fragment_size=1 << 14,
            log_overrides={"location_cache_entries": 512})
        assert first.ok, first.problems
        assert identical
        assert first.stats["victims_killed"] == 1

    def test_single_client_static_digest_unchanged(self):
        # The multi-client refactor must not perturb single-client
        # runs: same seed, same digest as a direct replay.
        first, second, identical = replay_check(7)
        assert first.ok and identical
        assert first.stats["clients"] == 1
