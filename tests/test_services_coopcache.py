"""Tests for hint-based cooperative caching."""

import pytest

from repro.services.coopcache import CooperativeCacheService, HintDirectory
from repro.services.logical_disk import LogicalDiskService
from repro.shared.client import SharedDataService, SharedSwarmClient
from repro.shared.lease import LeaseManager
from repro.shared.manager import NamespaceManager


def coop_world(cluster, n_clients=3, capacity=1 << 20):
    """Shared namespace + one cooperative cache per client."""
    hints = HintDirectory()
    leases = LeaseManager()
    stacks, caches, clients = {}, {}, {}
    manager = None
    for client_id in range(1, n_clients + 1):
        stack = cluster.make_stack(client_id)
        stacks[client_id] = stack
        if manager is None:
            manager = stack.push(NamespaceManager(10))
    for client_id in range(1, n_clients + 1):
        stack = stacks[client_id]
        caches[client_id] = stack.push(CooperativeCacheService(
            12, hints, capacity_bytes=capacity))
        data = stack.push(SharedDataService(11))
        clients[client_id] = SharedSwarmClient(client_id, stack, data,
                                               manager, leases,
                                               block_size=4096)
        # Shared reads must bypass the whole-file client cache so the
        # block-level cooperative cache is exercised.
        clients[client_id]._cache = _NoCache()
    return hints, stacks, caches, clients


class _NoCache(dict):
    def __setitem__(self, key, value):
        pass


class TestHintDirectory:
    def test_lookup_excludes_asker(self):
        from repro.log.address import BlockAddress

        hints = HintDirectory()
        cache = CooperativeCacheService(1, hints)
        addr = BlockAddress(1, 0, 10)
        hints.suggest(addr, cache)
        assert hints.lookup(addr, cache) is None
        other = CooperativeCacheService(1, hints)
        assert hints.lookup(addr, other) is cache

    def test_forget_only_removes_matching_holder(self):
        from repro.log.address import BlockAddress

        hints = HintDirectory()
        a = CooperativeCacheService(1, hints)
        b = CooperativeCacheService(1, hints)
        addr = BlockAddress(1, 0, 10)
        hints.suggest(addr, a)
        hints.forget(addr, b)   # wrong holder: no-op
        assert hints.lookup(addr, b) is a


class TestProbe:
    """Direct peer-protocol semantics, without a cluster."""

    def make_cache(self, hints=None):
        return CooperativeCacheService(1, hints or HintDirectory(),
                                       capacity_bytes=1 << 16)

    def addr(self, n=1):
        from repro.log.address import BlockAddress

        return BlockAddress(n, 0, 16)

    def test_probe_answers_from_memory(self):
        cache = self.make_cache()
        cache._insert(self.addr(), b"cached-bytes-16!")
        assert cache.probe(self.addr()) == b"cached-bytes-16!"
        assert cache.peer_probes_served == 1

    def test_probe_miss_returns_none_without_counting(self):
        cache = self.make_cache()
        assert cache.probe(self.addr()) is None
        assert cache.peer_probes_served == 0
        # A peer probe is not a local lookup: hit/miss stats untouched.
        assert (cache.hits, cache.misses) == (0, 0)

    def test_probe_refreshes_lru_position(self):
        """A probed block is hot: it must not be the next eviction."""
        cache = CooperativeCacheService(1, HintDirectory(),
                                        capacity_bytes=48)
        first, second = self.addr(1), self.addr(2)
        cache._insert(first, b"a" * 16)
        cache._insert(second, b"b" * 16)
        cache.probe(first)                      # refresh
        cache._insert(self.addr(3), b"c" * 32)  # forces eviction
        assert cache.probe(first) == b"a" * 16
        assert cache.probe(second) is None

    def test_wrong_hint_forgotten_in_directory(self):
        hints = HintDirectory()
        holder, asker = self.make_cache(hints), self.make_cache(hints)
        addr = self.addr()
        hints.suggest(addr, holder)   # stale: holder never cached it
        assert asker.cache_lookup(addr) is None
        assert asker.wrong_hints == 1
        assert hints.lookup(addr, asker) is None   # forgotten

    def test_peer_hit_rebinds_hint_to_borrower(self):
        hints = HintDirectory()
        holder, asker = self.make_cache(hints), self.make_cache(hints)
        third = self.make_cache(hints)
        addr = self.addr()
        holder.cache_insert(addr, b"shared-block-16!")
        assert asker.cache_lookup(addr) == b"shared-block-16!"
        assert asker.peer_hits == 1
        # The directory now points at the most recent cacher.
        assert hints.lookup(addr, third) is asker

    def test_invalidate_forgets_own_hint_only(self):
        hints = HintDirectory()
        mine, other = self.make_cache(hints), self.make_cache(hints)
        addr = self.addr()
        mine.cache_insert(addr, b"x" * 16)
        mine.cache_invalidate(addr)
        assert hints.lookup(addr, other) is None
        # A hint owned by someone else survives my invalidation.
        other.cache_insert(addr, b"x" * 16)
        mine.cache_invalidate(addr)
        assert hints.lookup(addr, mine) is other


class TestCooperation:
    def test_peer_hit_avoids_servers(self, cluster4):
        hints, stacks, caches, clients = coop_world(cluster4)
        blob = bytes(range(256)) * 32   # two 4 KB blocks
        clients[1].write_file("/hot", blob)
        clients[2].read_file("/hot")        # server fetch, now cached at 2
        before = {sid: server.retrieve_ops
                  for sid, server in cluster4.servers.items()}
        assert clients[3].read_file("/hot") == blob   # peer hit from 2
        after = {sid: server.retrieve_ops
                 for sid, server in cluster4.servers.items()}
        assert caches[3].peer_hits > 0
        assert before == after   # not a single server retrieve

    def test_wrong_hint_corrected_and_falls_back(self, cluster4):
        hints, stacks, caches, clients = coop_world(cluster4)
        blob = b"x" * 6000
        clients[1].write_file("/f", blob)
        clients[2].read_file("/f")
        caches[2].clear()                    # peer silently dropped it
        assert clients[3].read_file("/f") == blob   # falls back to log
        assert caches[3].wrong_hints > 0

    def test_writer_cache_seeds_hints(self, cluster4):
        hints, stacks, caches, clients = coop_world(cluster4)
        clients[1].write_file("/f", b"y" * 5000)
        clients[1].read_file("/f")   # writer caches its own blocks
        assert clients[2].read_file("/f") == b"y" * 5000
        assert caches[2].peer_hits > 0

    def test_peer_probe_does_no_io(self, cluster4):
        hints, stacks, caches, clients = coop_world(cluster4)
        clients[1].write_file("/f", b"z" * 4000)
        clients[2].read_file("/f")
        # Crash every server: peer hits must still work (memory only).
        for server in cluster4.servers.values():
            server.crash()
        assert clients[3].read_file("/f") == b"z" * 4000

    def test_stats_expose_hit_classes(self, cluster4):
        hints, stacks, caches, clients = coop_world(cluster4)
        clients[1].write_file("/f", b"w" * 4000)
        clients[2].read_file("/f")      # server fetch
        clients[2].read_file("/f")      # local hit
        clients[3].read_file("/f")      # peer hit
        assert caches[2].hits >= 1
        assert caches[3].peer_hits >= 1
        assert hints.updates > 0
