"""Tests for the chaos engine: fault plans, the faulty transport, the
retry layer, and checksum-verified degraded reads."""

import pytest

from repro import errors
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.transport import FaultyTransport
from repro.cluster import ClusterConfig, FailureInjector, SimCluster
from repro.log.fragment import Fragment, HEADER_SIZE
from repro.rpc import RetryPolicy, RetryingTransport, messages as m
from repro.rpc.retry import charge_delay
from repro.rpc.transport import CompletedFuture, Transport

SVC = 3


def full_spec(**overrides):
    """A spec with one fault forced on (rate 1) and the rest off."""
    base = dict(drop_request=0.0, drop_response=0.0, delay=0.0,
                duplicate=0.0, torn_store=0.0, bit_flip=0.0,
                victim_window=10 ** 9, max_consecutive=3)
    base.update(overrides)
    return FaultSpec(**base)


def store(transport, fid, data=b"payload", **kwargs):
    return transport.call("s0", m.StoreRequest(fid=fid, data=data, **kwargs))


class FlakyTransport(Transport):
    """Raises a transient error for the first ``failures`` calls."""

    def __init__(self, inner, failures):
        self.inner = inner
        self.failures = failures
        self.calls = 0

    def server_ids(self):
        return self.inner.server_ids()

    def call(self, server_id, request):
        self.calls += 1
        if self.calls <= self.failures:
            raise errors.ServerUnavailableError("flaky")
        return self.inner.call(server_id, request)

    def submit(self, server_id, request):
        try:
            return CompletedFuture(value=self.call(server_id, request))
        except errors.SwarmError as exc:
            return CompletedFuture(exception=exc)


class TestFaultPlan:
    def test_same_seed_same_decisions(self, cluster4):
        requests = [m.StoreRequest(fid=i, data=b"x") for i in range(1, 40)] \
            + [m.RetrieveRequest(fid=i) for i in range(1, 40)]
        servers = sorted(cluster4.servers)

        def schedule(seed):
            plan = FaultPlan(seed)
            plan.attach(servers)
            events = []
            for i, request in enumerate(requests):
                events.append(plan.decide(servers[i % len(servers)], request))
            return plan.durable_victim, events

        assert schedule(7) == schedule(7)

    def test_different_seeds_diverge(self, cluster4):
        servers = sorted(cluster4.servers)
        histories = []
        for seed in range(20):
            plan = FaultPlan(seed, full_spec(drop_request=0.5))
            plan.attach(servers)
            for i in range(50):
                plan.decide(servers[i % 4], m.RetrieveRequest(fid=i + 1))
            histories.append(tuple(plan.history))
        assert len(set(histories)) > 1

    def test_consecutive_budget_forces_clean_call(self):
        plan = FaultPlan(1, full_spec(drop_request=1.0, max_consecutive=2))
        plan.attach(["s0"])
        kinds = [plan.decide("s0", m.RetrieveRequest(fid=1)) for _ in range(9)]
        pattern = [e.kind if e else None for e in kinds]
        # Never more than two faults in a row.
        assert pattern == ["drop_request", "drop_request", None] * 3

    def test_victim_rotates(self):
        plan = FaultPlan(3, full_spec(drop_request=1.0, victim_window=4,
                                      max_consecutive=10 ** 9))
        plan.attach(["s0", "s1", "s2"])
        seen = []
        for _ in range(12):
            seen.append(plan.current_victim)
            plan.decide(plan.current_victim, m.RetrieveRequest(fid=1))
        assert seen == ["s0"] * 4 + ["s1"] * 4 + ["s2"] * 4

    def test_wire_faults_spare_non_victims(self):
        plan = FaultPlan(3, full_spec(drop_request=1.0, victim_window=10 ** 9))
        plan.attach(["s0", "s1"])
        other = "s1" if plan.current_victim == "s0" else "s0"
        non_durable = [sid for sid in ("s0", "s1")
                       if sid != plan.durable_victim]
        for sid in non_durable:
            if sid == plan.current_victim:
                continue
            assert plan.decide(sid, m.RetrieveRequest(fid=1)) is None
        assert plan.decide(plan.current_victim,
                           m.RetrieveRequest(fid=1)) is not None
        assert other is not None  # silence lint: both servers exercised

    def test_durable_faults_confined_to_one_server(self):
        plan = FaultPlan(11, full_spec(torn_store=1.0, bit_flip=1.0,
                                       max_consecutive=10 ** 9))
        plan.attach(["s0", "s1", "s2", "s3"])
        for i in range(40):
            sid = "s%d" % (i % 4)
            plan.decide(sid, m.StoreRequest(fid=100 + i, data=b"x"))
            plan.decide(sid, m.RetrieveRequest(fid=100 + i))
        assert {e.server_id for e in plan.history} == {plan.durable_victim}

    def test_fid_never_torn_twice(self):
        plan = FaultPlan(5, full_spec(torn_store=1.0,
                                      pinned_victim="s0",
                                      max_consecutive=10 ** 9))
        plan.attach(["s0"])
        kinds = [plan.decide("s0", m.StoreRequest(fid=9, data=b"x"))
                 for _ in range(3)]
        assert [e.kind if e else None for e in kinds] == \
            ["torn_store", None, None]

    def test_stop_disables_faults(self):
        plan = FaultPlan(2, full_spec(drop_request=1.0))
        plan.attach(["s0"])
        assert plan.decide("s0", m.RetrieveRequest(fid=1)) is not None
        plan.stop()
        assert not plan.active
        assert all(plan.decide("s0", m.RetrieveRequest(fid=1)) is None
                   for _ in range(10))

    def test_non_faultable_requests_pass_clean(self):
        plan = FaultPlan(2, full_spec(drop_request=1.0))
        plan.attach(["s0"])
        assert plan.decide("s0", m.CreateAclRequest(readers=(),
                                                    writers=())) is None

    def test_spec_validation(self):
        with pytest.raises(errors.ConfigError):
            FaultSpec(drop_request=1.5).validate()
        with pytest.raises(errors.ConfigError):
            FaultSpec(drop_request=0.6, drop_response=0.6).validate()
        with pytest.raises(errors.ConfigError):
            FaultPlan(1, FaultSpec(pinned_victim="nope")).attach(["s0"])


class TestFaultyTransport:
    def plan_transport(self, cluster, **spec_overrides):
        plan = FaultPlan(1, full_spec(pinned_victim="s0", **spec_overrides))
        return plan, FaultyTransport(cluster.transport, plan)

    def test_drop_request_never_reaches_server(self, cluster4):
        plan, faulty = self.plan_transport(cluster4, drop_request=1.0)
        with pytest.raises(errors.ServerUnavailableError):
            store(faulty, 1)
        assert cluster4.servers[plan.current_victim].store_ops == 0

    def test_drop_response_executes_then_fails(self, cluster4):
        plan, faulty = self.plan_transport(cluster4, drop_response=1.0)
        victim = plan.current_victim
        with pytest.raises(errors.ServerUnavailableError):
            faulty.call(victim, m.StoreRequest(fid=1, data=b"committed"))
        # The store went through: the classic lost-reply hazard.
        assert bytes(cluster4.servers[victim].retrieve(1)) == b"committed"

    def test_torn_store_leaves_durable_prefix(self, cluster4):
        plan, faulty = self.plan_transport(cluster4, torn_store=1.0)
        data = bytes(range(256)) * 4
        with pytest.raises(errors.ServerUnavailableError):
            store(faulty, 1, data)
        committed = bytes(cluster4.servers["s0"].retrieve(1))
        assert committed == data[:len(data) // 2]

    def test_duplicate_discards_second_outcome(self, cluster4):
        plan, faulty = self.plan_transport(cluster4, duplicate=1.0,
                                           max_consecutive=1)
        victim = plan.current_victim
        response = faulty.call(victim, m.StoreRequest(fid=1, data=b"x"))
        assert response.value == 0  # first delivery's slot
        # Write-once semantics absorbed the duplicate.
        assert cluster4.servers[victim].store_ops == 1

    def test_bit_flip_changes_exactly_one_bit(self, cluster4):
        data = b"\x00" * 500
        cluster4.servers["s0"].store(10, data)
        plan, faulty = self.plan_transport(cluster4, bit_flip=1.0,
                                           max_consecutive=10 ** 9)
        flipped = bytes(faulty.call("s0", m.RetrieveRequest(fid=10)).payload)
        assert len(flipped) == len(data)
        delta = sum(bin(a ^ b).count("1") for a, b in zip(flipped, data))
        assert delta == 1

    def test_delay_charges_simulated_clock(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        inner = cluster.make_transport(0, deferred_mode=True)
        plan = FaultPlan(1, full_spec(delay=1.0, delay_s=0.5,
                                      max_consecutive=10 ** 9,
                                      pinned_victim="s0"))
        faulty = FaultyTransport(inner, plan)
        faulty.call("s0", m.StoreRequest(fid=1, data=b"x"))
        assert inner.take_deferred_time() >= 0.5

    def test_submit_intercepted_when_synchronous(self, cluster4):
        plan, faulty = self.plan_transport(cluster4, drop_request=1.0)
        future = faulty.submit(plan.current_victim,
                               m.StoreRequest(fid=1, data=b"x"))
        assert future.triggered and not future.ok
        assert isinstance(future.exception, errors.ServerUnavailableError)

    def test_async_sim_submit_passes_through(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        inner = cluster.make_transport(0)  # true-async path
        plan = FaultPlan(1, full_spec(drop_request=1.0, pinned_victim="s0"))
        faulty = FaultyTransport(inner, plan)
        assert not faulty.submit_is_synchronous

        def workload():
            response = yield faulty.submit(
                "s0", m.StoreRequest(fid=1, data=b"x"))
            return response.value

        assert cluster.sim.run_process(workload()) == 0
        assert faulty.faults_applied == 0


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=0.01, multiplier=2.0,
                             max_backoff_s=0.05, jitter=0.0)
        assert policy.backoff_for(1) == pytest.approx(0.01)
        assert policy.backoff_for(2) == pytest.approx(0.02)
        assert policy.backoff_for(4) == pytest.approx(0.05)  # capped

    def test_jitter_is_seeded(self):
        first = [RetryPolicy(seed=9).backoff_for(n) for n in range(1, 6)]
        second = [RetryPolicy(seed=9).backoff_for(n) for n in range(1, 6)]
        other = [RetryPolicy(seed=10).backoff_for(n) for n in range(1, 6)]
        assert first == second
        assert first != other

    def test_validation(self):
        with pytest.raises(errors.ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(errors.ConfigError):
            RetryPolicy(jitter=1.5)


class TestRetryingTransport:
    def test_transient_failures_retried(self, cluster4):
        flaky = FlakyTransport(cluster4.transport, failures=3)
        retrying = RetryingTransport(flaky, RetryPolicy(max_attempts=5))
        assert store(retrying, 1).value == 0
        assert retrying.retries == 3

    def test_exhaustion_raises_last_error(self, cluster4):
        flaky = FlakyTransport(cluster4.transport, failures=100)
        retrying = RetryingTransport(flaky, RetryPolicy(max_attempts=4))
        with pytest.raises(errors.ServerUnavailableError):
            store(retrying, 1)
        assert retrying.exhausted == 1
        assert flaky.calls == 4

    def test_deadline_stops_retrying(self, cluster4):
        flaky = FlakyTransport(cluster4.transport, failures=100)
        retrying = RetryingTransport(
            flaky, RetryPolicy(max_attempts=50, base_backoff_s=1.0,
                               max_backoff_s=8.0, jitter=0.0,
                               deadline_s=2.5))
        with pytest.raises(errors.ServerUnavailableError):
            store(retrying, 1)
        assert flaky.calls <= 4

    def test_non_transient_error_immediate(self, cluster4):
        retrying = RetryingTransport(cluster4.transport, RetryPolicy())
        with pytest.raises(errors.FragmentNotFoundError):
            retrying.call("s0", m.RetrieveRequest(fid=404))
        assert retrying.retries == 0

    def test_lost_reply_store_resolved_as_success(self, cluster4):
        plan = FaultPlan(1, full_spec(drop_response=1.0, max_consecutive=1,
                                      pinned_victim="s0"))
        faulty = FaultyTransport(cluster4.transport, plan)
        retrying = RetryingTransport(faulty, RetryPolicy(max_attempts=5))
        victim = plan.current_victim
        retrying.call(victim, m.StoreRequest(fid=1, data=b"once"))
        assert retrying.ambiguous_resolutions == 1
        assert bytes(cluster4.servers[victim].retrieve(1)) == b"once"

    def test_torn_store_read_repaired(self, cluster4):
        plan = FaultPlan(1, full_spec(torn_store=1.0, max_consecutive=2,
                                      pinned_victim="s0"))
        faulty = FaultyTransport(cluster4.transport, plan)
        retrying = RetryingTransport(faulty, RetryPolicy(max_attempts=5))
        data = bytes(range(256)) * 4
        retrying.call("s0", m.StoreRequest(fid=1, data=data))
        # The torn prefix was detected, deleted, and re-stored whole.
        assert bytes(cluster4.servers["s0"].retrieve(1)) == data
        assert retrying.ambiguous_resolutions == 1

    def test_retried_delete_is_idempotent(self, cluster4):
        cluster4.servers["s0"].store(1, b"x")
        plan = FaultPlan(1, full_spec(drop_response=1.0, max_consecutive=1,
                                      pinned_victim="s0"))
        faulty = FaultyTransport(cluster4.transport, plan)
        retrying = RetryingTransport(faulty, RetryPolicy(max_attempts=5))
        retrying.call(plan.current_victim, m.DeleteRequest(fid=1))
        assert not cluster4.servers[plan.current_victim].holds(1)

    def test_genuine_duplicate_store_still_errors(self, cluster4):
        retrying = RetryingTransport(cluster4.transport, RetryPolicy())
        store(retrying, 1, b"first")
        # A first-attempt FragmentExists is a real caller bug, not an
        # ambiguous retry; it must surface.
        with pytest.raises(errors.FragmentExistsError):
            store(retrying, 1, b"second")

    def test_backoff_charged_to_sim_ledger(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        inner = cluster.make_transport(0, deferred_mode=True)
        flaky = FlakyTransport(inner, failures=2)
        retrying = RetryingTransport(
            flaky, RetryPolicy(max_attempts=5, base_backoff_s=0.1,
                               jitter=0.0))
        retrying.call("s0", m.StoreRequest(fid=1, data=b"x"))
        # 0.1 + 0.2 of backoff plus the op's own modeled time.
        assert inner.take_deferred_time() >= 0.3

    def test_charge_delay_walks_wrapper_chain(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        inner = cluster.make_transport(0, deferred_mode=True)
        plan = FaultPlan(1, full_spec())
        faulty = FaultyTransport(inner, plan)
        assert charge_delay(faulty, 0.25)
        assert inner.deferred_time >= 0.25

    def test_charge_delay_timeless_transport(self, cluster4):
        assert not charge_delay(cluster4.transport, 0.25)


class TestInjectorPrimitives:
    def written_holder(self, cluster):
        """Write one block and return a (server_id, fid) that holds it."""
        log = cluster.make_log(client_id=1)
        log.write_block(SVC, b"k" * 30000)
        log.flush().wait()
        for sid in sorted(cluster.servers):
            fids = sorted(cluster.servers[sid].list_fids())
            if fids:
                return sid, fids[0]
        raise AssertionError("no server holds a fragment after flush")

    def test_corrupt_fragment_flips_served_bytes(self, cluster4):
        sid, fid = self.written_holder(cluster4)
        server = cluster4.servers[sid]
        before = bytes(server.retrieve(fid))
        FailureInjector(cluster4).corrupt_fragment(
            sid, fid, bit_index=8 * HEADER_SIZE)
        after = bytes(server.retrieve(fid))
        assert before != after
        assert len(before) == len(after)
        with pytest.raises(errors.CorruptFragmentError):
            Fragment.decode(after, verify_crc=True)

    def test_corrupt_fragment_busts_server_cache(self, cluster4):
        sid, fid = self.written_holder(cluster4)
        server = cluster4.servers[sid]
        server.retrieve(fid)  # populate the volatile cache
        FailureInjector(cluster4).corrupt_fragment(sid, fid)
        # The damaged bytes, not the stale cached image, are served.
        with pytest.raises(errors.CorruptFragmentError):
            Fragment.decode(bytes(server.retrieve(fid)), verify_crc=True)

    def test_tear_fragment_truncates(self, cluster4):
        sid, fid = self.written_holder(cluster4)
        server = cluster4.servers[sid]
        full = len(bytes(server.retrieve(fid)))
        FailureInjector(cluster4).tear_fragment(sid, fid, keep_fraction=0.25)
        torn = bytes(server.retrieve(fid))
        assert len(torn) == full // 4
        with pytest.raises(errors.CorruptFragmentError):
            Fragment.decode(torn, verify_crc=True)

    def test_damage_requires_existing_fragment(self, cluster4):
        injector = FailureInjector(cluster4)
        with pytest.raises(errors.FragmentNotFoundError):
            injector.corrupt_fragment("s0", 12345)
        with pytest.raises(errors.FragmentNotFoundError):
            injector.tear_fragment("s0", 12345)

    def test_tear_fraction_validated(self, cluster4):
        injector = FailureInjector(cluster4)
        with pytest.raises(ValueError):
            injector.tear_fragment("s0", 1, keep_fraction=1.0)


class TestVerifiedDegradedReads:
    def test_corrupt_read_falls_back_to_parity(self, cluster4):
        log = cluster4.make_log(client_id=1, verify_reads=True)
        payload = b"v" * 30000
        addr = log.write_block(SVC, payload)
        log.flush().wait()
        holder = log.known_location(addr.fid)
        FailureInjector(cluster4).corrupt_fragment(
            holder, addr.fid, bit_index=8 * HEADER_SIZE + 1)
        assert log.read(addr) == payload

    def test_corruption_evicts_location_cache(self, cluster4):
        log = cluster4.make_log(client_id=1, verify_reads=True)
        addr = log.write_block(SVC, b"w" * 30000)
        log.flush().wait()
        holder = log.known_location(addr.fid)
        assert holder is not None
        FailureInjector(cluster4).corrupt_fragment(holder, addr.fid)
        log.read(addr)
        evictions = log.locations.evictions
        assert evictions >= 1

    def test_unverified_log_serves_corrupt_bytes(self, cluster4):
        """Without verify_reads the old fast path is unchanged — the
        checksum is only checked when asked (perf-neutral default)."""
        log = cluster4.make_log(client_id=1)
        payload = b"u" * 30000
        addr = log.write_block(SVC, payload)
        log.flush().wait()
        FailureInjector(cluster4).corrupt_fragment(
            log.known_location(addr.fid), addr.fid,
            bit_index=8 * (HEADER_SIZE + 100))
        assert log.read(addr) != payload

    def test_reader_verify_falls_back(self, cluster4):
        from repro.log.reader import LogReader

        log = cluster4.make_log(client_id=1)
        addr = log.write_block(SVC, b"r" * 30000)
        log.flush().wait()
        FailureInjector(cluster4).corrupt_fragment(
            log.known_location(addr.fid), addr.fid,
            bit_index=8 * HEADER_SIZE + 2)
        reader = LogReader(cluster4.transport, "client-1", verify=True)
        fragment = reader.read_fragment(addr.fid)
        assert fragment is not None
        Fragment.decode(fragment.encode(), verify_crc=True)
