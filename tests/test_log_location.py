"""Unit tests for the shared fragment-location cache."""

from repro.log.location import LocationCache
from repro.rpc import messages as m
from repro.rpc.transport import LocalTransport
from repro.server.config import ServerConfig
from repro.server.server import StorageServer


class CountingTransport(LocalTransport):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def call(self, server_id, message):
        self.calls += 1
        return super().call(server_id, message)


def make_cluster(n=4):
    servers = {"s%d" % i: StorageServer(ServerConfig(
        "s%d" % i, fragment_size=1 << 16)) for i in range(n)}
    return CountingTransport(servers), servers


class TestLocationCache:
    def test_locate_many_batches_into_one_broadcast(self):
        transport, _servers = make_cluster(4)
        fids = list(range(10, 26))
        for i, fid in enumerate(fids):
            transport.call("s%d" % (i % 4), m.StoreRequest(fid=fid, data=b"x"))
        cache = LocationCache(transport)
        transport.calls = 0
        found = cache.locate_many(fids)
        assert len(found) == 16
        assert cache.broadcasts == 1
        assert transport.calls <= 4  # one RPC per server, max

    def test_hits_served_locally(self):
        transport, _servers = make_cluster(2)
        transport.call("s0", m.StoreRequest(fid=5, data=b"x"))
        cache = LocationCache(transport)
        assert cache.locate(5) == "s0"
        transport.calls = 0
        assert cache.locate(5) == "s0"
        assert transport.calls == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_record_and_evict(self):
        transport, _servers = make_cluster(1)
        cache = LocationCache(transport)
        cache.record(9, "s0")
        assert 9 in cache and cache.get(9) == "s0"
        cache.evict(9)
        assert 9 not in cache and cache.evictions == 1
        cache.evict(9)  # double-evict does not double-count
        assert cache.evictions == 1

    def test_learn_absorbs_stripe_descriptor(self):
        transport, _servers = make_cluster(1)
        cache = LocationCache(transport)

        class Header:
            stripe_base_fid = 100
            servers = ("s0", "s1", "s2")

        cache.learn(Header())
        assert [cache.get(fid) for fid in (100, 101, 102)] == \
            ["s0", "s1", "s2"]

    def test_evict_server_and_retain_servers(self):
        transport, _servers = make_cluster(1)
        cache = LocationCache(transport)
        cache.record(1, "a")
        cache.record(2, "b")
        cache.record(3, "c")
        cache.evict_server("b")
        assert cache.get(2) is None and len(cache) == 2
        cache.retain_servers(["a"])
        assert cache.get(3) is None and cache.get(1) == "a"
        assert cache.evictions == 2

    def test_unlocatable_fid_absent_from_result(self):
        transport, _servers = make_cluster(2)
        cache = LocationCache(transport)
        assert cache.locate(404) is None
        assert cache.locate_many([404, 405]) == {}
