"""Property-based testing of Sting against an in-memory oracle.

Random sequences of file-system operations run simultaneously against
Sting (on a real Swarm cluster) and a trivial dict-based oracle; states
must agree at every step. A second property checks the crash-recovery
invariant: after unmount + recovery, the recovered tree equals the
oracle exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import errors
from repro.cluster import build_local_cluster
from repro.sting.fs import StingFileSystem

NAMES = ["a", "b", "c", "f1", "f2"]  # disjoint from directory names
DIRS = ["/", "/dir1", "/dir2"]


def op_strategy():
    paths = st.sampled_from(["%s/%s" % (d if d != "/" else "", n)
                             for d in DIRS for n in NAMES])
    return st.one_of(
        st.tuples(st.just("write"), paths, st.binary(max_size=12000)),
        st.tuples(st.just("append"), paths, st.binary(min_size=1,
                                                      max_size=3000)),
        st.tuples(st.just("unlink"), paths, st.just(b"")),
        st.tuples(st.just("truncate"), paths,
                  st.integers(min_value=0, max_value=15000)),
        st.tuples(st.just("rename"), st.tuples(paths, paths), st.just(b"")),
    )


def fresh_fs():
    cluster = build_local_cluster(num_servers=3, fragment_size=1 << 16,
                                  server_slots=1024)
    stack = cluster.make_stack(client_id=1)
    fs = stack.push(StingFileSystem(1, block_size=2048))
    fs.format()
    fs.mkdir("/dir1")
    fs.mkdir("/dir2")
    return cluster, stack, fs


def apply_op(fs, oracle, op):
    """Apply one op to both systems; they must agree on the outcome."""
    kind, arg, data = op
    if kind == "write":
        fs.write_file(arg, data)
        oracle[arg] = data
    elif kind == "append":
        if arg in oracle:
            fd = fs.open(arg, append=True)
            fs.write(fd, data)
            fs.close(fd)
            oracle[arg] = oracle[arg] + data
    elif kind == "unlink":
        if arg in oracle:
            fs.unlink(arg)
            del oracle[arg]
        else:
            with pytest.raises(errors.FileSystemError):
                fs.unlink(arg)
    elif kind == "truncate":
        path, size = arg, data
        if path in oracle:
            fs.truncate(path, size)
            old = oracle[path]
            oracle[path] = (old[:size] if size <= len(old)
                            else old + b"\x00" * (size - len(old)))
    elif kind == "rename":
        src, dst = arg
        if src in oracle and src != dst:
            fs.rename(src, dst)
            oracle[dst] = oracle.pop(src)


def assert_same(fs, oracle):
    for path, data in oracle.items():
        assert fs.read_file(path) == data, path
    # No phantom files: walk and compare the full population.
    found = set()
    for directory, _dirs, files in fs.walk("/"):
        for name in files:
            prefix = "" if directory == "/" else directory
            found.add("%s/%s" % (prefix, name))
    assert found == set(oracle)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy(), max_size=30))
def test_sting_matches_oracle(ops):
    _cluster, _stack, fs = fresh_fs()
    oracle = {}
    for op in ops:
        apply_op(fs, oracle, op)
    assert_same(fs, oracle)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy(), max_size=20))
def test_recovered_state_matches_oracle(ops):
    cluster, stack, fs = fresh_fs()
    oracle = {}
    for op in ops:
        apply_op(fs, oracle, op)
    fs.unmount()

    stack2 = cluster.make_stack(client_id=1)
    fs2 = stack2.push(StingFileSystem(1, block_size=2048))
    stack2.recover_all()
    assert_same(fs2, oracle)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy(), max_size=20),
       victim=st.sampled_from(["s0", "s1", "s2"]))
def test_oracle_holds_with_one_server_down(ops, victim):
    cluster, stack, fs = fresh_fs()
    oracle = {}
    for op in ops:
        apply_op(fs, oracle, op)
    fs.sync()
    cluster.servers[victim].crash()
    fs._inodes.clear()  # drop the in-memory inode cache: force reads
    assert_same(fs, oracle)
