"""Property tests for the pluggable erasure-coding engines.

Covers the tentpole guarantees end to end:

* GF(256) arithmetic is a field (the log/exp tables are consistent);
* the normalized Cauchy matrix has the structural properties the rest
  of the system leans on — an all-ones row for ``m == 1`` (so XOR *is*
  Reed–Solomon at one parity and the on-disk format needs no scheme
  tag), a k-independent prefix (so incremental accumulation can start
  before the stripe width is known), and invertibility of every
  survivor selection (so any ``m`` erasures decode);
* seeded random (k, m, erasure-set) round trips through encode/decode;
* incremental accumulation is byte-exact against one-shot encode for
  arbitrary range splits;
* the refactored XOR write path is bit-identical to the pre-refactor
  one, pinned by a golden on-disk digest captured before the refactor.
"""

import hashlib
import itertools
import random

import pytest
from hypothesis import given, strategies as st

from repro.cluster import build_local_cluster
from repro.errors import ConfigError
from repro.log.coding import (
    ReedSolomonEngine,
    RSAccumulator,
    XorEngine,
    coding_coefficient,
    coding_matrix,
    decode_data,
    decode_matrix,
    generator_row,
    gf_div,
    gf_inv,
    gf_matrix_invert,
    gf_mul,
    make_engine,
    mul_table,
    scale_bytes,
)
from repro.log.stripe import parity_of_fast


class TestFieldArithmetic:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_mul_associative_commutative_distributive(self, a, b, c):
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(st.integers(1, 255))
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1
        assert gf_div(1, a) == gf_inv(a)

    @given(st.integers(0, 255), st.integers(1, 255))
    def test_div_undoes_mul(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    @given(st.integers(0, 255))
    def test_identity_and_zero(self, a):
        assert gf_mul(a, 1) == a
        assert gf_mul(a, 0) == 0

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(st.integers(0, 255), st.binary(max_size=300))
    def test_translate_table_matches_scalar_mul(self, c, data):
        assert scale_bytes(data, c) == bytes(gf_mul(c, v) for v in data)

    def test_mul_table_identity_for_one(self):
        assert mul_table(1) == bytes(range(256))


class TestCodingMatrix:
    def test_m1_row_is_all_ones(self):
        """At one parity the code *is* XOR — the no-scheme-tag property."""
        for k in range(1, 15):
            assert coding_matrix(k, 1) == [[1] * k]

    def test_row0_and_column0_are_ones(self):
        for m in range(1, 6):
            matrix = coding_matrix(12, m)
            assert matrix[0] == [1] * 12
            assert all(row[0] == 1 for row in matrix)

    def test_prefix_stable_in_k(self):
        """C[j][i] never depends on k: short stripes are prefixes."""
        for m in (1, 2, 3):
            wide = coding_matrix(14, m)
            for k in range(1, 14):
                narrow = coding_matrix(k, m)
                assert [row[:k] for row in wide] == narrow

    def test_every_square_submatrix_invertible(self):
        """Any m×m selection of columns inverts — any m erasures decode."""
        m, k = 3, 8
        matrix = coding_matrix(k, m)
        for cols in itertools.combinations(range(k), m):
            square = [[matrix[j][i] for i in cols] for j in range(m)]
            inverse = gf_matrix_invert(square)
            for r in range(m):
                for c in range(m):
                    got = 0
                    for t in range(m):
                        got ^= gf_mul(square[r][t], inverse[t][c])
                    assert got == (1 if r == c else 0)

    def test_width_limit(self):
        with pytest.raises(ConfigError):
            coding_coefficient(200, 0, 100)

    @given(st.integers(1, 4), st.integers(2, 10), st.data())
    def test_decode_matrix_is_inverse(self, m, k, data):
        """A·A⁻¹ = I for every survivor selection the decoder can face."""
        rows = tuple(sorted(data.draw(
            st.permutations(list(range(k + m))).map(lambda p: p[:k]))))
        inverse = decode_matrix(k, m, rows)
        selected = [generator_row(k, m, row) for row in rows]
        # Multiply inverse · selected — should be the identity.
        for r in range(k):
            for c in range(k):
                got = 0
                for t in range(k):
                    got ^= gf_mul(inverse[r][t], selected[t][c])
                assert got == (1 if r == c else 0)


class TestRoundTrip:
    def test_seeded_random_erasures(self):
        """300 random (k, m, erasure-set) draws must all round-trip."""
        rng = random.Random(0xC0DE)
        for _ in range(300):
            k = rng.randint(1, 9)
            m = rng.randint(1, 4)
            engine = ReedSolomonEngine(m)
            images = [rng.randbytes(rng.randint(0, 400)) for _ in range(k)]
            parities = engine.encode(images)
            length = max((len(img) for img in images), default=0)
            assert all(len(p) == length for p in parities)
            erase = rng.randint(1, min(m, k))
            erased = set(rng.sample(range(k), erase))
            present = {i: images[i] for i in range(k) if i not in erased}
            # Offer a random sufficient subset of the parity rows too.
            for j in rng.sample(range(m), m)[:erase + rng.randint(0, m - erase)]:
                present[k + j] = parities[j]
            if len(present) < k:
                continue  # not enough survivors offered; skip draw
            recovered = decode_data(k, m, present)
            assert set(recovered) == erased
            for i in erased:
                padded = images[i] + bytes(length - len(images[i]))
                assert recovered[i] == padded

    def test_too_many_erasures_raises(self):
        engine = ReedSolomonEngine(2)
        images = [b"abc", b"defg", b"hi"]
        parities = engine.encode(images)
        present = {0: images[0], 3: parities[0]}  # 2 of 3 data lost, 1 parity
        with pytest.raises(ValueError):
            decode_data(3, 2, present)

    def test_m1_parity_equals_xor(self):
        """Reed–Solomon at one parity emits the XOR payload, bit for bit."""
        rng = random.Random(7)
        images = [rng.randbytes(rng.randint(1, 300)) for _ in range(5)]
        assert ReedSolomonEngine(1).encode(images) == [parity_of_fast(images)]
        assert XorEngine().encode(images) == [parity_of_fast(images)]

    @given(st.integers(1, 3), st.lists(st.binary(max_size=200), min_size=1,
                                       max_size=6),
           st.data())
    def test_single_parity_rebuild_matches_survivor_xor(self, m, images,
                                                        data):
        """Decoding one erased member from data+parity survivors."""
        k = len(images)
        engine = ReedSolomonEngine(m)
        parities = engine.encode(images)
        missing = data.draw(st.integers(0, k - 1))
        present = {i: img for i, img in enumerate(images) if i != missing}
        present[k] = parities[0]
        recovered = decode_data(k, m, present)
        length = max(len(img) for img in images)
        assert recovered[missing] == images[missing] + bytes(
            length - len(images[missing]))


class TestIncrementalAccumulation:
    def test_incremental_equals_one_shot_random_splits(self):
        """Range-at-a-time folding is byte-exact vs whole-image encode."""
        rng = random.Random(0xACC)
        for _ in range(60):
            k = rng.randint(1, 6)
            m = rng.randint(1, 4)
            engine = ReedSolomonEngine(m)
            images = [rng.randbytes(rng.randint(1, 500)) for _ in range(k)]
            acc = engine.make_accumulator()
            for index, image in enumerate(images):
                # Feed each image as disjoint ranges in shuffled order.
                cuts = sorted(rng.sample(range(1, len(image)),
                                         min(3, len(image) - 1))
                              ) if len(image) > 1 else []
                bounds = [0] + cuts + [len(image)]
                pieces = [(bounds[p], image[bounds[p]:bounds[p + 1]])
                          for p in range(len(bounds) - 1)]
                rng.shuffle(pieces)
                for offset, piece in pieces:
                    acc.add_range(index, offset, piece)
            assert acc.payloads() == engine.encode(images)

    def test_consumed_scales_with_parity_count(self):
        """Cost accounting: RS folds every byte into every slot."""
        images = [b"\x55" * 100, b"\xaa" * 100]
        for m in (1, 2, 3):
            acc = RSAccumulator(m)
            for index, image in enumerate(images):
                acc.add_range(index, 0, image)
            assert acc.consumed == m * sum(len(img) for img in images)

    def test_xor_accumulator_matches_engine(self):
        engine = make_engine("xor", 1)
        images = [b"abcdef", b"ghijklmn", b"op"]
        acc = engine.make_accumulator()
        for index, image in enumerate(images):
            acc.add_range(index, 0, image)
        assert acc.payloads() == engine.encode(images)


GOLDEN_XOR_DIGEST = \
    "3c7bf75cd54cbbf06304cfc1559bd90de977417ee8c3a3ae887140d41759d0f1"


class TestXorBitIdentity:
    def test_golden_on_disk_digest(self):
        """The refactored write path emits pre-refactor bytes exactly.

        The digest was captured on the commit *before* the coding-engine
        refactor, over every fragment image a fixed deterministic
        workload leaves on every server. Any change to header packing,
        parity math, or placement under the default (xor, m=1) config
        breaks this test — which is the point.
        """
        cluster = build_local_cluster(num_servers=4, fragment_size=1 << 12,
                                      server_slots=512)
        log = cluster.make_log(client_id=1)
        for i in range(40):
            data = bytes([(i * 11 + 5) % 256]) * (1200 + 37 * (i % 7))
            log.write_block(3, data, b"\x00\x01\x02\x03")
        log.flush().wait()
        digest = hashlib.sha256()
        for sid in sorted(cluster.servers):
            server = cluster.servers[sid]
            for fid in sorted(server.list_fids()):
                image = server.retrieve(fid, 0, -1)
                digest.update(sid.encode())
                digest.update(fid.to_bytes(8, "big"))
                digest.update(hashlib.sha256(image).digest())
        assert digest.hexdigest() == GOLDEN_XOR_DIGEST


class TestEngineSelection:
    def test_make_engine_validation(self):
        assert make_engine("xor", 0) is None
        assert make_engine("rs", 0) is None
        assert isinstance(make_engine("xor", 1), XorEngine)
        assert isinstance(make_engine("rs", 3), ReedSolomonEngine)
        with pytest.raises(ConfigError):
            make_engine("xor", 2)
        with pytest.raises(ConfigError):
            make_engine("raid6", 1)

    def test_engine_for_stripe_geometry(self):
        from repro.log.coding import engine_for_stripe
        from repro.log.fragment import NO_PARITY

        assert engine_for_stripe(4, NO_PARITY) is None
        assert engine_for_stripe(4, 4) is None  # m == 0 layout
        assert isinstance(engine_for_stripe(4, 3), XorEngine)
        rs = engine_for_stripe(6, 4)
        assert isinstance(rs, ReedSolomonEngine)
        assert rs.parity_count == 2
