"""Unit tests for the RPC codec and transports."""

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.rpc import messages as m
from repro.rpc.codec import (
    decode_message,
    encode_message,
    encode_message_parts,
    wire_size,
)
from repro.rpc.transport import (
    CompletedFuture,
    LocalTransport,
    dispatch,
    raise_error_response,
)
from repro.server.config import ServerConfig
from repro.server.server import StorageServer


def all_message_examples():
    return [
        m.StoreRequest(fid=7, data=b"payload", principal="c1", marked=True,
                       acl_ranges=((0, 4, 1), (4, 7, 2))),
        m.StoreRequest(fid=0, data=b""),
        m.RetrieveRequest(fid=9, offset=12, length=-1, principal="c2"),
        m.MultiRetrieveRequest(ranges=()),
        m.MultiRetrieveRequest(ranges=((7, 0, 64),), principal="c1"),
        m.MultiRetrieveRequest(ranges=((1, 0, 16), (1, 100, 200),
                                       (2**63 - 1, 2**31 - 1, 2**31 - 1)),
                               principal="batch"),
        m.DeleteRequest(fid=3, principal="x"),
        m.PreallocateRequest(fid=44),
        m.LastMarkedRequest(client_id=5, principal="p"),
        m.LastMarkedRequest(),
        m.HoldsRequest(fids=(123456789,)),
        m.HoldsRequest(fids=(1, 2, 3, 2**63 - 1), principal="batch"),
        m.HoldsRequest(fids=()),
        m.CreateAclRequest(readers=("a", "b"), writers=("c",)),
        m.ModifyAclRequest(aid=2, readers=("x",), writers=None),
        m.ModifyAclRequest(aid=3, readers=None, writers=()),
        m.DeleteAclRequest(aid=8),
        m.EvalScriptRequest(script="puts hi", principal="root"),
        m.Response(value=-1, payload=b"\x00\xff", text="ok"),
        m.ErrorResponse(error_class="FragmentNotFoundError", message="gone"),
    ]


class TestCodec:
    @pytest.mark.parametrize("message", all_message_examples(),
                             ids=lambda msg: type(msg).__name__ + str(hash(repr(msg)) % 97))
    def test_round_trip(self, message):
        assert decode_message(encode_message(message)) == message

    def test_wire_size_tracks_encoding_for_bulk_messages(self):
        # Exact, not approximate: the frame header's length prefix is
        # written from wire_size BEFORE the message is serialized.
        for message in all_message_examples():
            assert wire_size(message) == len(encode_message(message))

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_message(b"\xfe")

    def test_non_message_rejected(self):
        with pytest.raises(TypeError):
            encode_message("not a message")

    @given(st.binary(max_size=4096), st.text(max_size=20),
           st.booleans(), st.integers(min_value=0, max_value=2**63 - 1))
    def test_store_round_trip_property(self, data, principal, marked, fid):
        message = m.StoreRequest(fid=fid, data=data, principal=principal,
                                 marked=marked)
        assert decode_message(encode_message(message)) == message


def _any_message():
    """Strategy over every wire message type with full field ranges."""
    fid = st.integers(min_value=0, max_value=2**63 - 1)
    u32 = st.integers(min_value=0, max_value=2**32 - 1)
    i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
    text = st.text(max_size=24)          # includes non-ASCII: UTF-8 sizing
    data = st.binary(max_size=2048)
    names = st.lists(text, max_size=3).map(tuple)
    maybe_names = st.one_of(st.none(), names)
    return st.one_of(
        st.builds(m.StoreRequest, fid=fid, data=data, principal=text,
                  marked=st.booleans(),
                  acl_ranges=st.lists(st.tuples(u32, u32, fid),
                                      max_size=4).map(tuple)),
        st.builds(m.RetrieveRequest, fid=fid, offset=i64, length=i64,
                  principal=text),
        st.builds(m.MultiRetrieveRequest,
                  ranges=st.lists(st.tuples(fid, u32, u32),
                                  max_size=4).map(tuple),
                  principal=text),
        st.builds(m.DeleteRequest, fid=fid, principal=text),
        st.builds(m.PreallocateRequest, fid=fid, principal=text),
        st.builds(m.LastMarkedRequest, client_id=i64, principal=text),
        st.builds(m.HoldsRequest, fids=st.lists(fid, max_size=6).map(tuple),
                  principal=text),
        st.builds(m.CreateAclRequest, readers=names, writers=names,
                  principal=text),
        st.builds(m.ModifyAclRequest, aid=fid, readers=maybe_names,
                  writers=maybe_names, principal=text),
        st.builds(m.DeleteAclRequest, aid=fid, principal=text),
        st.builds(m.EvalScriptRequest, script=text, principal=text),
        st.builds(m.ListFidsRequest, client_id=i64, principal=text),
        st.builds(m.Response, value=i64, payload=data, text=text),
        st.builds(m.ErrorResponse, error_class=text, message=text),
    )


class TestWireSizeProperty:
    """wire_size must be EXACT for every encodable message.

    The TCP framer stamps the frame header's length prefix from
    ``wire_size(msg)`` before the payload is serialized; any drift
    between the arithmetic and the encoder corrupts the stream for
    every later frame on the connection.
    """

    @given(_any_message())
    def test_wire_size_equals_encoding_exactly(self, message):
        encoded = encode_message(message)
        parts = encode_message_parts(message)
        assert wire_size(message) == len(encoded)
        assert sum(len(part) for part in parts) == len(encoded)
        assert b"".join(bytes(part) for part in parts) == encoded

    @given(_any_message())
    def test_every_message_round_trips(self, message):
        assert decode_message(encode_message(message)) == message


class TestDispatch:
    def test_store_and_retrieve(self, server):
        response = dispatch(server, m.StoreRequest(fid=5, data=b"abcdef"))
        assert isinstance(response, m.Response)
        got = dispatch(server, m.RetrieveRequest(fid=5, offset=2, length=3))
        assert got.payload == b"cde"

    def test_error_becomes_error_response(self, server):
        response = dispatch(server, m.RetrieveRequest(fid=404))
        assert isinstance(response, m.ErrorResponse)
        assert response.error_class == "FragmentNotFoundError"

    def test_error_response_reraises_matching_class(self):
        with pytest.raises(errors.FragmentNotFoundError):
            raise_error_response(m.ErrorResponse("FragmentNotFoundError", "x"))

    def test_unknown_error_class_maps_to_server_error(self):
        with pytest.raises(errors.ServerError):
            raise_error_response(m.ErrorResponse("WeirdError", "x"))

    def test_eval_script_through_dispatch(self, server):
        response = dispatch(server, m.EvalScriptRequest(script="puts [expr 2*3]"))
        assert response.text == "6"

    def test_batched_holds_through_dispatch(self, server):
        from repro.util.packing import unpack_fids
        dispatch(server, m.StoreRequest(fid=5, data=b"a"))
        dispatch(server, m.StoreRequest(fid=9, data=b"b"))
        response = dispatch(server, m.HoldsRequest(fids=(4, 5, 6, 9, 10)))
        held, _end = unpack_fids(response.payload)
        assert held == (5, 9)
        assert response.value == 2

    def test_multi_retrieve_through_dispatch(self, server):
        dispatch(server, m.StoreRequest(fid=5, data=b"abcdefgh"))
        dispatch(server, m.StoreRequest(fid=9, data=b"01234567"))
        response = dispatch(server, m.MultiRetrieveRequest(
            ranges=((5, 2, 3), (9, 0, 4), (5, 0, 2))))
        assert isinstance(response, m.Response)
        # Ranges' bytes concatenated in request order; value = count.
        assert response.payload == b"cde" + b"0123" + b"ab"
        assert response.value == 3

    def test_multi_retrieve_rejects_out_of_bounds_range(self, server):
        dispatch(server, m.StoreRequest(fid=5, data=b"abcdefgh"))
        response = dispatch(server, m.MultiRetrieveRequest(
            ranges=((5, 0, 4), (5, 6, 10))))
        assert isinstance(response, m.ErrorResponse)
        assert response.error_class == "BadRequestError"

    def test_multi_retrieve_rejects_overlapping_ranges(self, server):
        dispatch(server, m.StoreRequest(fid=5, data=b"abcdefgh"))
        response = dispatch(server, m.MultiRetrieveRequest(
            ranges=((5, 0, 4), (5, 2, 3))))
        assert isinstance(response, m.ErrorResponse)
        assert response.error_class == "BadRequestError"
        assert "overlap" in response.message

    def test_multi_retrieve_rejects_negative_length(self, server):
        dispatch(server, m.StoreRequest(fid=5, data=b"abcdefgh"))
        response = dispatch(server, m.MultiRetrieveRequest(
            ranges=((5, 0, -1),)))
        assert isinstance(response, m.ErrorResponse)
        assert response.error_class == "BadRequestError"

    def test_multi_retrieve_missing_fragment(self, server):
        response = dispatch(server, m.MultiRetrieveRequest(
            ranges=((404, 0, 4),)))
        assert isinstance(response, m.ErrorResponse)
        assert response.error_class == "FragmentNotFoundError"


class TestLocalTransport:
    def _transport(self, verify_codec):
        servers = {name: StorageServer(ServerConfig(name, fragment_size=1 << 16))
                   for name in ("s0", "s1")}
        return LocalTransport(servers, verify_codec=verify_codec), servers

    @pytest.mark.parametrize("verify_codec", [False, True])
    def test_call_round_trip(self, verify_codec):
        transport, _servers = self._transport(verify_codec)
        transport.call("s0", m.StoreRequest(fid=1, data=b"zz"))
        response = transport.call("s0", m.RetrieveRequest(fid=1))
        assert response.payload == b"zz"

    def test_call_unknown_server(self):
        transport, _ = self._transport(False)
        with pytest.raises(errors.ServerUnavailableError):
            transport.call("nope", m.HoldsRequest(fids=(1,)))

    def test_submit_returns_completed_future(self):
        transport, _ = self._transport(False)
        future = transport.submit("s0", m.StoreRequest(fid=1, data=b"a"))
        assert future.triggered and future.ok
        assert future.result().value == 0  # slot 0

    def test_submit_failure_captured_in_future(self):
        transport, _ = self._transport(False)
        future = transport.submit("s0", m.DeleteRequest(fid=99))
        assert future.triggered and not future.ok
        with pytest.raises(errors.FragmentNotFoundError):
            future.result()

    def test_broadcast_holds_finds_right_server(self):
        transport, servers = self._transport(False)
        transport.call("s1", m.StoreRequest(fid=77, data=b"x"))
        assert transport.broadcast_holds([77, 78]) == {77: "s1"}

    def test_broadcast_skips_crashed_servers(self):
        transport, servers = self._transport(False)
        transport.call("s1", m.StoreRequest(fid=77, data=b"x"))
        servers["s0"].crash()
        assert transport.broadcast_holds([77]) == {77: "s1"}

    def test_completed_future_ok_semantics(self):
        assert CompletedFuture(value=1).ok
        assert not CompletedFuture(exception=ValueError()).ok


class CountingTransport(LocalTransport):
    """LocalTransport that counts every RPC issued through call()."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def call(self, server_id, message):
        self.calls += 1
        return super().call(server_id, message)


class TestBatchedBroadcastHolds:
    """Locating F fragments over S servers must cost O(S) RPCs, not O(F*S)."""

    def _cluster(self, n_servers, verify_codec=False):
        servers = {"s%d" % i: StorageServer(
            ServerConfig("s%d" % i, fragment_size=1 << 16))
            for i in range(n_servers)}
        return CountingTransport(servers, verify_codec=verify_codec), servers

    @pytest.mark.parametrize("verify_codec", [False, True])
    def test_32_fids_8_servers_at_most_8_rpcs(self, verify_codec):
        transport, servers = self._cluster(8, verify_codec)
        fids = list(range(100, 132))
        for i, fid in enumerate(fids):
            transport.call("s%d" % (i % 8), m.StoreRequest(fid=fid, data=b"x"))
        transport.calls = 0
        found = transport.broadcast_holds(fids)
        assert found == {fid: "s%d" % (i % 8) for i, fid in enumerate(fids)}
        assert transport.calls <= 8

    def test_scatter_asks_every_server_once(self):
        # The broadcast fans out to all servers concurrently (one
        # overlapped round trip), so the cost is exactly one RPC per
        # server — never one *sequential* sweep per fid.
        transport, _servers = self._cluster(8)
        transport.call("s0", m.StoreRequest(fid=7, data=b"x"))
        transport.call("s0", m.StoreRequest(fid=8, data=b"y"))
        transport.calls = 0
        assert transport.broadcast_holds([7, 8]) == {7: "s0", 8: "s0"}
        assert transport.calls == 8

    def test_unfound_fids_sweep_every_server_once(self):
        transport, _servers = self._cluster(5)
        transport.calls = 0
        assert transport.broadcast_holds([1, 2, 3]) == {}
        assert transport.calls == 5

    def test_duplicate_fids_deduplicated(self):
        transport, _servers = self._cluster(3)
        transport.call("s2", m.StoreRequest(fid=4, data=b"z"))
        assert transport.broadcast_holds([4, 4, 4]) == {4: "s2"}


class TestBroadcastPartialFailure:
    """A non-answering server must not wedge location: live servers'
    fragments are still found, the caller learns who was unreachable,
    and a LocationCache evicts the sick server's stale placements."""

    def _cluster(self, n_servers=3):
        servers = {"s%d" % i: StorageServer(
            ServerConfig("s%d" % i, fragment_size=1 << 16))
            for i in range(n_servers)}
        return LocalTransport(servers), servers

    def test_live_servers_still_located(self):
        transport, servers = self._cluster()
        transport.call("s0", m.StoreRequest(fid=1, data=b"a"))
        transport.call("s2", m.StoreRequest(fid=2, data=b"b"))
        servers["s1"].crash()
        assert transport.broadcast_holds([1, 2]) == {1: "s0", 2: "s2"}

    def test_on_unreachable_names_every_sick_server(self):
        transport, servers = self._cluster()
        transport.call("s2", m.StoreRequest(fid=9, data=b"z"))
        servers["s0"].crash()
        servers["s1"].crash()
        unreachable = []
        found = transport.broadcast_holds([9, 10],
                                          on_unreachable=unreachable.append)
        assert found == {9: "s2"}
        assert unreachable == ["s0", "s1"]

    def test_callback_optional(self):
        transport, servers = self._cluster()
        servers["s0"].crash()
        # No callback given: the crash is simply skipped, no error.
        assert transport.broadcast_holds([1]) == {}

    def test_locate_many_evicts_stale_placements(self):
        from repro.log.location import LocationCache

        transport, servers = self._cluster()
        transport.call("s1", m.StoreRequest(fid=5, data=b"x"))
        transport.call("s2", m.StoreRequest(fid=6, data=b"y"))
        cache = LocationCache(transport)
        cache.record(5, "s1")   # about to go stale
        cache.record(7, "s1")   # stale placement for a missing fid
        servers["s1"].crash()
        # fid 6 is a miss -> broadcast -> s1 cannot answer -> its
        # cached placements are evicted, not kept as landmines.
        found = cache.locate_many([6])
        assert found == {6: "s2"}
        assert cache.get(5) is None and cache.get(7) is None
        assert cache.evictions == 2

    def test_locate_after_eviction_relocates(self):
        from repro.log.location import LocationCache

        transport, servers = self._cluster()
        transport.call("s1", m.StoreRequest(fid=5, data=b"x"))
        cache = LocationCache(transport)
        assert cache.locate(5) == "s1"
        servers["s1"].crash()
        # A cache hit alone never re-checks the server; a broadcast
        # (triggered by any miss) does, and evicts the silent server.
        cache.locate_many([5, 99])
        assert cache.get(5) is None
        servers["s1"].restart()
        assert cache.locate(5) == "s1"  # found again once it answers
