"""Unit tests for Sting's building blocks: paths, inodes, directories."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FileNotFoundFsError, FileSystemError
from repro.log.address import BlockAddress
from repro.sting import directory as dircodec
from repro.sting.inode import (
    FileType,
    INODE_BLOCK_INDEX,
    Inode,
    decode_create_info,
    encode_create_info,
)
from repro.sting.path import basename, dirname, normalize, split_parent, split_path


class TestPaths:
    @pytest.mark.parametrize("raw,expected", [
        ("/", "/"),
        ("/a/b", "/a/b"),
        ("//a///b/", "/a/b"),
        ("/a/./b", "/a/b"),
        ("/a/../b", "/b"),
        ("/../..", "/"),
        ("/a/b/..", "/a"),
    ])
    def test_normalize(self, raw, expected):
        assert normalize(raw) == expected

    def test_relative_rejected(self):
        with pytest.raises(FileNotFoundFsError):
            normalize("relative/path")

    def test_split_path(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("/") == []

    def test_dirname_basename(self):
        assert dirname("/a/b/c") == "/a/b"
        assert basename("/a/b/c") == "c"
        assert dirname("/top") == "/"
        assert basename("/") == ""

    def test_split_parent(self):
        assert split_parent("/x/y") == ("/x", "y")


class TestInode:
    def test_round_trip(self):
        inode = Inode(ino=9, ftype=FileType.FILE, size=12345, mtime=77,
                      block_size=4096,
                      blocks={0: BlockAddress(5, 100, 4096),
                              2: BlockAddress(6, 200, 153)})
        decoded = Inode.decode(inode.encode())
        assert decoded == inode

    def test_block_count(self):
        inode = Inode(ino=1, ftype=FileType.FILE, size=8193, block_size=4096)
        assert inode.block_count() == 3
        inode.size = 0
        assert inode.block_count() == 0

    def test_corrupt_rejected(self):
        with pytest.raises(FileSystemError):
            Inode.decode(b"xx")

    def test_is_dir(self):
        assert Inode(1, FileType.DIRECTORY).is_dir
        assert not Inode(1, FileType.FILE).is_dir

    @given(st.integers(min_value=1, max_value=2**40),
           st.integers(min_value=0, max_value=2**31))
    def test_create_info_round_trip(self, ino, index):
        decoded = decode_create_info(encode_create_info(ino, index))
        assert decoded == (ino, index)

    def test_create_info_rejects_foreign_bytes(self):
        assert decode_create_info(b"short") is None
        assert decode_create_info(b"") is None

    def test_inode_sentinel_distinct_from_data_indexes(self):
        info = encode_create_info(5, INODE_BLOCK_INDEX)
        ino, index = decode_create_info(info)
        assert index == INODE_BLOCK_INDEX


class TestDirectoryCodec:
    def test_round_trip(self):
        entries = {"alpha": 3, "beta": 9, "üñïçødé": 12}
        assert dircodec.decode_entries(dircodec.encode_entries(entries)) \
            == entries

    def test_empty(self):
        assert dircodec.decode_entries(b"") == {}
        assert dircodec.decode_entries(dircodec.encode_entries({})) == {}

    def test_corrupt_rejected(self):
        with pytest.raises(FileSystemError):
            dircodec.decode_entries(b"\x00\x00\x00\x05trunc")

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "x" * 256])
    def test_invalid_names(self, bad):
        with pytest.raises(FileSystemError):
            dircodec.validate_name(bad)

    def test_valid_names(self):
        for name in ("a", "file.txt", "x" * 255, "ünïcode"):
            dircodec.validate_name(name)

    @given(st.dictionaries(
        st.text(min_size=1, max_size=30).filter(
            lambda s: s not in (".", "..") and "/" not in s),
        st.integers(min_value=1, max_value=2**62), max_size=50))
    def test_round_trip_property(self, entries):
        assert dircodec.decode_entries(dircodec.encode_entries(entries)) \
            == entries
