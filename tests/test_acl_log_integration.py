"""End-to-end ACL protection of a client's log (§2.4.2 integrated)."""

import pytest

from repro import errors
from repro.cluster import build_local_cluster
from repro.log import LogConfig, LogLayer
from repro.rpc import messages as m

SVC = 8


@pytest.fixture
def secured():
    """Enforcing cluster where client 1's log is ACL-protected."""
    cluster = build_local_cluster(num_servers=3, fragment_size=1 << 16,
                                  enforce_acls=True)
    # The same AID must exist on every server in the group; create it
    # everywhere (ids allocate deterministically from 1).
    for server_id in cluster.transport.server_ids():
        aid = cluster.transport.call(server_id, m.CreateAclRequest(
            readers=("client-1",), writers=("client-1",))).value
    log = LogLayer(cluster.transport, cluster.stripe_group(),
                   LogConfig(client_id=1, fragment_size=1 << 16,
                             fragment_aid=aid))
    addr = log.write_block(SVC, b"private-bytes" * 100)
    log.flush().wait()
    return cluster, log, addr, aid


class TestAclProtectedLog:
    def test_owner_reads_fine(self, secured):
        _cluster, log, addr, _aid = secured
        assert log.read(addr) == b"private-bytes" * 100

    def test_stranger_denied(self, secured):
        cluster, _log, addr, _aid = secured
        for server_id in cluster.transport.server_ids():
            try:
                cluster.transport.call(server_id, m.RetrieveRequest(
                    fid=addr.fid, principal="eve"))
            except errors.AccessDeniedError:
                return
            except errors.FragmentNotFoundError:
                continue
        pytest.fail("no server denied the stranger")

    def test_stranger_cannot_delete(self, secured):
        cluster, _log, addr, _aid = secured
        holder = cluster.transport.broadcast_holds([addr.fid])[addr.fid]
        with pytest.raises(errors.AccessDeniedError):
            cluster.transport.call(holder, m.DeleteRequest(
                fid=addr.fid, principal="eve"))

    def test_acl_membership_grants_new_client(self, secured):
        cluster, _log, addr, aid = secured
        holder = cluster.transport.broadcast_holds([addr.fid])[addr.fid]
        with pytest.raises(errors.AccessDeniedError):
            cluster.transport.call(holder, m.RetrieveRequest(
                fid=addr.fid, principal="client-2"))
        # Add client-2 to the ACL on that server: access opens up,
        # without touching any stored data (the paper's point).
        cluster.transport.call(holder, m.ModifyAclRequest(
            aid=aid, readers=("client-1", "client-2")))
        response = cluster.transport.call(holder, m.RetrieveRequest(
            fid=addr.fid, principal="client-2"))
        assert response.payload

    def test_owner_recovery_works_under_acls(self, secured):
        cluster, log, _addr, _aid = secured
        log.checkpoint(SVC, b"protected-cp").wait()
        from repro.log.recovery import recover_service_state

        recovered = recover_service_state(cluster.transport, 1, SVC,
                                          principal="client-1")
        assert recovered.checkpoint_state == b"protected-cp"

    def test_reconstruction_respects_acls(self, secured):
        cluster, log, addr, _aid = secured
        holder = cluster.transport.broadcast_holds([addr.fid])[addr.fid]
        cluster.servers[holder].crash()
        # The owner reconstructs through parity (it can read siblings)...
        assert log.read(addr) == b"private-bytes" * 100
        # ...a stranger cannot: sibling reads are denied.
        from repro.log.reconstruct import Reconstructor

        thief = Reconstructor(cluster.transport, principal="eve")
        with pytest.raises(errors.SwarmError):
            thief.fetch(addr.fid)
