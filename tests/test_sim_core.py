"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.core import Event


class TestTimeouts:
    def test_clock_advances_to_timeout(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert sim.run_process(proc()) == 5.0

    def test_timeouts_fire_in_order(self):
        sim = Simulator()
        fired = []

        def waiter(delay, tag):
            yield sim.timeout(delay)
            fired.append((tag, sim.now))

        sim.process(waiter(3.0, "c"))
        sim.process(waiter(1.0, "a"))
        sim.process(waiter(2.0, "b"))
        sim.run()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []

        def waiter(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "xyz":
            sim.process(waiter(tag))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        done = []

        def late():
            yield sim.timeout(10.0)
            done.append(True)

        sim.process(late())
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not done
        sim.run()
        assert done


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0)
            return 42

        assert sim.run_process(proc()) == 42

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            value = yield sim.process(child())
            return (value, sim.now)

        assert sim.run_process(parent()) == ("child-done", 2.0)

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return "caught %s" % exc
            return "not caught"

        assert sim.run_process(parent()) == "caught boom"

    def test_unobserved_exception_raises_from_run(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 42

        with pytest.raises(SimulationError):
            sim.run_process(bad())

    def test_yield_already_triggered_event(self):
        sim = Simulator()

        def proc():
            ev = sim.event()
            ev.succeed("early")
            sim.run  # no-op reference; the event resolves within this run
            value = yield ev
            return value

        assert sim.run_process(proc()) == "early"

    def test_deadlocked_process_detected(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_process(stuck())


class TestEvents:
    def test_succeed_twice_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_carries_exception(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("nope"))
        assert ev.triggered
        assert not ev.ok

    def test_callback_after_dispatch_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]


class TestCombinators:
    def test_all_of_collects_values(self):
        sim = Simulator()

        def proc():
            events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b"),
                      sim.timeout(2.0, "c")]
            values = yield sim.all_of(events)
            return (values, sim.now)

        values, now = sim.run_process(proc())
        assert values == ["a", "b", "c"]
        assert now == 3.0

    def test_all_of_empty_is_immediate(self):
        sim = Simulator()

        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run_process(proc()) == []

    def test_all_of_fails_on_child_failure(self):
        sim = Simulator()

        def failing():
            yield sim.timeout(1.0)
            raise IOError("disk")

        def proc():
            with pytest.raises(IOError):
                yield sim.all_of([sim.process(failing()), sim.timeout(5.0)])
            return sim.now

        assert sim.run_process(proc()) == 1.0

    def test_any_of_returns_first(self):
        sim = Simulator()

        def proc():
            index, value = yield sim.any_of([sim.timeout(5.0, "slow"),
                                             sim.timeout(1.0, "fast")])
            return (index, value, sim.now)

        assert sim.run_process(proc()) == (1, "fast", 1.0)

    def test_any_of_requires_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])
