"""Tests for atomic recovery units."""

import pytest

from repro import errors
from repro.log.records import RecordType
from repro.services.aru import AruService
from repro.services.base import Service
from repro.services.logical_disk import LogicalDiskService
from repro.services.stack import ServiceStack


class AppService(Service):
    """Minimal record-writing service for replay assertions."""

    RT = RecordType.USER_BASE + 9

    def __init__(self, service_id):
        super().__init__(service_id)
        self.replayed = []

    def log_op(self, payload):
        self.stack.write_record(self, self.RT, payload)

    def restore(self, state, records):
        self.replayed = [r.payload for r in records if r.rtype == self.RT]


def fresh_stack(cluster):
    stack = cluster.make_stack(client_id=1)
    aru = stack.push(AruService(1))
    app = stack.push(AppService(2))
    return stack, aru, app


class TestAruLifecycle:
    def test_begin_assigns_increasing_ids(self, cluster4):
        _stack, aru, _app = fresh_stack(cluster4)
        first = aru.begin()
        aru.commit()
        second = aru.begin()
        aru.commit()
        assert second == first + 1

    def test_nested_begin_rejected(self, cluster4):
        _stack, aru, _app = fresh_stack(cluster4)
        aru.begin()
        with pytest.raises(errors.AruError):
            aru.begin()

    def test_commit_without_begin_rejected(self, cluster4):
        _stack, aru, _app = fresh_stack(cluster4)
        with pytest.raises(errors.AruError):
            aru.commit()

    def test_abort_clears_current(self, cluster4):
        _stack, aru, _app = fresh_stack(cluster4)
        aru.begin()
        aru.abort()
        assert aru.current_aru is None


class TestAtomicity:
    def test_committed_records_replay(self, cluster4):
        stack, aru, app = fresh_stack(cluster4)
        aru.begin()
        app.log_op(b"op-1")
        app.log_op(b"op-2")
        aru.commit()

        stack2, aru2, app2 = fresh_stack(cluster4)
        stack2.recover_all()
        assert app2.replayed == [b"op-1", b"op-2"]

    def test_uncommitted_records_dropped(self, cluster4):
        stack, aru, app = fresh_stack(cluster4)
        aru.begin()
        app.log_op(b"committed")
        aru.commit()
        aru.begin()
        app.log_op(b"phantom-1")
        app.log_op(b"phantom-2")
        stack.flush().wait()   # durable, but the ARU never committed

        stack2, aru2, app2 = fresh_stack(cluster4)
        stack2.recover_all()
        assert app2.replayed == [b"committed"]

    def test_records_outside_any_aru_replay_normally(self, cluster4):
        stack, aru, app = fresh_stack(cluster4)
        app.log_op(b"bare")
        stack.flush().wait()
        stack2, _aru2, app2 = fresh_stack(cluster4)
        stack2.recover_all()
        assert app2.replayed == [b"bare"]

    def test_blocks_in_uncommitted_aru_invisible(self, cluster4):
        """Block creations inside an aborted ARU must not resurface."""
        stack = cluster4.make_stack(client_id=1)
        aru = stack.push(AruService(1))
        disk = stack.push(LogicalDiskService(2))
        disk.write(1, b"stable")
        aru.begin()
        disk.write(2, b"tentative")
        stack.flush().wait()   # crash before commit

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(AruService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        assert disk2.read(1) == b"stable"
        assert not disk2.exists(2)

    def test_blocks_in_committed_aru_visible(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        aru = stack.push(AruService(1))
        disk = stack.push(LogicalDiskService(2))
        aru.begin()
        disk.write(5, b"atomically-written")
        aru.commit()

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(AruService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        assert disk2.read(5) == b"atomically-written"

    def test_commit_survives_crash_via_own_records(self, cluster4):
        """The committed-set is recoverable from BEGIN/COMMIT records
        even without an ARU checkpoint."""
        stack, aru, app = fresh_stack(cluster4)
        aru.begin()
        app.log_op(b"x")
        aru.commit()
        # No checkpoint anywhere; recover purely by rollforward.
        stack2, aru2, app2 = fresh_stack(cluster4)
        stack2.recover_all()
        assert app2.replayed == [b"x"]
        # And the id counter advanced past the used one.
        assert aru2.begin() > 1


class TestCheckpointedAru:
    def test_committed_set_survives_checkpoint_roundtrip(self, cluster4):
        stack, aru, app = fresh_stack(cluster4)
        aru.begin()
        app.log_op(b"early")
        aru.commit()
        stack.checkpoint(aru).wait()
        stack.checkpoint(app).wait()

        stack2, aru2, app2 = fresh_stack(cluster4)
        stack2.recover_all()
        # app's record predates app's checkpoint -> not replayed, but
        # the ARU state must still load cleanly from its checkpoint.
        assert aru2._committed  # includes the early ARU
        aid = aru2.begin()
        app2.log_op(b"later")
        aru2.commit()
        stack3, aru3, app3 = fresh_stack(cluster4)
        stack3.recover_all()
        assert app3.replayed == [b"later"]


class TestAruDeleteAtomicity:
    def test_uncommitted_delete_does_not_replay(self, cluster4):
        """Regression: an overwrite inside an uncommitted ARU must not
        destroy the old value at replay — the DELETE record is tagged
        (and filtered) exactly like the CREATE."""
        stack = cluster4.make_stack(client_id=1)
        aru = stack.push(AruService(1))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"original")
        stack.checkpoint_all()
        aru.begin()
        disk.write(0, b"replacement")   # CREATE new + DELETE old, both tagged
        stack.flush().wait()            # durable, never committed

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(AruService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        assert disk2.read(0) == b"original"

    def test_committed_delete_replays(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        aru = stack.push(AruService(1))
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"original")
        stack.checkpoint_all()
        aru.begin()
        disk.write(0, b"replacement")
        aru.commit()

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(AruService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        assert disk2.read(0) == b"replacement"
