"""Automatic stripe-group reform under chaos (self-healing write path).

Covers the reform half of the self-healing loop: a member dies while
writes are in flight under an adversarial fault schedule, the failure
detector declares it dead from RPC outcomes alone, and the log layer
reforms onto the spare — with every write that raced the reform landing
safely on the new group.

The multi-failure section exercises the same loop at ``m = 2``: two
members crash *simultaneously*, the group reforms onto two spares, the
repair daemon re-materializes every lost fragment onto *distinct*
spares, and fsck reports full health with both victims still down —
replayed bit-identically per ``CHAOS_SEEDS`` seed.
"""

import os

import pytest

from repro import errors
from repro.chaos.plan import (
    FaultPlan,
    FaultSpec,
    choose_kill_victim,
    choose_kill_victims,
)
from repro.chaos.runner import replay_kill_check
from repro.chaos.transport import FaultyTransport
from repro.cluster import build_local_cluster
from repro.cluster.failures import FailureInjector
from repro.health import HealthMonitor, RepairDaemon
from repro.log.config import LogConfig
from repro.log.layer import LogLayer
from repro.log.stripe import StripeGroup
from repro.rpc.retry import RetryPolicy
from repro.tools.fsck import check_client_log

SVC = 3
FRAGMENT = 1 << 12

SEEDS = [int(s) for s in
         os.environ.get("CHAOS_SEEDS", "101,202,303").split(",") if s.strip()]


def healing_log(cluster, plan=None, seed=5):
    """A log over s0..s3 with s4 as spare, detector attached, chaos on."""
    transport = cluster.transport
    if plan is not None:
        transport = FaultyTransport(transport, plan)
    monitor = HealthMonitor(seed=seed)
    log = LogLayer(transport, cluster.stripe_group(["s0", "s1", "s2",
                                                    "s3"]),
                   LogConfig(client_id=1, fragment_size=FRAGMENT,
                             spare_servers=("s4",)),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True,
                   health_monitor=monitor)
    return log, monitor


def drive_until_reform(cluster, log, victim, max_rounds=30):
    """Write/flush in small degraded rounds until auto-reform happens."""
    payloads = {}
    block = 0
    for round_no in range(max_rounds):
        for _ in range(3):
            data = bytes([round_no + 1, block % 251]) * 700
            payloads[block] = log.write_block(SVC, data), data
            block += 1
        log.flush().wait(allow_degraded=True)
        if log.reforms:
            return payloads
    raise AssertionError("no automatic reform after %d rounds" % max_rounds)


class TestAutoReform:
    def test_dead_member_replaced_by_spare_under_chaos(self):
        cluster = build_local_cluster(num_servers=5, fragment_size=FRAGMENT,
                                      server_slots=512)
        victim = choose_kill_victim(5, ["s0", "s1", "s2", "s3"])
        plan = FaultPlan(5, FaultSpec(pinned_victim=victim))
        log, monitor = healing_log(cluster, plan=plan)
        injector = FailureInjector(cluster)

        # Healthy prologue, then the crash.
        before = {}
        for block in range(4):
            data = bytes([9, block]) * 800
            before[block] = (log.write_block(SVC, data), data)
        log.flush().wait(allow_degraded=True)
        injector.crash_server(victim)

        racing = drive_until_reform(cluster, log, victim)
        reform = log.reforms[0]
        assert reform["departed"] == victim
        assert reform["replacement"] == "s4"
        assert victim not in log.group.servers
        assert "s4" in log.group.servers
        assert monitor.status(victim) == "dead"

        # Writes after the reform land on the new group only.
        after = {}
        for block in range(100, 106):
            data = bytes([13, block % 251]) * 800
            after[block] = (log.write_block(SVC, data), data)
        log.flush().wait()  # no member is dead now: full success required
        plan.stop()
        for addr, _data in after.values():
            assert log.locations.get(addr.fid) != victim
        assert cluster.servers["s4"].list_fids()  # spare took real data

        # Everything written before, during, and after the reform reads
        # back intact (pre-crash stripes through parity).
        for addr, data in list(before.values()) + list(racing.values()) \
                + list(after.values()):
            assert log.read(addr) == data

    def test_departed_placements_evicted_from_cache(self):
        cluster = build_local_cluster(num_servers=5, fragment_size=FRAGMENT,
                                      server_slots=512)
        log, monitor = healing_log(cluster)
        injector = FailureInjector(cluster)
        for block in range(6):
            log.write_block(SVC, bytes([block + 1]) * 900)
        log.flush().wait()
        assert log.locations.fids_on("s2")
        injector.crash_server("s2")
        drive_until_reform(cluster, log, "s2")
        assert log.locations.fids_on("s2") == []

    def test_fids_stay_unique_across_reform(self):
        # The stripe-number rotation restarts against the new group;
        # fid allocation must never collide with pre-reform stripes.
        cluster = build_local_cluster(num_servers=5, fragment_size=FRAGMENT,
                                      server_slots=512)
        log, _monitor = healing_log(cluster)
        injector = FailureInjector(cluster)
        for block in range(6):
            log.write_block(SVC, bytes([block + 1]) * 900)
        log.flush().wait()
        injector.crash_server("s3")
        drive_until_reform(cluster, log, "s3")
        for block in range(50, 58):
            log.write_block(SVC, bytes([block % 251]) * 900)
        log.flush().wait()
        placements = {}
        for sid, server in cluster.servers.items():
            if sid == "s3":
                continue
            for fid in server.list_fids():
                assert fid not in placements, \
                    "fid %d on both %s and %s" % (fid, placements[fid], sid)
                placements[fid] = sid

    def test_no_spare_shrinks_the_group(self):
        cluster = build_local_cluster(num_servers=4, fragment_size=FRAGMENT,
                                      server_slots=512)
        monitor = HealthMonitor(seed=2)
        log = LogLayer(cluster.transport, cluster.stripe_group(),
                       LogConfig(client_id=1, fragment_size=FRAGMENT),
                       retry_policy=RetryPolicy(seed=2),
                       health_monitor=monitor)
        injector = FailureInjector(cluster)
        for block in range(4):
            log.write_block(SVC, bytes([block + 1]) * 900)
        log.flush().wait()
        injector.crash_server("s1")
        drive_until_reform(cluster, log, "s1")
        assert log.group.servers == ("s0", "s2", "s3")
        assert log.reforms[0]["replacement"] is None

    def test_unusable_spare_is_skipped(self):
        cluster = build_local_cluster(num_servers=5, fragment_size=FRAGMENT,
                                      server_slots=512)
        log, monitor = healing_log(cluster)
        injector = FailureInjector(cluster)
        for block in range(4):
            log.write_block(SVC, bytes([block + 1]) * 900)
        log.flush().wait()
        # The spare dies first (by verdict), then a member dies: the
        # reform must not draft a spare that is itself dead.
        injector.crash_server("s4")
        for _ in range(6):
            monitor.observe("s4", ok=False)
        assert monitor.status("s4") == "dead"
        injector.crash_server("s0")
        drive_until_reform(cluster, log, "s0")
        assert log.group.servers == ("s1", "s2", "s3")
        assert log.reforms[0]["replacement"] is None

    def test_manual_reform_still_works_unmonitored(self):
        # The pre-existing escape hatch keeps working without any
        # detector attached.
        cluster = build_local_cluster(num_servers=5, fragment_size=FRAGMENT,
                                      server_slots=512)
        log = cluster.make_log(client_id=1,
                               group=cluster.stripe_group(["s0", "s1", "s2",
                                                           "s3"]))
        for block in range(4):
            log.write_block(SVC, bytes([block + 1]) * 900)
        log.flush().wait()
        log.reform_group(StripeGroup(("s0", "s1", "s2", "s4")))
        assert log.reforms == []  # manual path records no verdict
        for block in range(10, 14):
            log.write_block(SVC, bytes([block]) * 900)
        log.flush().wait()
        assert cluster.servers["s4"].list_fids()


class TestMultiFailure:
    """Two simultaneous kills against an m=2 Reed–Solomon group."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_kill_self_heals_and_replays(self, seed):
        """The full scenario at victims=2, twice, bit-identical.

        ``run_kill_server`` itself asserts the hard invariants (auto
        reform away from both victims, spares drafted, mid-run reads
        match the oracle, fsck fully healthy with both victims still
        down, fresh-client recovery equals the oracle); this test adds
        the determinism property on top.
        """
        first, second, identical = replay_kill_check(seed, victims=2)
        assert first.ok, "seed %d: %s" % (seed, "; ".join(first.problems))
        assert second.ok, "seed %d: %s" % (seed, "; ".join(second.problems))
        assert identical, \
            "seed %d: double-kill run did not replay bit-identically" % seed
        assert first.stats["victims_killed"] == 2
        assert first.stats["fragments_repaired"] > 0

    def test_choose_kill_victims_deterministic_and_distinct(self):
        candidates = ["s3", "s0", "s2", "s1", "s4"]
        picks = choose_kill_victims(9, candidates, 2)
        assert picks == choose_kill_victims(9, list(reversed(candidates)), 2)
        assert len(set(picks)) == 2
        assert all(p in candidates for p in picks)
        # count=1 reproduces the historical single-victim draw.
        assert choose_kill_victims(9, candidates, 1) \
            == [choose_kill_victim(9, candidates)]
        with pytest.raises(errors.ConfigError):
            choose_kill_victims(9, candidates, 6)

    def test_double_repair_lands_on_distinct_spares(self):
        """A stripe's two rebuilt members must not share a server.

        Deterministic (no chaos transport): write an m=2 log over
        s0..s4, crash two members, repair with two replacements, then
        check per stripe that the lost pair went to different spares —
        and that fsck is fully healthy with both victims still down.
        """
        cluster = build_local_cluster(num_servers=7, fragment_size=FRAGMENT,
                                      server_slots=512)
        group = cluster.stripe_group(["s0", "s1", "s2", "s3", "s4"])
        log = cluster.make_log(client_id=1, group=group,
                               parity_fragments=2, coding="rs")
        for block in range(30):
            log.write_block(SVC, bytes([(block * 7 + 3) % 256]) * 900)
        log.flush().wait()

        injector = FailureInjector(cluster)
        for victim in ("s1", "s3"):
            injector.crash_server(victim)
            log.locations.evict_server(victim)
        before = check_client_log(cluster.transport, 1)
        doubly_degraded = [f for f in before.by_status("degraded")
                           if len(f.missing) == 2]
        assert doubly_degraded, "no stripe lost members to both victims"
        assert not before.by_status("lost")

        daemon = RepairDaemon(cluster.transport, 1,
                              replacement=["s5", "s6"],
                              locations=log.locations)
        repaired = daemon.run(dead_server="s1")
        assert repaired > 0
        for finding in doubly_degraded:
            homes = {daemon.locations.get(fid) for fid in finding.missing}
            assert homes <= {"s5", "s6"} and len(homes) == 2, \
                "stripe %d lost pair landed on %r" % (finding.base_fid,
                                                      homes)
        after = check_client_log(cluster.transport, 1)
        assert after.healthy, after.summary()
