"""Unit tests for the network, disk, and CPU models."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.cpu import CpuModel, CpuParams, SimCpu
from repro.sim.disk import DiskModel, DiskParams, SimDisk
from repro.sim.network import Message, NetworkParams, Switch


class TestNetworkModel:
    def test_wire_time_includes_frame_overhead(self):
        params = NetworkParams()
        expected = 1e6 * 1.06 / (100e6 / 8)
        assert params.wire_time(1_000_000) == pytest.approx(expected)

    def test_transfer_delivers_to_inbox(self):
        sim = Simulator()
        switch = Switch(sim)
        switch.attach("a")
        nic_b = switch.attach("b")
        message = Message("a", "b", payload={"op": "x"}, size_bytes=1000)

        def proc():
            yield switch.send(message)
            item = yield nic_b.inbox.get()
            return item

        delivered = sim.run_process(proc())
        assert delivered.payload == {"op": "x"}
        assert sim.now > 0

    def test_transfer_time_scales_with_size(self):
        def elapsed(size):
            sim = Simulator()
            switch = Switch(sim)
            switch.attach("a")
            switch.attach("b")

            def proc():
                yield switch.send(Message("a", "b", None, size))

            sim.run_process(proc())
            return sim.now

        assert elapsed(2_000_000) > 1.8 * elapsed(1_000_000)

    def test_sender_nic_serializes_two_flows(self):
        sim = Simulator()
        switch = Switch(sim)
        switch.attach("a")
        switch.attach("b")
        switch.attach("c")

        def proc():
            one = switch.send(Message("a", "b", None, 1_000_000))
            two = switch.send(Message("a", "c", None, 1_000_000))
            yield sim.all_of([one, two])

        sim.run_process(proc())
        # Two 1 MB sends through one NIC take ~2x one send.
        assert sim.now > 2 * NetworkParams().wire_time(1_000_000)

    def test_crashed_destination_drops_message(self):
        sim = Simulator()
        switch = Switch(sim)
        switch.attach("a")
        nic_b = switch.attach("b")

        def proc():
            event = switch.send(Message("a", "b", None, 100))
            switch.detach("b")
            yield event

        sim.run_process(proc())
        assert len(nic_b.inbox) == 0

    def test_duplicate_attach_rejected(self):
        switch = Switch(Simulator())
        switch.attach("a")
        with pytest.raises(SimulationError):
            switch.attach("a")

    def test_broadcast_reaches_everyone_but_sender(self):
        sim = Simulator()
        switch = Switch(sim)
        nics = {name: switch.attach(name) for name in ("a", "b", "c", "d")}

        def proc():
            yield switch.broadcast("a", "probe", 64)

        sim.run_process(proc())
        assert len(nics["a"].inbox) == 0
        for name in "bcd":
            assert len(nics[name].inbox) == 1


class TestDiskModel:
    def test_sequential_1mb_near_paper_bound(self):
        """The paper's stated server upper bound: 10.3 MB/s on 1 MB writes."""
        model = DiskModel()
        bandwidth = model.sequential_bandwidth(1 << 20) / 1e6
        assert 10.0 <= bandwidth <= 11.0

    def test_seek_costs_more_than_sequential(self):
        model = DiskModel()
        assert (model.access_time(4096, sequential=False)
                > 10 * model.access_time(4096, sequential=True))

    def test_nearby_cheaper_than_far(self):
        model = DiskModel()
        assert (model.access_time(4096, sequential=False, nearby=True)
                < model.access_time(4096, sequential=False, nearby=False))

    def test_simdisk_classifies_consecutive_as_sequential(self):
        sim = Simulator()
        disk = SimDisk(sim)

        def one_seek_then_sequential():
            yield from disk.access(1 << 20, position=5.0)
            yield from disk.access(1 << 20, position=6.0)

        sim.run_process(one_seek_then_sequential())
        sequential_pair = sim.now

        sim2 = Simulator()
        disk2 = SimDisk(sim2)

        def two_seeks():
            yield from disk2.access(1 << 20, position=5.0)
            yield from disk2.access(1 << 20, position=50.0)

        sim2.run_process(two_seeks())
        assert sim2.now > sequential_pair

    def test_simdisk_serializes_on_arm(self):
        sim = Simulator()
        disk = SimDisk(sim)

        def both():
            one = sim.process(disk.access(1 << 20, 0.0))
            two = sim.process(disk.access(1 << 20, 1.0))
            yield sim.all_of([one, two])

        sim.run_process(both())
        assert sim.now >= 2 * (1 << 20) / DiskParams().media_bandwidth_bytes_per_s

    def test_byte_accounting(self):
        sim = Simulator()
        disk = SimDisk(sim)

        def proc():
            yield from disk.access(1000, 0.0, write=True)
            yield from disk.access(500, 1.0, write=False)

        sim.run_process(proc())
        assert disk.bytes_written == 1000
        assert disk.bytes_read == 500
        assert disk.requests == 2


class TestCpuModel:
    def test_costs_scale_linearly(self):
        model = CpuModel()
        assert model.copy_cost(2000) == pytest.approx(2 * model.copy_cost(1000))
        assert model.xor_cost(4096) > 0

    def test_send_cost_has_fixed_part(self):
        model = CpuModel()
        assert model.send_cost(0) == pytest.approx(
            CpuParams().per_rpc_overhead_s)

    def test_simcpu_serializes_and_tracks_utilization(self):
        sim = Simulator()
        cpu = SimCpu(sim)

        def worker():
            yield from cpu.compute(1.0)
            yield sim.timeout(1.0)
            yield from cpu.compute(1.0)

        sim.run_process(worker())
        assert sim.now == pytest.approx(3.0)
        assert cpu.utilization() == pytest.approx(2.0 / 3.0)

    def test_zero_compute_is_free(self):
        sim = Simulator()
        cpu = SimCpu(sim)

        def worker():
            yield from cpu.compute(0.0)
            return sim.now

        assert sim.run_process(worker()) == 0.0
