"""Unit tests for the fragment format and builder."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptFragmentError
from repro.log.fragment import (
    BLOCK_ITEM_OVERHEAD,
    Fragment,
    FragmentBuilder,
    FragmentHeader,
    HEADER_SIZE,
    ITEM_BLOCK,
    ITEM_RECORD,
    NO_PARITY,
    make_parity_fragment,
)
from repro.log.records import Record

CAP = 1 << 16


def build_one(blocks=(), records=(), fid=5, servers=("a", "b", "c")):
    builder = FragmentBuilder(fid, client_id=1, capacity=CAP)
    offsets = [builder.add_block(9, data) for data in blocks]
    for record in records:
        builder.add_record(record)
    fragment = builder.seal(fid, len(servers), 0, len(servers) - 1, servers)
    return builder, fragment, offsets


class TestHeader:
    def test_round_trip(self):
        header = FragmentHeader(
            fid=77, client_id=3, is_parity=False, marked=True,
            stripe_base_fid=76, stripe_width=4, stripe_index=1,
            parity_index=3, payload_len=0, item_count=0, first_lsn=10,
            last_lsn=22, servers=("s0", "s1", "s2", "s3"))
        decoded = FragmentHeader.decode(header.encode())
        assert decoded == header

    def test_checksum_detects_corruption(self):
        _b, fragment, _o = build_one(blocks=[b"data"])
        image = bytearray(fragment.encode())
        image[10] ^= 0xFF
        with pytest.raises(CorruptFragmentError):
            FragmentHeader.decode(bytes(image))

    def test_bad_magic(self):
        with pytest.raises(CorruptFragmentError):
            FragmentHeader.decode(b"\x00" * HEADER_SIZE)

    def test_short_image(self):
        with pytest.raises(CorruptFragmentError):
            FragmentHeader.decode(b"ab")

    def test_sibling_fids(self):
        _b, fragment, _o = build_one()
        assert fragment.header.sibling_fids() == [5, 6, 7]

    def test_server_name_too_long(self):
        header = FragmentHeader(
            fid=1, client_id=1, is_parity=False, marked=False,
            stripe_base_fid=1, stripe_width=1, stripe_index=0,
            parity_index=NO_PARITY, payload_len=0, item_count=0,
            first_lsn=0, last_lsn=0, servers=("x" * 17,))
        with pytest.raises(ValueError):
            header.encode()


class TestBuilder:
    def test_block_offset_points_at_data(self):
        _b, fragment, offsets = build_one(blocks=[b"first", b"second"])
        image = fragment.encode()
        assert image[offsets[0]:offsets[0] + 5] == b"first"
        assert image[offsets[1]:offsets[1] + 6] == b"second"

    def test_offsets_stable_before_seal(self):
        builder = FragmentBuilder(5, 1, CAP)
        offset = builder.add_block(9, b"payload")
        assert builder.peek_range(offset, 7) == b"payload"

    def test_capacity_enforced(self):
        builder = FragmentBuilder(5, 1, 1024)
        too_big = b"x" * (1024 - HEADER_SIZE)
        assert not builder.fits_block(len(too_big))
        with pytest.raises(ValueError):
            builder.add_block(1, too_big)

    def test_max_block_size_exactly_fits(self):
        size = FragmentBuilder.max_block_size(CAP)
        builder = FragmentBuilder(5, 1, CAP)
        builder.add_block(1, b"y" * size)
        assert builder.free_payload() == 0

    def test_record_lsn_tracking(self):
        records = [Record(7, 1, 64, b"a"), Record(9, 1, 64, b"b")]
        _b, fragment, _o = build_one(records=records)
        assert fragment.header.first_lsn == 7
        assert fragment.header.last_lsn == 9

    def test_item_count(self):
        _b, fragment, _o = build_one(blocks=[b"x"],
                                     records=[Record(1, 1, 64, b"")])
        assert fragment.header.item_count == 2

    def test_capacity_must_exceed_header(self):
        with pytest.raises(ValueError):
            FragmentBuilder(1, 1, HEADER_SIZE)

    def test_peek_outside_payload(self):
        builder = FragmentBuilder(5, 1, CAP)
        builder.add_block(1, b"ab")
        with pytest.raises(ValueError):
            builder.peek_range(0, 4)  # inside the (unwritten) header


class TestFragmentParsing:
    def test_items_in_order_with_kinds(self):
        records = [Record(1, 2, 64, b"r1")]
        _b, fragment, _o = build_one(blocks=[b"blockdata"], records=records)
        items = list(fragment.items())
        assert [item.kind for item in items] == [ITEM_BLOCK, ITEM_RECORD]
        assert items[0].data == b"blockdata"
        assert items[0].owner_service == 9
        assert items[1].record.payload == b"r1"

    def test_records_iterator(self):
        records = [Record(1, 2, 64, b"a"), Record(2, 3, 65, b"b")]
        _b, fragment, _o = build_one(blocks=[b"x"], records=records)
        assert [r.lsn for r in fragment.records()] == [1, 2]

    def test_decode_verify_payload(self):
        _b, fragment, _o = build_one(blocks=[b"abc"])
        Fragment.decode(fragment.encode(), verify_payload=True)

    def test_truncated_payload_detected(self):
        _b, fragment, _o = build_one(blocks=[b"abc" * 100])
        image = fragment.encode()[:-50]
        with pytest.raises(CorruptFragmentError):
            Fragment.decode(image)

    def test_data_offset_matches_address_contract(self):
        """items() must report the same offsets add_block returned."""
        _b, fragment, offsets = build_one(blocks=[b"one", b"two", b"three"])
        parsed = [item.data_offset for item in fragment.items()
                  if item.record is None]
        assert parsed == offsets

    @given(st.lists(st.binary(min_size=1, max_size=3000), min_size=1,
                    max_size=12))
    def test_round_trip_property(self, blocks):
        builder = FragmentBuilder(5, 1, capacity=1 << 17)
        offsets = []
        for data in blocks:
            offsets.append(builder.add_block(3, data))
        fragment = builder.seal(5, 2, 0, 1, ("a", "b"))
        decoded = Fragment.decode(fragment.encode(), verify_payload=True)
        parsed = [(item.data_offset, item.data) for item in decoded.items()]
        assert parsed == list(zip(offsets, blocks))


class TestParityFragment:
    def test_parity_has_no_items(self):
        _b, data_fragment, _o = build_one(blocks=[b"stuff"])
        parity = make_parity_fragment(8, 1, [data_fragment.encode()],
                                      5, 4, 3, ("a", "b", "c", "d"))
        assert parity.header.is_parity
        assert list(parity.items()) == []

    def test_parity_payload_is_xor_of_images(self):
        _b, f1, _o = build_one(blocks=[b"aaa"], fid=5)
        _b, f2, _o = build_one(blocks=[b"bb"], fid=6)
        images = [f1.encode(), f2.encode()]
        parity = make_parity_fragment(7, 1, images, 5, 3, 2, ("a", "b", "c"))
        length = max(len(i) for i in images)
        expected = bytes(
            (images[0][k] if k < len(images[0]) else 0)
            ^ (images[1][k] if k < len(images[1]) else 0)
            for k in range(length))
        assert parity.payload == expected
