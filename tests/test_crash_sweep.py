"""Tests for the client crash-point registry, injector, and sweep."""

import pytest

from repro.chaos.crashpoints import CRASH_POINTS, ClientCrash, CrashInjector
from repro.chaos.runner import (
    _pick_occurrences,
    replay_crash_sweep,
    run_crash_sweep,
    run_kill_server,
)


class TestRegistry:
    def test_at_least_eight_named_points(self):
        assert len(CRASH_POINTS) >= 8
        assert len(set(CRASH_POINTS)) == len(CRASH_POINTS)

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashInjector(point="no-such-point")

    def test_occurrence_is_one_based(self):
        with pytest.raises(ValueError):
            CrashInjector(point=CRASH_POINTS[0], occurrence=0)


class TestInjector:
    def test_census_counts_without_raising(self):
        injector = CrashInjector()
        for _ in range(3):
            injector.hit("stripe_seal")
        injector.hit("scatter_dispatch")
        census = injector.census()
        assert census["stripe_seal"] == 3
        assert census["scatter_dispatch"] == 1
        assert census["cleaner_fence"] == 0
        assert injector.crashed_at is None

    def test_armed_raises_at_kth_hit_only(self):
        injector = CrashInjector(point="stripe_seal", occurrence=2)
        injector.hit("stripe_seal")          # hit 1: survives
        injector.hit("scatter_dispatch")     # other points never trigger
        with pytest.raises(ClientCrash) as info:
            injector.hit("stripe_seal")      # hit 2: dies
        assert info.value.point == "stripe_seal"
        assert info.value.occurrence == 2
        assert injector.crashed_at == ("stripe_seal", 2)

    def test_trace_numbers_hits_per_point(self):
        injector = CrashInjector()
        injector.hit("stripe_seal")
        injector.hit("scatter_dispatch")
        injector.hit("stripe_seal")
        assert injector.trace == [("stripe_seal", 1),
                                  ("scatter_dispatch", 1),
                                  ("stripe_seal", 2)]

    def test_client_crash_escapes_except_exception(self):
        """A simulated kill -9 must not be swallowed by the write path's
        ``except Exception`` guards."""
        assert issubclass(ClientCrash, BaseException)
        assert not issubclass(ClientCrash, Exception)


class TestOccurrencePicking:
    def test_all_occurrences_when_few(self):
        assert _pick_occurrences(3, cap=4) == [1, 2, 3]

    def test_evenly_spaced_sample_when_many(self):
        picks = _pick_occurrences(40, cap=4)
        assert picks[0] == 1
        assert picks[-1] == 40
        assert 2 <= len(picks) <= 4
        assert picks == sorted(set(picks))

    def test_zero_hits_picks_nothing(self):
        assert _pick_occurrences(0, cap=4) == []


class TestSweep:
    def test_mid_scatter_kill_holds_oracle(self):
        report = run_crash_sweep(7, point="scatter_dispatch", occurrence=2)
        assert report.ok, report.problems
        assert report.pairs
        assert report.pairs[0][0] == "scatter_dispatch"

    def test_post_store_pre_ack_kill_holds_oracle(self):
        """The classic window: data durable, client dies unacked —
        recovery must surface it (or atomically not), never tear it."""
        report = run_crash_sweep(7, point="post_store_pre_ack",
                                 occurrence=1)
        assert report.ok, report.problems

    def test_checkpoint_table_kill_recovers_previous_generation(self):
        report = run_crash_sweep(7, point="checkpoint_table_append",
                                 occurrence=1)
        assert report.ok, report.problems

    def test_cleaner_fence_kill_duplicates_converge(self):
        """Dying between the cleaner's re-append and its deletes leaves
        both copies of every moved block durable; rollforward must
        apply a single consistent winner."""
        report = run_crash_sweep(7, point="cleaner_fence", occurrence=1)
        assert report.ok, report.problems

    def test_full_sweep_covers_every_point_and_replays(self):
        first, second, identical = replay_crash_sweep(11, occ_cap=1)
        assert first.ok, first.problems
        assert second.ok, second.problems
        assert identical
        for name in CRASH_POINTS:
            assert first.census.get(name, 0) >= 1, (
                "crash point %s never fired" % name)
        assert len(first.pairs) >= len(CRASH_POINTS)
        assert first.state_digest == second.state_digest


class TestKillServerRestart:
    def test_victim_readmitted_via_probation(self):
        report = run_kill_server(77, restart=True)
        assert report.ok, report.problems
        assert report.stats["restarted"] == 1
        assert report.stats["readmitted"] == 1
        assert report.stats["stale_reads_checked"] > 0

    def test_restart_replays_bit_identically(self):
        first = run_kill_server(31, restart=True)
        second = run_kill_server(31, restart=True)
        assert first.ok, first.problems
        assert first.state_digest == second.state_digest
        assert first.stats == second.stats
