"""Tests for the ext2 baseline: functional behaviour and timing shape."""

import pytest

from repro import errors
from repro.baselines.ext2 import Ext2Fs, Ext2Params


@pytest.fixture
def fs():
    return Ext2Fs()


class TestFunctional:
    def test_mkdir_create_read(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f", b"hello")
        assert fs.read_file("/d/f") == b"hello"
        assert fs.listdir("/d") == ["f"]

    def test_write_file_replaces(self, fs):
        fs.write_file("/f", b"one")
        fs.write_file("/f", b"two-longer")
        assert fs.read_file("/f") == b"two-longer"

    def test_multi_block_file(self, fs):
        blob = bytes(range(256)) * 100
        fs.write_file("/big", blob)
        assert fs.read_file("/big") == blob

    def test_unlink_and_rmdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f", b"x")
        with pytest.raises(errors.DirectoryNotEmptyFsError):
            fs.rmdir("/d")
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_errors(self, fs):
        with pytest.raises(errors.FileNotFoundFsError):
            fs.read_file("/ghost")
        fs.create("/f", b"")
        with pytest.raises(errors.FileExistsFsError):
            fs.create("/f", b"")
        with pytest.raises(errors.IsADirectoryFsError):
            fs.read_file("/")

    def test_freed_blocks_reused(self, fs):
        fs.write_file("/a", b"z" * 20000)
        blocks_high = fs._next_block
        fs.unlink("/a")
        fs.write_file("/b", b"z" * 20000)
        assert fs._next_block == blocks_high  # allocator reused frees


class TestTiming:
    def test_metadata_writes_charge_disk_time(self):
        fs = Ext2Fs()
        t0 = fs.disk_seconds
        fs.mkdir("/d")
        assert fs.disk_seconds > t0

    def test_scattered_creates_cost_more_than_one_big_write(self):
        many = Ext2Fs()
        for index in range(50):
            many.create("/f%d" % index, b"x" * 1000)
        one = Ext2Fs()
        one.create("/big", b"x" * 50 * 1000)
        assert many.disk_seconds > 3 * one.disk_seconds

    def test_atime_updates_charged_on_reads(self):
        on = Ext2Fs(Ext2Params(atime_updates=True))
        off = Ext2Fs(Ext2Params(atime_updates=False))
        for fs in (on, off):
            fs.create("/f", b"data")
        baseline_on, baseline_off = on.disk_seconds, off.disk_seconds
        on.read_file("/f")
        off.read_file("/f")
        assert (on.disk_seconds - baseline_on) > (off.disk_seconds
                                                  - baseline_off)

    def test_unmount_flushes_writeback(self):
        fs = Ext2Fs(Ext2Params(eager_writeback=False))
        fs.write_file("/f", b"q" * 40000)
        before = fs.disk_seconds
        fs.unmount()
        assert fs.disk_seconds > before

    def test_clustering_reduces_seeks(self):
        tight = Ext2Fs(Ext2Params(allocator_clustering=16,
                                  eager_writeback=False))
        loose = Ext2Fs(Ext2Params(allocator_clustering=1,
                                  eager_writeback=False))
        for fs in (tight, loose):
            fs.write_file("/f", b"d" * 200000)
            fs.unmount()
        assert loose.disk_seconds > tight.disk_seconds
