"""Property-based chaos tests: seeded fault schedules × op sequences.

The core property: for any workload and any fault plan whose durable
damage is confined to one server per stripe, a client stack with
retries + verified degraded reads loses no data — the state recovered
from the log alone equals a fault-free oracle, fsck can restore full
health, and replaying the seed reproduces the identical fault schedule.

Seeds come from ``CHAOS_SEEDS`` (comma-separated) so CI can mix fixed
seeds with a per-run one; every assertion message embeds the seed — the
failure is reproduced with ``python -m repro.chaos --seed <seed>``.
"""

import os

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    HAVE_HYPOTHESIS = False

from repro.chaos.plan import FaultSpec
from repro.chaos.runner import generate_ops, oracle_state, replay_check, \
    replay_cleaner_check, replay_kill_check, run_chaos, run_cleaner_churn, \
    run_kill_server

SEEDS = [int(s) for s in
         os.environ.get("CHAOS_SEEDS", "101,202,303").split(",") if s.strip()]

#: Hotter than the default spec: every fault kind well above its
#: default rate, faster victim rotation. Still within the survivable
#: envelope (one durable victim, bounded bursts).
HOT_SPEC = FaultSpec(drop_request=0.2, drop_response=0.15, delay=0.1,
                     duplicate=0.1, torn_store=0.4, bit_flip=0.4,
                     victim_window=8)


def _fail(report, what):
    pytest.fail("chaos seed=%d: %s\n  %s\n  reproduce: "
                "python -m repro.chaos --seed %d"
                % (report.seed, what, "\n  ".join(report.problems) or "-",
                   report.seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_zero_data_loss(seed):
    report = run_chaos(seed)
    if not report.ok:
        _fail(report, "invariants violated")


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_replays_identically(seed):
    first, second, identical = replay_check(seed)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second, "invariants violated")
    assert identical, (
        "chaos seed=%d: replay diverged (histories %s, digests %s vs %s)"
        % (seed, "equal" if first.fault_history == second.fault_history
           else "differ", first.state_digest[:12], second.state_digest[:12]))


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_hot_spec_exercises_every_fault_kind(seed):
    report = run_chaos(seed, ops=generate_ops(seed, n_ops=80), spec=HOT_SPEC)
    if not report.ok:
        _fail(report, "invariants violated under hot spec")
    kinds = {event.kind for event in report.fault_history}
    # The hot spec at 80 ops reliably triggers the durable faults plus
    # at least one wire fault; requiring all six would flake on seeds
    # whose rotation skips a kind.
    assert "torn_store" in kinds or "bit_flip" in kinds, (
        "chaos seed=%d: hot spec fired no durable faults (%s)"
        % (seed, sorted(kinds)))
    assert report.stats["faults_applied"] >= 5, (
        "chaos seed=%d: only %d faults applied under hot spec"
        % (seed, report.stats["faults_applied"]))


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_server_self_heals_with_zero_data_loss(seed):
    report = run_kill_server(seed)
    if not report.ok:
        _fail(report, "self-healing invariants violated (reproduce with "
                      "--kill-server)")
    assert report.stats["reform_gap_ops"] >= 0, (
        "chaos seed=%d: no automatic reform happened" % seed)
    assert report.stats["fragments_repaired"] > 0, (
        "chaos seed=%d: repair daemon did no work — the scenario is "
        "vacuous" % seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_kill_server_replays_identically(seed):
    first, second, identical = replay_kill_check(seed)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "self-healing invariants violated (reproduce with "
              "--kill-server)")
    assert identical, (
        "chaos seed=%d: kill-server replay diverged (histories %s, "
        "digests %s vs %s)"
        % (seed, "equal" if first.fault_history == second.fault_history
           else "differ", first.state_digest[:12], second.state_digest[:12]))


#: Write-behind wide open: several stripes may be in flight at once.
WRITE_BEHIND = {"max_inflight_stripes": 4}

#: The pre-pipelining write path: strict stripe barrier, per-store
#: submits, no group commit.
SERIAL_PATH = {"max_inflight_stripes": 1, "pipeline_stores": False,
               "group_commit_bytes": 0}


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_zero_data_loss_with_write_behind(seed):
    """The full chaos matrix must hold with several stripes in flight."""
    report = run_chaos(seed, log_overrides=WRITE_BEHIND)
    if not report.ok:
        _fail(report, "invariants violated with max_inflight_stripes=4")


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_chaos_replays_identically_with_write_behind(seed):
    first, second, identical = replay_check(seed, log_overrides=WRITE_BEHIND)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "invariants violated with max_inflight_stripes=4")
    assert identical, (
        "chaos seed=%d: write-behind replay diverged (histories %s, "
        "digests %s vs %s)"
        % (seed, "equal" if first.fault_history == second.fault_history
           else "differ", first.state_digest[:12], second.state_digest[:12]))


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_chaos_outcome_invariant_across_write_path_configs(seed):
    """The recovered state must not depend on the write-path
    configuration: group commit reorders nothing and the window changes
    only overlap, so every config converges on the same oracle state.
    (The fault *schedules* legitimately differ — a scattered plan draws
    its decisions before any store executes, a serial path interleaves
    them — but each is deterministic under replay, which the replay
    tests assert per config.)"""
    base = run_chaos(seed)
    assert base.ok, base.problems
    for overrides in (SERIAL_PATH, WRITE_BEHIND):
        other = run_chaos(seed, log_overrides=overrides)
        assert other.ok, (
            "chaos seed=%d overrides=%r: %s"
            % (seed, overrides, other.problems))
        assert other.state_digest == base.state_digest, (
            "chaos seed=%d: recovered state depends on %r" % (seed, overrides))


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_kill_server_self_heals_with_write_behind(seed):
    report = run_kill_server(seed, log_overrides=WRITE_BEHIND)
    if not report.ok:
        _fail(report, "self-healing invariants violated with "
                      "max_inflight_stripes=4")
    assert report.stats["reform_gap_ops"] >= 0, (
        "chaos seed=%d: no automatic reform with write-behind" % seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_kill_server_replays_identically_with_write_behind(seed):
    first, second, identical = replay_kill_check(
        seed, log_overrides=WRITE_BEHIND)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "self-healing invariants violated with max_inflight_stripes=4")
    assert identical, (
        "chaos seed=%d: kill-server write-behind replay diverged"
        % seed)


#: Read-ahead wide open: recovery and verification scans keep up to
#: four retrieves in flight.
READ_AHEAD = {"max_inflight_reads": 4}

#: The pre-windowing read path: one fragment ahead, exactly today's
#: serial prefetch.
SERIAL_READS = {"max_inflight_reads": 1}


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_zero_data_loss_with_read_ahead(seed):
    """The full chaos matrix must hold with the read window open —
    recovery rollforward prefetches through wire faults and torn
    stores, falling back to parity mid-window."""
    report = run_chaos(seed, log_overrides=READ_AHEAD)
    if not report.ok:
        _fail(report, "invariants violated with max_inflight_reads=4")


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_chaos_replays_identically_with_read_ahead(seed):
    first, second, identical = replay_check(seed, log_overrides=READ_AHEAD)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "invariants violated with max_inflight_reads=4")
    assert identical, (
        "chaos seed=%d: read-ahead replay diverged (histories %s, "
        "digests %s vs %s)"
        % (seed, "equal" if first.fault_history == second.fault_history
           else "differ", first.state_digest[:12], second.state_digest[:12]))


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_outcome_invariant_across_read_window(seed):
    """The read window must change overlap only, never outcomes:
    window=1 is exactly the old one-ahead prefetch, and any deeper
    window recovers the identical state, digest for digest."""
    base = run_chaos(seed)
    assert base.ok, base.problems
    for overrides in (SERIAL_READS, READ_AHEAD,
                      {**WRITE_BEHIND, **READ_AHEAD}):
        other = run_chaos(seed, log_overrides=overrides)
        assert other.ok, (
            "chaos seed=%d overrides=%r: %s"
            % (seed, overrides, other.problems))
        assert other.state_digest == base.state_digest, (
            "chaos seed=%d: recovered state depends on %r"
            % (seed, overrides))


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_server_self_heals_with_read_ahead(seed):
    """Degraded reads mid-window: with a stripe-group member dead for
    good, every window the recovery scan dispatches contains fragments
    only parity can produce."""
    report = run_kill_server(seed, log_overrides=READ_AHEAD)
    if not report.ok:
        _fail(report, "self-healing invariants violated with "
                      "max_inflight_reads=4")
    assert report.stats["fragments_repaired"] > 0, (
        "chaos seed=%d: repair daemon did no work under read-ahead — "
        "the scenario is vacuous" % seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_kill_server_replays_identically_with_both_windows(seed):
    first, second, identical = replay_kill_check(
        seed, log_overrides={**WRITE_BEHIND, **READ_AHEAD})
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "self-healing invariants violated with write-behind + "
              "read-ahead")
    assert identical, (
        "chaos seed=%d: kill-server replay diverged with both windows "
        "open" % seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_cleaner_churn_zero_data_loss(seed):
    """The cleaner's batched harvest + pipelined re-append under wire
    faults: periodic cleaning passes move live blocks through the
    windowed read path and nothing is lost."""
    report = run_cleaner_churn(seed)
    if not report.ok:
        _fail(report, "cleaner-churn invariants violated (reproduce "
                      "with --cleaner)")
    assert report.stats["clean_passes"] > 0, (
        "chaos seed=%d: no cleaning pass ran — the scenario is vacuous"
        % seed)


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_cleaner_churn_replays_identically(seed):
    first, second, identical = replay_cleaner_check(seed)
    if not (first.ok and second.ok):
        _fail(first if not first.ok else second,
              "cleaner-churn invariants violated (reproduce with "
              "--cleaner)")
    assert identical, (
        "chaos seed=%d: cleaner-churn replay diverged (histories %s, "
        "digests %s vs %s)"
        % (seed, "equal" if first.fault_history == second.fault_history
           else "differ", first.state_digest[:12], second.state_digest[:12]))


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_cleaner_churn_with_read_ahead(seed):
    report = run_cleaner_churn(seed, log_overrides=READ_AHEAD)
    if not report.ok:
        _fail(report, "cleaner-churn invariants violated with "
                      "max_inflight_reads=4")


def test_ops_and_oracle_are_deterministic():
    ops = generate_ops(12345)
    assert ops == generate_ops(12345)
    assert ops != generate_ops(12346)
    assert oracle_state(ops) == oracle_state(list(ops))


if HAVE_HYPOTHESIS:
    op_strategy = st.one_of(
        st.tuples(st.just("write"), st.integers(0, 11),
                  st.integers(0, 2 ** 20), st.integers(16, 1024)),
        st.tuples(st.just("trim"), st.integers(0, 11), st.just(0),
                  st.just(0)),
        st.tuples(st.just("read"), st.integers(0, 11), st.just(0),
                  st.just(0)),
    )

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2 ** 20),
           ops=st.lists(op_strategy, min_size=4, max_size=24))
    def test_property_recovered_state_matches_oracle(seed, ops):
        report = run_chaos(seed, ops=ops)
        assert report.ok, (
            "chaos seed=%d ops=%r: %s" % (seed, ops, report.problems))
        replay = run_chaos(seed, ops=ops)
        assert replay.fault_history == report.fault_history, (
            "chaos seed=%d: fault schedule did not replay" % seed)
        assert replay.state_digest == report.state_digest, (
            "chaos seed=%d: recovered state did not replay" % seed)
else:  # pragma: no cover
    @pytest.mark.skip(reason="hypothesis not installed")
    def test_property_recovered_state_matches_oracle():
        pass
