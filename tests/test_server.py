"""Unit tests for the storage server: slots, backends, ops, atomicity."""

import pytest

from repro import errors
from repro.server.acl import AclStore
from repro.server.backend import FileBackend, MemoryBackend
from repro.server.config import ServerConfig
from repro.server.server import StorageServer
from repro.server.slots import SlotTable

FRAG = 1 << 16


class TestBackends:
    def test_memory_round_trip(self):
        backend = MemoryBackend()
        backend.write_slot(3, b"abc")
        assert backend.read_slot(3) == b"abc"
        backend.clear_slot(3)
        assert backend.read_slot(3) is None

    def test_memory_metadata(self):
        backend = MemoryBackend()
        assert backend.load_metadata("m") is None
        backend.save_metadata("m", b"{}")
        assert backend.load_metadata("m") == b"{}"

    def test_file_backend_round_trip(self, tmp_path):
        backend = FileBackend(str(tmp_path / "srv"))
        backend.write_slot(0, b"durable")
        backend.save_metadata("map", b"[1,2]")
        # A different instance over the same directory sees the data.
        again = FileBackend(str(tmp_path / "srv"))
        assert again.read_slot(0) == b"durable"
        assert again.load_metadata("map") == b"[1,2]"

    def test_file_backend_clear(self, tmp_path):
        backend = FileBackend(str(tmp_path / "srv"))
        backend.write_slot(1, b"x")
        backend.clear_slot(1)
        backend.clear_slot(1)  # idempotent
        assert backend.read_slot(1) is None


class TestSlotTable:
    def _table(self, slots=4):
        return SlotTable(MemoryBackend(), slots)

    def test_allocate_lowest_first(self):
        table = self._table()
        assert table.allocate(10, 5, False) == 0
        assert table.allocate(11, 5, False) == 1

    def test_release_reuses_lowest(self):
        table = self._table()
        for fid in (10, 11, 12):
            table.allocate(fid, 1, False)
        table.release(10)
        table.release(11)
        assert table.allocate(13, 1, False) == 0
        assert table.allocate(14, 1, False) == 1

    def test_out_of_slots(self):
        table = self._table(slots=2)
        table.allocate(1, 0, False)
        table.allocate(2, 0, False)
        with pytest.raises(errors.OutOfSlotsError):
            table.allocate(3, 0, False)

    def test_reserve_abort_returns_slot(self):
        table = self._table(slots=1)
        slot = table.reserve()
        table.abort_reservation(slot)
        assert table.allocate(5, 0, False) == slot

    def test_persistence_across_reload(self):
        backend = MemoryBackend()
        table = SlotTable(backend, 8)
        table.allocate(100, 7, True)
        table.allocate(101, 9, False)
        reloaded = SlotTable(backend, 8)
        assert reloaded.slot_of(100) == 0
        assert reloaded.slot_of(101) == 1
        assert reloaded.newest_marked_fid() == 100
        # Fresh allocations do not collide with reloaded ones.
        assert reloaded.allocate(102, 1, False) == 2

    def test_reserved_but_uncommitted_slot_reclaimed_on_reload(self):
        """A crash between data write and map commit must lose the slot
        reservation, not leak it — the atomic-store guarantee."""
        backend = MemoryBackend()
        table = SlotTable(backend, 2)
        table.allocate(1, 0, False)
        table.reserve()  # crash here: never committed
        reloaded = SlotTable(backend, 2)
        assert reloaded.allocate(2, 0, False) == 1

    def test_newest_marked_filters_by_client(self):
        from repro.util.fids import make_fid

        table = self._table(slots=8)
        table.allocate(make_fid(1, 5), 0, True)
        table.allocate(make_fid(2, 9), 0, True)
        assert table.newest_marked_fid() == make_fid(2, 9)
        assert table.newest_marked_fid(1) == make_fid(1, 5)
        assert table.newest_marked_fid(3) == 0


class TestServerOps:
    def test_store_retrieve_whole_and_range(self, server):
        server.store(5, b"0123456789")
        assert server.retrieve(5) == b"0123456789"
        assert server.retrieve(5, 3, 4) == b"3456"

    def test_store_is_write_once(self, server):
        server.store(5, b"first")
        with pytest.raises(errors.FragmentExistsError):
            server.store(5, b"second")

    def test_oversized_fragment_rejected(self, server):
        too_big = b"x" * (server.config.slot_size + 1)
        with pytest.raises(errors.BadRequestError):
            server.store(1, too_big)

    def test_retrieve_missing(self, server):
        with pytest.raises(errors.FragmentNotFoundError):
            server.retrieve(404)

    def test_retrieve_bad_range(self, server):
        server.store(1, b"abc")
        with pytest.raises(errors.BadRequestError):
            server.retrieve(1, 2, 5)

    def test_delete_frees_slot_for_reuse(self, server):
        server.store(1, b"a")
        server.delete(1)
        with pytest.raises(errors.FragmentNotFoundError):
            server.retrieve(1)
        server.store(2, b"b")
        assert server.fragment_info(2).slot == 0

    def test_preallocate_then_store(self, server):
        slot = server.preallocate(9)
        assert not server.holds(9)  # reserved, not readable
        assert server.store(9, b"late data") == slot
        assert server.retrieve(9) == b"late data"

    def test_preallocate_existing_rejected(self, server):
        server.store(9, b"x")
        with pytest.raises(errors.FragmentExistsError):
            server.preallocate(9)

    def test_last_marked(self, server):
        server.store(1, b"a", marked=False)
        server.store(2, b"b", marked=True)
        server.store(3, b"c", marked=True)
        server.store(4, b"d", marked=False)
        assert server.last_marked() == 3

    def test_holds(self, server):
        server.store(1, b"a")
        assert server.holds(1)
        assert not server.holds(2)

    def test_stats_accumulate(self, server):
        server.store(1, b"abcd")
        server.retrieve(1, 0, 2)
        assert server.bytes_stored == 4
        assert server.bytes_retrieved == 2
        assert server.store_ops == 1 and server.retrieve_ops == 1


class TestServerCrash:
    def test_crashed_server_refuses_everything(self, server):
        server.store(1, b"a")
        server.crash()
        for call in (lambda: server.retrieve(1), lambda: server.store(2, b"b"),
                     lambda: server.last_marked(), lambda: server.holds(1)):
            with pytest.raises(errors.ServerUnavailableError):
                call()

    def test_restart_recovers_durable_state(self, server):
        server.store(1, b"persist", marked=True)
        server.crash()
        server.restart()
        assert server.retrieve(1) == b"persist"
        assert server.last_marked() == 1

    def test_atomic_store_on_backend_failure(self, server):
        """If the slot write dies mid-way, the fragment must not exist
        and the slot must not leak."""

        class ExplodingBackend(MemoryBackend):
            def __init__(self):
                super().__init__()
                self.explode = False

            def write_slot(self, slot, data):
                if self.explode:
                    raise IOError("head crash")
                super().write_slot(slot, data)

        backend = ExplodingBackend()
        victim = StorageServer(ServerConfig("s", fragment_size=FRAG,
                                            total_slots=2), backend)
        victim.store(1, b"ok")
        backend.explode = True
        with pytest.raises(IOError):
            victim.store(2, b"doomed")
        backend.explode = False
        assert not victim.holds(2)
        # The reserved slot was returned: both remaining stores fit.
        victim.store(3, b"fits")
        assert victim.retrieve(3) == b"fits"


class TestServerWithFileBackend:
    def test_full_durability_cycle(self, tmp_path):
        backend = FileBackend(str(tmp_path / "disk"))
        server = StorageServer(ServerConfig("s", fragment_size=FRAG,
                                            total_slots=16), backend)
        server.store(11, b"alpha", marked=True)
        server.store(12, b"beta")
        server.delete(12)
        # Simulate a full process restart over the same directory.
        reborn = StorageServer(ServerConfig("s", fragment_size=FRAG,
                                            total_slots=16),
                               FileBackend(str(tmp_path / "disk")))
        assert reborn.retrieve(11) == b"alpha"
        assert reborn.last_marked() == 11
        assert not reborn.holds(12)


class TestAcls:
    def test_untagged_data_is_world_accessible(self, secure_server):
        secure_server.store(1, b"public")
        assert secure_server.retrieve(1, principal="anyone") == b"public"

    def test_tagged_range_enforced(self, secure_server):
        aid = secure_server.create_acl(readers={"alice"}, writers={"alice"})
        secure_server.store(1, b"secret+public", acl_ranges=[(0, 6, aid)])
        assert secure_server.retrieve(1, 7, 6, principal="bob") == b"public"
        with pytest.raises(errors.AccessDeniedError):
            secure_server.retrieve(1, 0, 6, principal="bob")
        assert secure_server.retrieve(1, 0, 6, principal="alice") == b"secret"

    def test_membership_change_opens_access(self, secure_server):
        aid = secure_server.create_acl(readers={"alice"}, writers=set())
        secure_server.store(1, b"data", acl_ranges=[(0, 4, aid)])
        secure_server.modify_acl(aid, readers={"alice", "bob"})
        assert secure_server.retrieve(1, principal="bob") == b"data"

    def test_wildcard_member(self, secure_server):
        aid = secure_server.create_acl(readers={"*"}, writers=set())
        secure_server.store(1, b"data", acl_ranges=[(0, 4, aid)])
        assert secure_server.retrieve(1, principal="whoever") == b"data"

    def test_deleted_acl_fails_closed(self, secure_server):
        aid = secure_server.create_acl(readers={"alice"}, writers=set())
        secure_server.store(1, b"data", acl_ranges=[(0, 4, aid)])
        secure_server.delete_acl(aid)
        with pytest.raises(errors.AccessDeniedError):
            secure_server.retrieve(1, principal="alice")

    def test_overlapping_ranges_rejected(self, secure_server):
        aid = secure_server.create_acl(readers=set(), writers=set())
        with pytest.raises(errors.BadRequestError):
            secure_server.store(1, b"abcdef",
                                acl_ranges=[(0, 4, aid), (2, 6, aid)])

    def test_range_outside_fragment_rejected(self, secure_server):
        aid = secure_server.create_acl(readers=set(), writers=set())
        with pytest.raises(errors.BadRequestError):
            secure_server.store(1, b"ab", acl_ranges=[(0, 10, aid)])

    def test_delete_requires_write_permission(self, secure_server):
        aid = secure_server.create_acl(readers={"*"}, writers={"owner"})
        secure_server.store(1, b"data", acl_ranges=[(0, 4, aid)])
        with pytest.raises(errors.AccessDeniedError):
            secure_server.delete(1, principal="bob")
        secure_server.delete(1, principal="owner")

    def test_modify_missing_acl(self, secure_server):
        with pytest.raises(errors.AclNotFoundError):
            secure_server.modify_acl(999, readers=set())

    def test_acls_survive_restart(self, secure_server):
        aid = secure_server.create_acl(readers={"alice"}, writers=set())
        secure_server.store(1, b"data", acl_ranges=[(0, 4, aid)])
        secure_server.crash()
        secure_server.restart()
        assert secure_server.retrieve(1, principal="alice") == b"data"
        with pytest.raises(errors.AccessDeniedError):
            secure_server.retrieve(1, principal="eve")

    def test_dump_load_round_trip(self):
        store = AclStore()
        aid = store.create_acl({"a"}, {"b"})
        clone = AclStore.load(store.dump())
        assert clone.get(aid).readers == {"a"}
        assert clone.get(aid).writers == {"b"}
        # The id counter survives: no reuse after reload.
        assert clone.create_acl(set(), set()) == aid + 1

    def test_enforcement_off_by_default(self, server):
        server.store(1, b"data", acl_ranges=[(0, 4, 12345)])
        assert server.retrieve(1, principal="anyone") == b"data"
