"""Tests for client-side fragment reconstruction (§2.4.3)."""

import pytest

from repro import errors
from repro.log.fragment import Fragment
from repro.log.reconstruct import Reconstructor

SVC = 3


def written_cluster(cluster, blocks=12, size=25000):
    log = cluster.make_log(client_id=1)
    payloads = [bytes([i + 1]) * size for i in range(blocks)]
    addresses = [log.write_block(SVC, payload) for payload in payloads]
    log.flush().wait()
    return log, payloads, addresses


class TestReconstruction:
    def test_missing_data_fragment_rebuilt(self, cluster4):
        log, payloads, addresses = written_cluster(cluster4)
        victim = cluster4.servers["s1"]
        lost = victim.list_fids()
        victim.crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        for fid in lost:
            image = rec.fetch(fid)
            fragment = Fragment.decode(image)
            assert fragment.fid == fid

    def test_reconstructed_blocks_byte_identical(self, cluster4):
        log, payloads, addresses = written_cluster(cluster4)
        direct = [log.read(addr) for addr in addresses]
        cluster4.servers["s0"].crash()
        fresh = cluster4.make_log(client_id=1)
        via_parity = [fresh.read(addr) for addr in addresses]
        assert via_parity == direct == payloads

    def test_missing_parity_fragment_recomputed(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        # Find a parity fragment and its host.
        parity_fid, host = None, None
        for sid, server in cluster4.servers.items():
            for fid in server.list_fids():
                fragment = Fragment.decode(server.retrieve(fid))
                if fragment.header.is_parity:
                    parity_fid, host = fid, sid
                    original = server.retrieve(fid)
        assert parity_fid is not None
        cluster4.servers[host].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        rebuilt = rec.fetch(parity_fid)
        rebuilt_fragment = Fragment.decode(rebuilt)
        original_fragment = Fragment.decode(original)
        assert rebuilt_fragment.header.is_parity
        assert rebuilt_fragment.payload == original_fragment.payload

    def test_two_failures_in_group_unrecoverable(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        lost = cluster4.servers["s1"].list_fids()
        cluster4.servers["s1"].crash()
        cluster4.servers["s2"].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        with pytest.raises(errors.ReconstructionError):
            rec.fetch(lost[0])

    def test_nonexistent_fragment_unreconstructable(self, cluster4):
        written_cluster(cluster4)
        rec = Reconstructor(cluster4.transport, "client-1")
        from repro.util.fids import make_fid

        with pytest.raises(errors.ReconstructionError):
            rec.fetch(make_fid(1, 4000))

    def test_reconstruction_counts_and_cache(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        lost = cluster4.servers["s1"].list_fids()
        cluster4.servers["s1"].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        rec.fetch(lost[0])
        rec.fetch(lost[0])  # second fetch served from the image cache
        assert rec.reconstructions == 1

    def test_rebuild_to_replacement_server(self, cluster4):
        from repro.server import ServerConfig, StorageServer

        log, payloads, addresses = written_cluster(cluster4)
        lost = sorted(cluster4.servers["s3"].list_fids())
        cluster4.servers["s3"].crash()
        spare = StorageServer(ServerConfig("spare", fragment_size=1 << 16))
        cluster4.transport.add_server(spare)
        rec = Reconstructor(cluster4.transport, "client-1")
        for fid in lost:
            rec.rebuild_to_server(fid, "spare")
        assert sorted(spare.list_fids()) == lost
        # A fresh reader finds the fragments on the spare via broadcast.
        fresh = cluster4.make_log(client_id=1)
        for i, addr in enumerate(addresses):
            assert fresh.read(addr) == payloads[i]

    def test_transparent_to_servers(self, cluster4):
        """Servers never see reconstruction traffic beyond ordinary
        retrieves: no special ops, no server-to-server calls."""
        log, _payloads, addresses = written_cluster(cluster4)
        before = {sid: server.retrieve_ops
                  for sid, server in cluster4.servers.items()}
        cluster4.servers["s1"].crash()
        log.read(addresses[0])
        # Only retrieve counters moved on the survivors.
        for sid, server in cluster4.servers.items():
            if sid == "s1":
                continue
            assert server.retrieve_ops >= before[sid]
            assert server.store_ops <= 20  # unchanged by reads


class TestCorruptionPaths:
    """Silent corruption: checksum mismatch must trigger a parity
    rebuild, and two damaged members must fail loudly, not quietly."""

    def _corrupt_payload(self, cluster, server_id, fid):
        from repro.cluster.failures import FailureInjector
        from repro.log.fragment import HEADER_SIZE

        FailureInjector(cluster).corrupt_fragment(
            server_id, fid, bit_index=8 * HEADER_SIZE + 3)

    def test_crc_mismatch_triggers_rebuild(self, cluster4):
        log, payloads, addresses = written_cluster(cluster4)
        victim = None
        for sid in sorted(cluster4.servers):
            fids = sorted(cluster4.servers[sid].list_fids())
            if fids:
                victim, fid = sid, fids[0]
                break
        pristine = bytes(cluster4.servers[victim].retrieve(fid))
        self._corrupt_payload(cluster4, victim, fid)
        rec = Reconstructor(cluster4.transport, "client-1", verify=True)
        image = rec.fetch(fid)
        assert image == pristine
        assert rec.corruptions_detected == 1
        assert rec.reconstructions == 1

    def test_unverified_fetch_misses_corruption(self, cluster4):
        """Without verify=True the direct path trusts the server — the
        flag, not the Reconstructor, buys the end-to-end check."""
        log, _payloads, _addresses = written_cluster(cluster4)
        for sid in sorted(cluster4.servers):
            fids = sorted(cluster4.servers[sid].list_fids())
            if fids:
                victim, fid = sid, fids[0]
                break
        pristine = bytes(cluster4.servers[victim].retrieve(fid))
        self._corrupt_payload(cluster4, victim, fid)
        rec = Reconstructor(cluster4.transport, "client-1")
        assert rec.fetch(fid) != pristine

    def _stripe_of(self, cluster, log, fid):
        """(member_fid, server_id) per stripe member, in index order."""
        holder = log.known_location(fid)
        header = Fragment.decode(
            bytes(cluster.servers[holder].retrieve(fid))).header
        return [(header.stripe_base_fid + i, header.servers[i])
                for i in range(header.stripe_width)]

    def test_corrupt_plus_crash_is_unrecoverable(self, cluster4):
        """One corrupt member + one crashed member of the same stripe:
        single parity cannot recover both, and the error must say so.

        Member 0 is corrupted and member 2's server crashed; member 1
        stays healthy so the stripe descriptor itself is discoverable —
        the failure is about recovery, not location.
        """
        log, _payloads, addresses = written_cluster(cluster4)
        members = self._stripe_of(cluster4, log, addresses[0].fid)
        target_fid, target_server = members[0]
        self._corrupt_payload(cluster4, target_server, target_fid)
        cluster4.servers[members[2][1]].crash()
        rec = Reconstructor(cluster4.transport, "client-1", verify=True)
        with pytest.raises(errors.UnrecoverableError) as excinfo:
            rec.fetch(target_fid)
        assert "single parity cannot recover both" in str(excinfo.value)

    def test_double_corruption_is_unrecoverable(self, cluster4):
        log, _payloads, addresses = written_cluster(cluster4)
        members = self._stripe_of(cluster4, log, addresses[0].fid)
        for member_fid, member_server in (members[0], members[2]):
            self._corrupt_payload(cluster4, member_server, member_fid)
        rec = Reconstructor(cluster4.transport, "client-1", verify=True)
        with pytest.raises(errors.UnrecoverableError):
            rec.fetch(members[0][0])

    def test_unrecoverable_is_a_reconstruction_error(self):
        # Existing callers catching ReconstructionError keep working.
        assert issubclass(errors.UnrecoverableError,
                          errors.ReconstructionError)
