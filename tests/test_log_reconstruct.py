"""Tests for client-side fragment reconstruction (§2.4.3)."""

import pytest

from repro import errors
from repro.log.fragment import Fragment
from repro.log.reconstruct import Reconstructor

SVC = 3


def written_cluster(cluster, blocks=12, size=25000):
    log = cluster.make_log(client_id=1)
    payloads = [bytes([i + 1]) * size for i in range(blocks)]
    addresses = [log.write_block(SVC, payload) for payload in payloads]
    log.flush().wait()
    return log, payloads, addresses


class TestReconstruction:
    def test_missing_data_fragment_rebuilt(self, cluster4):
        log, payloads, addresses = written_cluster(cluster4)
        victim = cluster4.servers["s1"]
        lost = victim.list_fids()
        victim.crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        for fid in lost:
            image = rec.fetch(fid)
            fragment = Fragment.decode(image)
            assert fragment.fid == fid

    def test_reconstructed_blocks_byte_identical(self, cluster4):
        log, payloads, addresses = written_cluster(cluster4)
        direct = [log.read(addr) for addr in addresses]
        cluster4.servers["s0"].crash()
        fresh = cluster4.make_log(client_id=1)
        via_parity = [fresh.read(addr) for addr in addresses]
        assert via_parity == direct == payloads

    def test_missing_parity_fragment_recomputed(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        # Find a parity fragment and its host.
        parity_fid, host = None, None
        for sid, server in cluster4.servers.items():
            for fid in server.list_fids():
                fragment = Fragment.decode(server.retrieve(fid))
                if fragment.header.is_parity:
                    parity_fid, host = fid, sid
                    original = server.retrieve(fid)
        assert parity_fid is not None
        cluster4.servers[host].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        rebuilt = rec.fetch(parity_fid)
        rebuilt_fragment = Fragment.decode(rebuilt)
        original_fragment = Fragment.decode(original)
        assert rebuilt_fragment.header.is_parity
        assert rebuilt_fragment.payload == original_fragment.payload

    def test_two_failures_in_group_unrecoverable(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        lost = cluster4.servers["s1"].list_fids()
        cluster4.servers["s1"].crash()
        cluster4.servers["s2"].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        with pytest.raises(errors.ReconstructionError):
            rec.fetch(lost[0])

    def test_nonexistent_fragment_unreconstructable(self, cluster4):
        written_cluster(cluster4)
        rec = Reconstructor(cluster4.transport, "client-1")
        from repro.util.fids import make_fid

        with pytest.raises(errors.ReconstructionError):
            rec.fetch(make_fid(1, 4000))

    def test_reconstruction_counts_and_cache(self, cluster4):
        log, _payloads, _addresses = written_cluster(cluster4)
        lost = cluster4.servers["s1"].list_fids()
        cluster4.servers["s1"].crash()
        rec = Reconstructor(cluster4.transport, "client-1")
        rec.fetch(lost[0])
        rec.fetch(lost[0])  # second fetch served from the image cache
        assert rec.reconstructions == 1

    def test_rebuild_to_replacement_server(self, cluster4):
        from repro.server import ServerConfig, StorageServer

        log, payloads, addresses = written_cluster(cluster4)
        lost = sorted(cluster4.servers["s3"].list_fids())
        cluster4.servers["s3"].crash()
        spare = StorageServer(ServerConfig("spare", fragment_size=1 << 16))
        cluster4.transport.add_server(spare)
        rec = Reconstructor(cluster4.transport, "client-1")
        for fid in lost:
            rec.rebuild_to_server(fid, "spare")
        assert sorted(spare.list_fids()) == lost
        # A fresh reader finds the fragments on the spare via broadcast.
        fresh = cluster4.make_log(client_id=1)
        for i, addr in enumerate(addresses):
            assert fresh.read(addr) == payloads[i]

    def test_transparent_to_servers(self, cluster4):
        """Servers never see reconstruction traffic beyond ordinary
        retrieves: no special ops, no server-to-server calls."""
        log, _payloads, addresses = written_cluster(cluster4)
        before = {sid: server.retrieve_ops
                  for sid, server in cluster4.servers.items()}
        cluster4.servers["s1"].crash()
        log.read(addresses[0])
        # Only retrieve counters moved on the survivors.
        for sid, server in cluster4.servers.items():
            if sid == "s1":
                continue
            assert server.retrieve_ops >= before[sid]
            assert server.store_ops <= 20  # unchanged by reads
