"""Tests for the background repair daemon (``repro.health.repair``)."""

import pytest

from repro import errors
from repro.cluster import build_local_cluster
from repro.health import RepairDaemon
from repro.log.fragment import Fragment
from repro.log.reconstruct import Reconstructor
from repro.rpc import messages as m
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService
from repro.tools.fsck import check_client_log

SVC = 3
SMALL_FRAGMENT = 1 << 16


@pytest.fixture
def cluster5():
    """Five servers: a four-wide stripe group (s0..s3) plus spare s4."""
    return build_local_cluster(num_servers=5, fragment_size=SMALL_FRAGMENT,
                               server_slots=512)


def written_group(cluster, blocks=10, size=25000):
    """Write blocks over s0..s3, leaving s4 empty as the replacement."""
    group = cluster.stripe_group(["s0", "s1", "s2", "s3"])
    log = cluster.make_log(client_id=1, group=group)
    payloads = [bytes([i + 1]) * size for i in range(blocks)]
    addresses = [log.write_block(SVC, payload) for payload in payloads]
    log.flush().wait()
    return log, payloads, addresses


def kill_and_daemon(cluster, log, victim="s1", **daemon_kwargs):
    lost = cluster.servers[victim].list_fids()
    cluster.servers[victim].crash()
    daemon = RepairDaemon(cluster.transport, client_id=1, replacement="s4",
                          locations=log.locations, **daemon_kwargs)
    return lost, daemon


class TestDiscovery:
    def test_finds_exactly_the_lost_fragments(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        assert lost
        found = daemon.discover(dead_server="s1")
        assert sorted(found) == sorted(lost)
        assert sorted(daemon.pending) == sorted(lost)

    def test_discovery_without_location_hint_still_works(self, cluster5):
        # A daemon with a cold cache must find the losses purely from
        # the inventory sweep (listing + header shapes + broadcast).
        log, _payloads, _addresses = written_group(cluster5)
        lost = cluster5.servers["s1"].list_fids()
        cluster5.servers["s1"].crash()
        daemon = RepairDaemon(cluster5.transport, client_id=1,
                              replacement="s4")
        assert sorted(daemon.discover()) == sorted(lost)

    def test_nothing_to_do_when_cluster_is_whole(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        daemon = RepairDaemon(cluster5.transport, client_id=1,
                              replacement="s4", locations=log.locations)
        assert daemon.discover() == []
        assert daemon.done

    def test_discovery_is_idempotent(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        daemon.discover(dead_server="s1")
        assert daemon.discover(dead_server="s1") == []
        assert sorted(daemon.pending) == sorted(lost)


class TestRepair:
    def test_rematerializes_everything_onto_replacement(self, cluster5):
        log, payloads, addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        repaired = daemon.run(dead_server="s1")
        assert repaired == len(lost)
        assert daemon.done
        spare = cluster5.servers["s4"]
        assert sorted(spare.list_fids()) == sorted(lost)
        # Every repaired image parses and passes its payload checksum.
        for fid in lost:
            Fragment.decode(spare.retrieve(fid), verify_crc=True)
        # With the victim still down, fsck sees full redundancy again.
        report = check_client_log(cluster5.transport, 1)
        assert report.healthy
        assert report.by_status("degraded") == []
        # And the data itself survives, read through a fresh client.
        fresh = cluster5.make_log(
            client_id=1, group=cluster5.stripe_group(["s0", "s2", "s3",
                                                      "s4"]))
        assert [fresh.read(addr) for addr in addresses] == payloads

    def test_location_cache_updated_to_replacement(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        daemon.run(dead_server="s1")
        for fid in lost:
            assert log.locations.get(fid) == "s4"
        assert log.locations.fids_on("s1") == []

    def test_step_respects_batch_size(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log, batch_fragments=2)
        daemon.discover(dead_server="s1")
        assert daemon.step() == min(2, len(lost))
        assert len(daemon.pending) == len(lost) - min(2, len(lost))

    def test_throttle_charges_repair_bandwidth(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log,
                                       throttle_bytes_per_s=1 << 20)
        daemon.run(dead_server="s1")
        assert daemon.bytes_repaired > 0
        assert daemon.throttle_charged_s == pytest.approx(
            daemon.bytes_repaired / float(1 << 20))

    def test_marked_flag_preserved_through_repair(self, cluster5):
        group = cluster5.stripe_group(["s0", "s1", "s2", "s3"])
        stack = cluster5.make_stack(client_id=1, group=group)
        disk = stack.push(LogicalDiskService(SVC))
        for block in range(8):
            disk.write(block, bytes([block + 1]) * 20000)
        stack.checkpoint_all()
        # Find a server holding a marked (checkpoint) fragment and kill it.
        victim, marked_fids = None, []
        for sid in ("s0", "s1", "s2", "s3"):
            server = cluster5.servers[sid]
            marked_fids = [fid for fid in server.list_fids()
                           if server.fragment_info(fid).marked]
            if marked_fids:
                victim = sid
                break
        assert victim is not None
        lost, daemon = kill_and_daemon(cluster5, stack.log, victim=victim)
        daemon.run(dead_server=victim)
        spare = cluster5.servers["s4"]
        for fid in marked_fids:
            assert spare.fragment_info(fid).marked

    def test_scattered_batch_path_equivalent(self, cluster5):
        log, payloads, addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        daemon.discover(dead_server="s1")
        assert daemon.repair_batch_scattered(list(daemon.pending)) == \
            len(lost)
        assert daemon.done
        assert check_client_log(cluster5.transport, 1).healthy


class TestResume:
    def test_progress_roundtrip_skips_completed_work(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log, batch_fragments=1)
        daemon.discover(dead_server="s1")
        daemon.step()  # repair exactly one fragment, then "crash"
        snapshot = daemon.progress()
        assert len(snapshot["completed"]) == 1

        successor = RepairDaemon(cluster5.transport, client_id=1,
                                 replacement="s4", locations=log.locations,
                                 resume=snapshot)
        successor.discover(dead_server="s1")
        assert sorted(successor.pending) == sorted(
            set(lost) - set(snapshot["completed"]))
        successor.run()
        # Every lost fragment was stored exactly once across both
        # daemons: the successor never re-sent completed work.
        assert cluster5.servers["s4"].store_ops == len(lost)
        assert check_client_log(cluster5.transport, 1).healthy

    def test_interrupted_repair_already_on_target_is_accepted(self, cluster5):
        # A predecessor that crashed *after* storing but *before*
        # recording progress: the fragment is already on the target
        # with identical bytes. rebuild_to_server must treat that as
        # success (idempotent), not an error.
        log, _payloads, _addresses = written_group(cluster5)
        lost, daemon = kill_and_daemon(cluster5, log)
        fid = sorted(lost)[0]
        rec = Reconstructor(cluster5.transport, "client-1",
                            locations=log.locations)
        image = rec.rebuild_to_server(fid, "s4")
        assert rec.rebuild_to_server(fid, "s4") == image
        daemon.run(dead_server="s1")
        assert check_client_log(cluster5.transport, 1).healthy


class TestRebuildToServer:
    def test_conflicting_stale_copy_replaced_whole(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost = cluster5.servers["s1"].list_fids()
        fid = sorted(lost)[0]
        # Plant different bytes under the same fid on the target first.
        cluster5.transport.call("s4", m.StoreRequest(
            fid=fid, data=b"stale" * 100, principal="client-1"))
        cluster5.servers["s1"].crash()
        rec = Reconstructor(cluster5.transport, "client-1",
                            locations=log.locations)
        image = rec.rebuild_to_server(fid, "s4")
        assert bytes(cluster5.servers["s4"].retrieve(fid)) == image
        Fragment.decode(image, verify_crc=True)

    def test_read_back_mismatch_raises(self, cluster5):
        log, _payloads, _addresses = written_group(cluster5)
        lost = cluster5.servers["s1"].list_fids()
        fid = sorted(lost)[0]
        cluster5.servers["s1"].crash()
        rec = Reconstructor(cluster5.transport, "client-1",
                            locations=log.locations)
        image = rec.rebuild_to_server(fid, "s4")
        with pytest.raises(errors.ReconstructionError):
            rec._verify_read_back(fid, "s4", image + b"tampered")


class TestCleanerCoordination:
    def test_held_stripes_are_not_cleaning_candidates(self, cluster4):
        from tests.test_services_cleaner import churn_stack

        stack, cleaner, _disk, _contents = churn_stack(cluster4)
        stack.checkpoint_all()
        candidates = cleaner.candidate_stripes()
        assert candidates
        cleaner.hold_for_repair([c.base_fid for c in candidates])
        assert cleaner.candidate_stripes() == []
        cleaner.release_repair_hold([c.base_fid for c in candidates])
        assert [c.base_fid for c in cleaner.candidate_stripes()] == \
            [c.base_fid for c in candidates]

    def test_daemon_holds_and_releases_through_repair(self, cluster5):
        class RecordingCleaner:
            def __init__(self):
                self.held, self.released = set(), set()

            def hold_for_repair(self, bases):
                self.held.update(bases)

            def release_repair_hold(self, bases):
                self.released.update(bases)

        log, _payloads, _addresses = written_group(cluster5)
        recorder = RecordingCleaner()
        lost, daemon = kill_and_daemon(cluster5, log, cleaner=recorder)
        daemon.discover(dead_server="s1")
        assert recorder.held  # stripes under repair are on hold
        assert not recorder.released
        daemon.run()
        assert recorder.released == recorder.held  # all released at the end
