"""Shared fixtures: small functional clusters and stacks."""

from __future__ import annotations

import pytest

from repro.cluster import build_local_cluster
from repro.log.config import LogConfig
from repro.log.layer import LogLayer
from repro.server.config import ServerConfig
from repro.server.server import StorageServer

SMALL_FRAGMENT = 1 << 16  # 64 KB keeps tests fast while exercising striping


@pytest.fixture
def cluster4():
    """Four-server functional cluster with small fragments."""
    return build_local_cluster(num_servers=4, fragment_size=SMALL_FRAGMENT,
                               server_slots=512)


@pytest.fixture
def cluster2():
    """Two-server cluster: the minimum parity configuration."""
    return build_local_cluster(num_servers=2, fragment_size=SMALL_FRAGMENT,
                               server_slots=512)


@pytest.fixture
def log4(cluster4) -> LogLayer:
    """A client log striped over the four-server cluster."""
    return cluster4.make_log(client_id=1)


@pytest.fixture
def server() -> StorageServer:
    """A lone storage server with small slots."""
    return StorageServer(ServerConfig("s0", fragment_size=SMALL_FRAGMENT,
                                      total_slots=64))


@pytest.fixture
def secure_server() -> StorageServer:
    """A server with ACL enforcement on."""
    return StorageServer(ServerConfig("sec", fragment_size=SMALL_FRAGMENT,
                                      total_slots=64, enforce_acls=True))
