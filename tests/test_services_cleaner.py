"""Tests for the log cleaner."""

import pytest

from repro import errors
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService


def churn_stack(cluster, rounds=6, files=40, threshold=0.6, **log_overrides):
    """Overwrite the same blocks repeatedly so early stripes die.

    Sized to span several stripes before the first checkpoint, so the
    cleaner has genuinely old, mostly-dead stripes to work with.
    Extra keyword arguments (``parity_fragments``, ``coding``, ...)
    configure the underlying log.
    """
    stack = cluster.make_stack(client_id=1, **log_overrides)
    cleaner = stack.push(CleanerService(1, utilization_threshold=threshold))
    disk = stack.push(LogicalDiskService(2))
    contents = {}
    for round_no in range(rounds):
        for block in range(files):
            data = bytes([round_no * 17 + block % 7]) * (2000 + 41 * block)
            disk.write(block, data)
            contents[block] = data
    return stack, cleaner, disk, contents


def used_slots(cluster):
    return sum(len(server.slots) for server in cluster.servers.values())


class TestAccounting:
    def test_utilization_drops_with_overwrites(self, cluster4):
        stack, cleaner, disk, _contents = churn_stack(cluster4)
        stack.flush().wait()
        # Early fragments must be mostly dead by now.
        fids = sorted(cleaner._total)
        early = fids[0]
        assert cleaner.fragment_utilization(early) < 0.5

    def test_no_cleaning_without_checkpoints(self, cluster4):
        stack, cleaner, disk, _contents = churn_stack(cluster4)
        stack.flush().wait()
        assert cleaner.candidate_stripes() == []
        with pytest.raises(errors.CleanerError):
            cleaner.clean_once()

    def test_candidates_sorted_by_utilization(self, cluster4):
        stack, cleaner, disk, _contents = churn_stack(cluster4)
        stack.checkpoint_all()
        candidates = cleaner.candidate_stripes()
        assert candidates
        utils = [c.utilization for c in candidates]
        assert utils == sorted(utils)


class TestCleaning:
    def test_cleaning_reclaims_slots_and_preserves_data(self, cluster4):
        stack, cleaner, disk, contents = churn_stack(cluster4)
        stack.checkpoint_all()
        before = used_slots(cluster4)
        moved = cleaner.clean(target_stripes=100)
        after = used_slots(cluster4)
        assert cleaner.stripes_cleaned > 0
        assert after < before
        for block, data in contents.items():
            assert disk.read(block) == data

    def test_owners_notified_of_moves(self, cluster4):
        stack, cleaner, disk, contents = churn_stack(cluster4)
        stack.checkpoint_all()
        old_map = dict(disk._map)
        moved = cleaner.clean(target_stripes=100)
        if moved:
            assert disk._map != old_map  # pointers were updated

    def test_cleaned_data_survives_client_crash(self, cluster4):
        stack, cleaner, disk, contents = churn_stack(cluster4)
        stack.checkpoint_all()
        cleaner.clean(target_stripes=100)
        stack.checkpoint_all()  # persist post-move metadata

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(CleanerService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        for block, data in contents.items():
            assert disk2.read(block) == data

    def test_moves_replayed_without_final_checkpoint(self, cluster4):
        """Crash right after cleaning: the relocated blocks' CREATE
        records replay and repoint the owners' metadata."""
        stack, cleaner, disk, contents = churn_stack(cluster4)
        stack.checkpoint_all()
        cleaner.clean(target_stripes=100)
        stack.flush().wait()   # moves durable, but no new checkpoint

        stack2 = cluster4.make_stack(client_id=1)
        stack2.push(CleanerService(1))
        disk2 = stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        for block, data in contents.items():
            assert disk2.read(block) == data

    def test_never_cleans_stripes_newer_than_oldest_checkpoint(self, cluster4):
        stack, cleaner, disk, _contents = churn_stack(cluster4)
        stack.checkpoint_all()
        min_ckpt = min(lsn for _addr, lsn in
                       stack.log.checkpoint_table.values())
        for candidate in cleaner.candidate_stripes():
            assert candidate.max_lsn < min_ckpt

    def test_demand_checkpoints_unblocks_cleaning(self, cluster4):
        stack, cleaner, disk, contents = churn_stack(cluster4)
        stack.flush().wait()
        # No checkpoints yet -> clean() must demand them, then proceed.
        assert cleaner.candidate_stripes() == []
        moved = cleaner.clean(target_stripes=50)
        assert cleaner.stripes_cleaned > 0
        for block, data in contents.items():
            assert disk.read(block) == data

    def test_cleaner_state_recovers_by_rollforward(self, cluster4):
        stack, cleaner, disk, _contents = churn_stack(cluster4)
        stack.checkpoint_all()
        live_before = dict(cleaner._live)

        stack2 = cluster4.make_stack(client_id=1)
        cleaner2 = stack2.push(CleanerService(1))
        stack2.push(LogicalDiskService(2))
        stack2.recover_all()
        # Utilization estimates must agree for the fragments both saw.
        for fid, live in live_before.items():
            assert cleaner2._live.get(fid, 0) == live

    def test_cleaning_idempotent_when_nothing_dead(self, cluster2):
        stack = cluster2.make_stack(client_id=1)
        cleaner = stack.push(CleanerService(1, utilization_threshold=0.5))
        disk = stack.push(LogicalDiskService(2))
        for block in range(10):
            disk.write(block, bytes([block]) * 2000)  # no overwrites
        stack.checkpoint_all()
        cleaner.clean(target_stripes=10)
        for block in range(10):
            assert disk.read(block) == bytes([block]) * 2000


class TestSpilledCreationRecords:
    def test_clean_block_whose_record_spilled(self, cluster4):
        """Regression: a near-fragment-sized block forces its CREATE
        record into the next fragment; cleaning must still repoint the
        owner via the lookahead path."""
        stack = cluster4.make_stack(client_id=1)
        cleaner = stack.push(CleanerService(1, utilization_threshold=0.99))
        disk = stack.push(LogicalDiskService(2))
        big = disk.stack.log.max_block_size()
        # Live near-max block (record spills), plus dead churn around it.
        disk.write(0, b"K" * big)
        for round_no in range(3):
            for block in range(1, 25):
                disk.write(block, bytes([round_no]) * 3000)
        survivors = {0: b"K" * big}
        survivors.update({block: bytes([2]) * 3000
                          for block in range(1, 25)})
        stack.checkpoint_all()
        cleaner.clean(target_stripes=100)
        for block, data in survivors.items():
            assert disk.read(block) == data, block

    def test_small_blocks_colocate_with_records(self, cluster4):
        """Normal-sized blocks land in the same fragment as their
        CREATE record (the cleaner's fast path)."""
        from repro.log.fragment import Fragment
        from repro.log.records import RecordType, SERVICE_LOG_LAYER

        log = cluster4.make_log(client_id=1)
        for index in range(40):
            log.write_block(9, bytes([index]) * 2500)
        log.flush().wait()
        for server in cluster4.servers.values():
            for fid in server.list_fids():
                fragment = Fragment.decode(server.retrieve(fid))
                if fragment.header.is_parity:
                    continue
                blocks = set()
                covered = set()
                for item in fragment.items():
                    if item.record is None:
                        blocks.add(item.data_offset)
                    elif (item.record.service_id == SERVICE_LOG_LAYER
                          and item.record.rtype == RecordType.CREATE):
                        from repro.log.records import (
                            decode_record_payload_block,
                        )

                        addr, _o, _i = decode_record_payload_block(
                            item.record.payload)
                        if addr.fid == fid:
                            covered.add(addr.offset)
                assert blocks <= covered


class TestParityLayouts:
    """Cleaning must not bake in the one-parity-member assumption.

    Regression tests for the coding-engine refactor: the cleaner's
    stripe accounting and whole-stripe deletes have to be driven by
    the header's ``parity_index`` (first of ``m`` parity members, or
    none at all), not by a hardwired ``width - 1``.
    """

    def _assert_stripes_fully_reclaimed(self, cluster, cleaner):
        """Every cleaned stripe's members — parity included — are gone."""
        held = {fid for server in cluster.servers.values()
                for fid in server.list_fids()}
        cleaned = cleaner.stripes_cleaned
        assert cleaned > 0
        # _forget_stripe dropped the cleaned bases from tracking, so
        # recompute the doomed set from what deletion left behind: no
        # fid below the lowest surviving tracked fid may linger.
        if cleaner._total:
            floor = min(cleaner._total)
            assert not [fid for fid in held if fid < floor]

    def test_cleaning_m2_rs_layout(self):
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=5,
                                      fragment_size=1 << 16,
                                      server_slots=512)
        stack, cleaner, disk, contents = churn_stack(
            cluster, parity_fragments=2, coding="rs")
        stack.checkpoint_all()
        before = used_slots(cluster)
        cleaner.clean(target_stripes=100)
        assert cleaner.stripes_cleaned > 0
        assert used_slots(cluster) < before
        for block, data in contents.items():
            assert disk.read(block) == data
        self._assert_stripes_fully_reclaimed(cluster, cleaner)

    def test_cleaning_m0_layout(self):
        """No parity at all: stripes still clean, and deleting a
        stripe removes exactly its data members (there is nothing
        else)."""
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=4,
                                      fragment_size=1 << 16,
                                      server_slots=512)
        stack, cleaner, disk, contents = churn_stack(
            cluster, parity_fragments=0)
        stack.checkpoint_all()
        before = used_slots(cluster)
        cleaner.clean(target_stripes=100)
        assert cleaner.stripes_cleaned > 0
        assert used_slots(cluster) < before
        for block, data in contents.items():
            assert disk.read(block) == data
        self._assert_stripes_fully_reclaimed(cluster, cleaner)

    def test_m2_utilization_counts_data_members_only(self):
        """Both parity members are excluded from stripe accounting:
        a stripe whose data is fully dead reports zero utilization
        even though its two parity fragments physically exist."""
        from repro.cluster import build_local_cluster

        cluster = build_local_cluster(num_servers=5,
                                      fragment_size=1 << 16,
                                      server_slots=512)
        stack, cleaner, disk, _contents = churn_stack(
            cluster, parity_fragments=2, coding="rs")
        stack.checkpoint_all()
        candidates = cleaner.candidate_stripes()
        assert candidates
        deadest = candidates[0]
        assert deadest.width == 5
        assert deadest.utilization < 0.5
        # Parity fids never enter the live/total ledgers.
        from repro.log.fragment import Fragment

        for server in cluster.servers.values():
            for fid in server.list_fids():
                header = Fragment.decode(server.retrieve(fid)).header
                if header.is_parity:
                    assert fid not in cleaner._total
                    assert fid not in cleaner._live
