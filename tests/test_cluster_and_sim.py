"""Tests for cluster assembly, the SimTransport, and failure injection."""

import pytest

from repro import errors
from repro.cluster import (
    ClusterConfig,
    FailureInjector,
    SimCluster,
    SimClientDriver,
    build_local_cluster,
)
from repro.rpc import messages as m

SVC = 4


class TestLocalCluster:
    def test_servers_named_canonically(self, cluster4):
        assert sorted(cluster4.servers) == ["s0", "s1", "s2", "s3"]

    def test_stripe_group_subset(self, cluster4):
        group = cluster4.stripe_group(["s0", "s2"])
        assert group.servers == ("s0", "s2")

    def test_config_validation(self):
        with pytest.raises(errors.ConfigError):
            ClusterConfig(num_servers=0)
        with pytest.raises(errors.ConfigError):
            ClusterConfig(num_clients=0)


class TestFailureInjector:
    def test_crash_and_restart(self, cluster4):
        injector = FailureInjector(cluster4)
        injector.crash_server("s1")
        assert injector.alive_servers() == ["s0", "s2", "s3"]
        injector.restart_server("s1")
        assert len(injector.alive_servers()) == 4

    def test_wipe_discards_data(self, cluster4):
        log = cluster4.make_log(client_id=1)
        log.write_block(SVC, b"data")
        log.flush().wait()
        injector = FailureInjector(cluster4)
        injector.wipe_server("s0")
        injector.restart_server("s0")
        assert cluster4.servers["s0"].list_fids() == []

    def test_timed_crash_requires_sim(self, cluster4):
        injector = FailureInjector(cluster4)
        with pytest.raises(TypeError):
            injector.crash_server_at("s0", 1.0)

    def test_timed_crash_in_sim(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        injector = FailureInjector(cluster)
        injector.crash_server_at("s0", 0.5)
        cluster.sim.run(until=1.0)
        assert not cluster.server_nodes["s0"].server.available


class TestSimTransport:
    def test_operations_take_simulated_time(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        transport = cluster.make_transport(0)

        def workload():
            response = yield transport.submit(
                "s0", m.StoreRequest(fid=1, data=b"x" * 100000,
                                     principal="c"))
            return response.value

        slot = cluster.sim.run_process(workload())
        assert slot == 0
        assert cluster.sim.now > 0.005  # network + disk time elapsed

    def test_functional_effect_matches_local(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        transport = cluster.make_transport(0)

        def workload():
            yield transport.submit("s0", m.StoreRequest(fid=9, data=b"abc"))
            response = yield transport.submit(
                "s0", m.RetrieveRequest(fid=9))
            return response.payload

        assert cluster.sim.run_process(workload()) == b"abc"

    def test_submit_failure_propagates(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        transport = cluster.make_transport(0)

        def workload():
            with pytest.raises(errors.FragmentNotFoundError):
                yield transport.submit("s0", m.RetrieveRequest(fid=404))
            return True

        assert cluster.sim.run_process(workload())

    def test_deferred_mode_accumulates_time(self):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        transport = cluster.make_transport(0, deferred_mode=True)
        future = transport.submit("s0", m.StoreRequest(fid=1,
                                                       data=b"y" * 50000))
        assert future.triggered and future.ok
        assert transport.take_deferred_time() > 0
        assert transport.take_deferred_time() == 0.0

    def test_more_servers_absorb_multi_client_load_faster(self):
        """Pipelining/contention (§2.1.2): with two offered client
        streams, two servers' disks drain the fragments faster than one
        server's single disk."""
        from repro.util.fids import make_fid

        def elapsed(nservers):
            cluster = SimCluster(ClusterConfig(num_servers=nservers,
                                               num_clients=2))
            data = b"z" * (1 << 20)
            processes = []
            for client in range(2):
                transport = cluster.make_transport(client)

                def workload(transport=transport, client=client):
                    futures = [transport.submit(
                        cluster.config.server_id(i % nservers),
                        m.StoreRequest(fid=make_fid(client + 1, 10 + i),
                                       data=data))
                        for i in range(4)]
                    yield cluster.sim.all_of(futures)

                processes.append(cluster.sim.process(workload()))
            cluster.sim.run()
            return cluster.sim.now

        assert elapsed(2) < elapsed(1) * 0.9


class TestSimClientDriver:
    def test_write_blocks_returns_totals(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        driver = SimClientDriver(cluster, 0)
        process = cluster.sim.process(driver.write_blocks(200, 4096))
        cluster.sim.run()
        useful, raw = process.value
        assert useful == 200 * 4096
        assert raw > useful  # parity + headers

    def test_data_actually_stored_on_servers(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        driver = SimClientDriver(cluster, 0)
        process = cluster.sim.process(driver.write_blocks(100, 4096))
        cluster.sim.run()
        assert cluster.total_bytes_stored() >= 100 * 4096

    def test_two_drivers_share_cluster(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=2))
        drivers = [SimClientDriver(cluster, i) for i in range(2)]
        processes = [cluster.sim.process(d.write_blocks(100, 4096))
                     for d in drivers]
        cluster.sim.run()
        for process in processes:
            assert process.value[0] == 100 * 4096

    def test_disk_utilization_reported(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        driver = SimClientDriver(cluster, 0)
        cluster.sim.process(driver.write_blocks(500, 4096))
        cluster.sim.run()
        utils = cluster.disk_utilizations()
        assert set(utils) == {"s0", "s1"}
        assert all(0 <= value <= 1 for value in utils.values())


class TestInjectorStateTracking:
    """The injector's crashed-server ledger must track ground truth
    (the servers' own availability), however a server went down."""

    def test_is_crashed_follows_injector_actions(self, cluster4):
        injector = FailureInjector(cluster4)
        assert not injector.is_crashed("s1")
        injector.crash_server("s1")
        assert injector.is_crashed("s1")
        assert injector.crashed == ["s1"]
        injector.restart_server("s1")
        assert not injector.is_crashed("s1")
        assert injector.crashed == []

    def test_is_crashed_syncs_with_direct_crash(self, cluster4):
        """A test (or a scheduled sim crash) may call server.crash()
        behind the injector's back; the ledger must not report the
        server as alive."""
        injector = FailureInjector(cluster4)
        cluster4.servers["s2"].crash()
        assert injector.is_crashed("s2")
        assert "s2" in injector.crashed
        cluster4.servers["s2"].restart()
        assert not injector.is_crashed("s2")
        assert "s2" not in injector.crashed

    def test_double_crash_not_double_tracked(self, cluster4):
        injector = FailureInjector(cluster4)
        injector.crash_server("s0")
        cluster4.servers["s0"].crash()
        injector.crash_server("s0")
        injector.is_crashed("s0")
        assert injector.crashed == ["s0"]

    def test_wipe_tracks_as_crashed(self, cluster4):
        injector = FailureInjector(cluster4)
        injector.wipe_server("s3")
        assert injector.is_crashed("s3")
        assert injector.alive_servers() == ["s0", "s1", "s2"]
        injector.restart_server("s3")
        assert not injector.is_crashed("s3")
        assert len(injector.alive_servers()) == 4

    def test_timed_crash_lands_in_ledger(self):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        injector = FailureInjector(cluster)
        injector.crash_server_at("s1", 0.5)
        assert not injector.is_crashed("s1")  # not down yet
        cluster.sim.run(until=1.0)
        assert injector.is_crashed("s1")
        assert injector.alive_servers() == ["s0"]

    def test_alive_servers_is_sorted_ground_truth(self, cluster4):
        injector = FailureInjector(cluster4)
        # Down a server without telling the injector at all.
        cluster4.servers["s1"].crash()
        assert injector.alive_servers() == ["s0", "s2", "s3"]
