"""Workload generators plus the paper's qualitative result shapes.

These are the cheap guardians of the reproduction: small-scale runs of
every experiment asserting the *relationships* the paper reports (who
wins, what rises, what saturates), so a regression in any model or in
the Swarm stack itself shows up as a test failure. The full-scale
numbers live in ``benchmarks/``.
"""

import pytest

from repro.workloads.generators import make_andrew_tree, make_churn_trace
from repro.workloads.mab import run_mab_on_ext2, run_mab_on_sting
from repro.workloads.microbench import run_write_bench


class TestGenerators:
    def test_andrew_tree_shape(self):
        tree = make_andrew_tree()
        assert len(tree.files) == 70
        assert len(tree.directories) == 20
        assert 150_000 <= tree.total_bytes <= 300_000
        assert len(tree.source_files) == 17

    def test_andrew_tree_deterministic(self):
        first = make_andrew_tree(seed=5)
        second = make_andrew_tree(seed=5)
        assert first.files == second.files

    def test_churn_trace_overwrites_dominate(self):
        ops = list(make_churn_trace(seed=3, n_files=20, rounds=4))
        writes = [op for op in ops if op[0] == "write"]
        paths = {op[1] for op in writes}
        assert len(writes) > 2 * len(paths)  # same paths rewritten

    def test_churn_trace_deterministic(self):
        assert (list(make_churn_trace(1, 5, 2))
                == list(make_churn_trace(1, 5, 2)))


BLOCKS = 2500  # reduced scale: shapes hold, wall time stays low


class TestWriteBandwidthShapes:
    def test_raw_includes_parity_overhead(self):
        result = run_write_bench(1, 2, blocks=BLOCKS)
        assert result.raw_mb_per_s > 1.7 * result.useful_mb_per_s

    def test_useful_rises_with_stripe_width(self):
        narrow = run_write_bench(1, 2, blocks=BLOCKS)
        wide = run_write_bench(1, 8, blocks=BLOCKS)
        assert wide.useful_mb_per_s > 1.2 * narrow.useful_mb_per_s

    def test_single_client_raw_roughly_flat(self):
        """Figure 3's 1-client curve: 6.1 -> 6.4 MB/s, nearly flat."""
        rates = [run_write_bench(1, servers, blocks=BLOCKS).raw_mb_per_s
                 for servers in (1, 4, 8)]
        assert max(rates) / min(rates) < 1.35

    def test_single_client_in_paper_band(self):
        result = run_write_bench(1, 2, blocks=10_000)
        assert 5.0 <= result.raw_mb_per_s <= 7.5     # paper: ~6.1
        assert 2.5 <= result.useful_mb_per_s <= 4.0  # paper: 3.0

    def test_multi_client_scales_with_servers(self):
        """Figure 3/4: with 4 clients, more servers = more bandwidth."""
        two = run_write_bench(4, 2, blocks=BLOCKS)
        eight = run_write_bench(4, 8, blocks=BLOCKS)
        assert eight.useful_mb_per_s > 1.3 * two.useful_mb_per_s

    def test_one_server_saturates_below_disk_bound(self):
        """Two clients on one server: the server, not the clients, is
        the bottleneck — near the paper's 7.7 MB/s, under the 10.3
        disk bound."""
        result = run_write_bench(2, 1, blocks=BLOCKS)
        assert 6.0 <= result.raw_mb_per_s <= 10.3

    def test_aggregate_exceeds_single_client(self):
        one = run_write_bench(1, 8, blocks=BLOCKS)
        four = run_write_bench(4, 8, blocks=BLOCKS)
        assert four.raw_mb_per_s > 2 * one.raw_mb_per_s


class TestMabShape:
    def test_sting_beats_ext2_by_paper_factor(self):
        sting = run_mab_on_sting()
        ext2 = run_mab_on_ext2()
        ratio = ext2.elapsed_s / sting.elapsed_s
        assert 1.5 <= ratio <= 2.3   # paper: 1.90

    def test_cpu_utilization_contrast(self):
        sting = run_mab_on_sting()
        ext2 = run_mab_on_ext2()
        assert sting.cpu_utilization > 0.85   # paper: 93 %
        assert ext2.cpu_utilization < 0.70    # paper: 57 %

    def test_absolute_times_near_paper(self):
        sting = run_mab_on_sting()
        ext2 = run_mab_on_ext2()
        assert 7.0 <= sting.elapsed_s <= 12.0   # paper: 9.4
        assert 13.0 <= ext2.elapsed_s <= 22.0   # paper: 17.9

    def test_compile_dominates_both(self):
        sting = run_mab_on_sting()
        assert sting.phase_seconds["compile"] > 0.5 * sting.elapsed_s

    def test_ext2_pays_in_copy_phase(self):
        """The FS-intensive copy phase shows the largest relative gap."""
        sting = run_mab_on_sting()
        ext2 = run_mab_on_ext2()
        assert (ext2.phase_seconds["copy"]
                > 3 * sting.phase_seconds["copy"])


class TestReadShape:
    def test_uncached_reads_much_slower_than_writes(self):
        from repro.bench.figures import run_read_bandwidth

        reads = run_read_bandwidth(blocks=600)
        writes = run_write_bench(1, 2, blocks=BLOCKS)
        assert reads.mb_per_s < 0.5 * writes.useful_mb_per_s
        assert 0.8 <= reads.mb_per_s <= 2.5  # paper: 1.7

    def test_prefetch_ablation_improves_reads(self):
        from repro.bench.ablations import ablate_read_prefetch

        results = ablate_read_prefetch(blocks=400)
        assert results["prefetch"] > 1.4 * results["per_block"]


class TestDisjointGroupsShape:
    def test_contention_vs_parity_tradeoff(self):
        from repro.bench.ablations import ablate_disjoint_groups

        results = ablate_disjoint_groups(blocks=2500)
        assert results["disjoint_raw"] >= 0.9 * results["shared_raw"]
        assert results["disjoint_useful"] < results["shared_useful"]
