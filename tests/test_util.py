"""Unit tests for repro.util: packing, checksums, ids, FID layout."""

import pytest
from hypothesis import given, strategies as st

from repro.util.checksums import crc32_of
from repro.util.fids import FID_NONE, SEQ_MASK, fid_client, fid_seq, make_fid
from repro.util.idgen import IdGenerator
from repro.util.packing import pack_bytes, pack_str, unpack_bytes, unpack_str


class TestPacking:
    def test_bytes_round_trip(self):
        buf = pack_bytes(b"hello")
        value, end = unpack_bytes(buf, 0)
        assert value == b"hello"
        assert end == len(buf)

    def test_empty_bytes(self):
        value, end = unpack_bytes(pack_bytes(b""), 0)
        assert value == b""
        assert end == 4

    def test_str_round_trip_unicode(self):
        buf = pack_str("héllo wörld ✓")
        value, end = unpack_str(buf, 0)
        assert value == "héllo wörld ✓"
        assert end == len(buf)

    def test_offset_parsing(self):
        buf = b"junk" + pack_bytes(b"payload")
        value, end = unpack_bytes(buf, 4)
        assert value == b"payload"
        assert end == len(buf)

    def test_truncated_length_prefix_raises(self):
        with pytest.raises(ValueError):
            unpack_bytes(b"\x00\x00", 0)

    def test_truncated_payload_raises(self):
        buf = pack_bytes(b"abcdef")[:-2]
        with pytest.raises(ValueError):
            unpack_bytes(buf, 0)

    @given(st.binary(max_size=2000), st.binary(max_size=50))
    def test_concatenated_fields_parse_in_order(self, first, second):
        buf = pack_bytes(first) + pack_bytes(second)
        value1, pos = unpack_bytes(buf, 0)
        value2, end = unpack_bytes(buf, pos)
        assert (value1, value2) == (first, second)
        assert end == len(buf)


class TestChecksums:
    def test_crc_matches_zlib(self):
        import zlib

        assert crc32_of(b"swarm") == zlib.crc32(b"swarm") & 0xFFFFFFFF

    def test_chunked_equals_whole(self):
        assert crc32_of(b"ab", b"cd", b"ef") == crc32_of(b"abcdef")

    def test_empty(self):
        assert crc32_of() == 0
        assert crc32_of(b"") == 0

    @given(st.lists(st.binary(max_size=100), max_size=8))
    def test_chunking_invariance(self, chunks):
        assert crc32_of(*chunks) == crc32_of(b"".join(chunks))


class TestIdGenerator:
    def test_monotonic(self):
        gen = IdGenerator()
        assert [gen.next() for _ in range(4)] == [1, 2, 3, 4]

    def test_custom_start(self):
        assert IdGenerator(start=10).next() == 10

    def test_peek_does_not_advance(self):
        gen = IdGenerator()
        assert gen.peek() == 1
        assert gen.next() == 1

    def test_advance_past(self):
        gen = IdGenerator()
        gen.advance_past(100)
        assert gen.next() == 101

    def test_advance_past_smaller_is_noop(self):
        gen = IdGenerator(start=50)
        gen.advance_past(10)
        assert gen.next() == 50


class TestFids:
    def test_round_trip(self):
        fid = make_fid(7, 1234)
        assert fid_client(fid) == 7
        assert fid_seq(fid) == 1234

    def test_fid_none_is_client_zero_seq_zero(self):
        assert fid_client(FID_NONE) == 0
        assert fid_seq(FID_NONE) == 0

    def test_consecutive_seqs_are_consecutive_fids(self):
        assert make_fid(3, 9) + 1 == make_fid(3, 10)

    def test_client_out_of_range(self):
        with pytest.raises(ValueError):
            make_fid(1 << 24, 0)
        with pytest.raises(ValueError):
            make_fid(-1, 0)

    def test_seq_out_of_range(self):
        with pytest.raises(ValueError):
            make_fid(0, SEQ_MASK + 1)

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=SEQ_MASK))
    def test_round_trip_property(self, client, seq):
        fid = make_fid(client, seq)
        assert fid_client(fid) == client
        assert fid_seq(fid) == seq

    @given(st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=(1 << 24) - 1),
           st.integers(min_value=0, max_value=SEQ_MASK),
           st.integers(min_value=0, max_value=SEQ_MASK))
    def test_distinct_clients_never_collide(self, c1, c2, s1, s2):
        if c1 != c2:
            assert make_fid(c1, s1) != make_fid(c2, s2)
