"""Tests for the real network plane (:mod:`repro.rpc.net`).

The framing tests are hermetic (in-memory ``StreamReader``, no
sockets) and run in tier 1. Everything in the ``net``-marked classes
opens real loopback TCP sockets: the same in-process servers hosted
behind asyncio listeners, driven through a :class:`TcpTransport`, with
the existing wrappers (retry, chaos faults, health) layered on top
unchanged. Run them with ``pytest -m net``.
"""

import asyncio
import time

import pytest

from repro import errors
from repro.chaos.plan import FaultPlan
from repro.chaos.runner import generate_ops, run_chaos
from repro.chaos.transport import FaultyTransport
from repro.cluster import build_local_cluster
from repro.health import HealthMonitor
from repro.log.address import make_fid
from repro.log.reader import LogReader
from repro.rpc import messages as m
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.net import (
    FRAME_HEADER,
    InProcessHost,
    TcpTransport,
    frame_parts,
    read_frame,
)
from repro.rpc.retry import RetryPolicy, RetryingTransport
from repro.server.config import ServerConfig
from repro.server.server import StorageServer

SVC = 7
FRAG = 1 << 14


def run_coro(coro):
    return asyncio.run(coro)


class TestFraming:
    """Hermetic frame-layer tests: header + codec image, no sockets."""

    def test_frame_roundtrip(self):
        msg = m.StoreRequest(fid=9, data=b"\xaa" * 5000, principal="c1")
        parts = frame_parts(42, msg)
        wire = b"".join(parts)
        length, request_id = FRAME_HEADER.unpack(wire[:FRAME_HEADER.size])
        assert request_id == 42
        payload = wire[FRAME_HEADER.size:]
        assert length == len(payload)
        assert decode_message(payload) == msg

    def test_header_length_matches_wire_size_without_encoding(self):
        # The framer writes the length prefix from wire_size BEFORE the
        # message is serialized; the two must agree for every message.
        for msg in (m.RetrieveRequest(fid=3, principal="p"),
                    m.Response(value=1, payload=b"zz", text="t"),
                    m.HoldsRequest(fids=(1, 2, 3), principal="q")):
            parts = frame_parts(7, msg)
            (length, _) = FRAME_HEADER.unpack(bytes(parts[0]))
            assert length == len(encode_message(msg))

    def test_read_frame_resolves_stream(self):
        async def scenario():
            reader = asyncio.StreamReader()
            msg = m.Response(value=5, payload=b"ok")
            reader.feed_data(b"".join(frame_parts(11, msg)))
            reader.feed_eof()
            request_id, payload = await read_frame(reader)
            return request_id, decode_message(payload)

        request_id, decoded = run_coro(scenario())
        assert request_id == 11
        assert decoded == m.Response(value=5, payload=b"ok")

    def test_read_frame_interleaved_out_of_order_ids(self):
        async def scenario():
            reader = asyncio.StreamReader()
            for rid, value in ((3, 30), (1, 10), (2, 20)):
                reader.feed_data(
                    b"".join(frame_parts(rid, m.Response(value=value))))
            reader.feed_eof()
            out = []
            for _ in range(3):
                rid, payload = await read_frame(reader)
                out.append((rid, decode_message(payload).value))
            return out

        assert run_coro(scenario()) == [(3, 30), (1, 10), (2, 20)]

    def test_oversized_frame_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(FRAME_HEADER.pack((1 << 28) + 1, 0))
            await read_frame(reader)

        with pytest.raises(errors.BadRequestError):
            run_coro(scenario())

    def test_truncated_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            wire = b"".join(frame_parts(9, m.Response(value=1)))
            reader.feed_data(wire[:-3])
            reader.feed_eof()
            await read_frame(reader)

        with pytest.raises(asyncio.IncompleteReadError):
            run_coro(scenario())


def small_servers(count=4):
    return {"s%d" % i: StorageServer(ServerConfig(
        "s%d" % i, fragment_size=FRAG, total_slots=256))
        for i in range(count)}


@pytest.mark.net
class TestTcpTransport:
    def test_store_retrieve_roundtrip(self):
        with InProcessHost(small_servers(2)) as host:
            with TcpTransport(host.addresses) as tcp:
                tcp.call("s0", m.StoreRequest(fid=5, data=b"swarm-wire"))
                response = tcp.call("s0", m.RetrieveRequest(fid=5))
                assert bytes(response.payload) == b"swarm-wire"

    def test_server_error_crosses_wire_as_exception(self):
        with InProcessHost(small_servers(1)) as host:
            with TcpTransport(host.addresses) as tcp:
                with pytest.raises(errors.FragmentNotFoundError):
                    tcp.call("s0", m.RetrieveRequest(fid=12345))

    def test_unknown_server_is_unavailable(self):
        with InProcessHost(small_servers(1)) as host:
            with TcpTransport(host.addresses) as tcp:
                with pytest.raises(errors.ServerUnavailableError):
                    tcp.call("nope", m.RetrieveRequest(fid=1))

    def test_unreachable_address_is_unavailable(self):
        # A bound-then-closed port: nothing listens there.
        import socket as socketlib
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with TcpTransport({"s0": ("127.0.0.1", port)}) as tcp:
            with pytest.raises(errors.ServerUnavailableError):
                tcp.call("s0", m.RetrieveRequest(fid=1))

    def test_probe_and_broadcast_holds(self):
        with InProcessHost(small_servers(3)) as host:
            with TcpTransport(host.addresses) as tcp:
                for index, fid in enumerate((101, 202, 303)):
                    tcp.call("s%d" % index,
                             m.StoreRequest(fid=fid, data=b"x"))
                tcp.probe("s1")  # raises when unreachable
                found = tcp.broadcast_holds([101, 202, 303, 404])
                assert found == {101: "s0", 202: "s1", 303: "s2"}

    def test_submit_many_results_in_plan_order(self):
        with InProcessHost(small_servers(4)) as host:
            with TcpTransport(host.addresses) as tcp:
                for i in range(4):
                    tcp.call("s%d" % i, m.StoreRequest(
                        fid=1000 + i, data=bytes([i]) * 64))
                plan = [("s%d" % i, m.RetrieveRequest(fid=1000 + i))
                        for i in reversed(range(4))]
                futures = tcp.submit_many(plan)
                assert len(futures) == 4
                for (server_id, request), future in zip(plan, futures):
                    payload = bytes(future.result().payload)
                    assert payload == bytes([request.fid - 1000]) * 64

    def test_submit_many_isolates_per_op_failures(self):
        with InProcessHost(small_servers(2)) as host:
            with TcpTransport(host.addresses) as tcp:
                tcp.call("s0", m.StoreRequest(fid=1, data=b"ok"))
                futures = tcp.submit_many([
                    ("s0", m.RetrieveRequest(fid=1)),
                    ("s1", m.RetrieveRequest(fid=999)),   # not stored
                    ("missing", m.RetrieveRequest(fid=1)),
                ])
                assert bytes(futures[0].result().payload) == b"ok"
                with pytest.raises(errors.FragmentNotFoundError):
                    futures[1].result()
                with pytest.raises(errors.ServerUnavailableError):
                    futures[2].result()

    def test_crashed_server_raises_through_wire(self):
        servers = small_servers(2)
        with InProcessHost(servers) as host:
            with TcpTransport(host.addresses) as tcp:
                tcp.call("s0", m.StoreRequest(fid=1, data=b"x"))
                servers["s0"].crash()
                with pytest.raises(errors.ServerUnavailableError):
                    tcp.call("s0", m.RetrieveRequest(fid=1))
                # The other server is untouched.
                tcp.probe("s1")

    def test_multiplexed_plan_overlaps_serial_calls(self):
        # The real-wire pipelining claim, measured: the same whole-
        # fragment retrieves as one submit_many plan against serial
        # blocking calls, min-of-repeats on both sides. Generous bound —
        # the bench tracks the real ratio (~0.5).
        servers = small_servers(4)
        with InProcessHost(servers) as host:
            with TcpTransport(host.addresses) as tcp:
                plan = []
                for i in range(16):
                    server_id = "s%d" % (i % 4)
                    tcp.call(server_id, m.StoreRequest(
                        fid=2000 + i, data=b"\x5b" * 4096))
                    plan.append((server_id, m.RetrieveRequest(fid=2000 + i)))
                serial_s = batched_s = float("inf")
                for _ in range(5):
                    start = time.perf_counter()
                    for server_id, request in plan:
                        tcp.call(server_id, request)
                    serial_s = min(serial_s, time.perf_counter() - start)
                    start = time.perf_counter()
                    for future in tcp.submit_many(plan):
                        future.result()
                    batched_s = min(batched_s, time.perf_counter() - start)
                assert batched_s < serial_s


@pytest.mark.net
class TestTcpLogLayer:
    def test_log_workload_over_real_sockets(self):
        cluster = build_local_cluster(num_servers=4, fragment_size=FRAG,
                                      server_slots=512)
        host, tcp = cluster.serve_tcp()
        try:
            log = cluster.make_log(client_id=1, transport=tcp)
            payloads = {}
            for block in range(60):
                data = bytes([block % 251]) * (900 + block)
                payloads[block] = (log.write_block(SVC, data), data)
            log.flush().wait()
            for addr, data in payloads.values():
                assert log.read(addr) == data
            # A fresh client over a fresh TCP connection sees the same
            # bytes: durability crossed the wire, not a client cache.
            with TcpTransport(host.addresses) as tcp2:
                fresh = cluster.make_log(client_id=1, transport=tcp2)
                for addr, data in payloads.values():
                    assert fresh.read(addr) == data
        finally:
            tcp.close()
            host.close()

    def test_windowed_reader_over_real_sockets(self):
        cluster = build_local_cluster(num_servers=4, fragment_size=FRAG,
                                      server_slots=512)
        host, tcp = cluster.serve_tcp()
        try:
            log = cluster.make_log(client_id=1, transport=tcp)
            for _ in range(40):
                log.write_block(SVC, b"\x17" * 1024)
            log.flush().wait()
            reader = LogReader(tcp, log.config.principal,
                               locations=log.locations, max_inflight=4)
            fragments = sum(1 for _ in reader.fragments_from(make_fid(1, 1)))
            assert fragments > 0
        finally:
            tcp.close()
            host.close()

    def test_opcounts_identical_to_local_wire(self):
        # The wire is a transport, not a protocol: the same scan bills
        # the same retrieve RPCs and payload bytes on either plane.
        def scan_bill(use_tcp):
            cluster = build_local_cluster(num_servers=4, fragment_size=FRAG,
                                          server_slots=512)
            host = tcp = None
            if use_tcp:
                host, tcp = cluster.serve_tcp()
            transport = tcp if tcp is not None else cluster.transport
            try:
                log = cluster.make_log(client_id=1, transport=transport)
                for _ in range(48):
                    log.write_block(SVC, b"\x42" * 1024)
                log.flush().wait()
                before = [(server.retrieve_ops, server.bytes_retrieved)
                          for _, server in sorted(cluster.servers.items())]
                reader = LogReader(transport, log.config.principal,
                                   locations=log.locations, max_inflight=4)
                for _ in reader.fragments_from(make_fid(1, 1)):
                    pass
                after = [(server.retrieve_ops, server.bytes_retrieved)
                         for _, server in sorted(cluster.servers.items())]
                return [(a[0] - b[0], a[1] - b[1])
                        for a, b in zip(after, before)]
            finally:
                if tcp is not None:
                    tcp.close()
                    host.close()

        assert scan_bill(use_tcp=True) == scan_bill(use_tcp=False)

    def test_retry_layer_rides_the_wire(self):
        # FaultyTransport + RetryingTransport stack over TcpTransport
        # exactly as over LocalTransport; the seeded fault plan drops
        # real frames and the retry layer recovers them.
        cluster = build_local_cluster(num_servers=4, fragment_size=FRAG,
                                      server_slots=512)
        host, tcp = cluster.serve_tcp()
        try:
            plan = FaultPlan(11)
            faulty = FaultyTransport(tcp, plan)
            log = cluster.make_log(client_id=1, transport=faulty,
                                   retry_policy=RetryPolicy(seed=11),
                                   verify_reads=True)
            payloads = {}
            for block in range(30):
                data = bytes([(3 * block) % 251]) * 1200
                payloads[block] = (log.write_block(SVC, data), data)
            log.flush().wait()
            for addr, data in payloads.values():
                assert log.read(addr) == data
            assert plan.history  # the plan actually injected faults
        finally:
            tcp.close()
            host.close()

    def test_retry_sleep_hook_charges_wall_time(self):
        # Over a real wire there is no deferred-time ledger to absorb
        # backoff, so the sleep hook must fire with the policy's delays.
        servers = small_servers(1)
        with InProcessHost(servers) as host:
            with TcpTransport(host.addresses) as tcp:
                slept = []
                retrying = RetryingTransport(
                    tcp, RetryPolicy(max_attempts=3, base_backoff_s=0.004,
                                     max_backoff_s=0.008, seed=3),
                    sleep=slept.append)
                servers["s0"].crash()
                with pytest.raises(errors.ServerUnavailableError):
                    retrying.call("s0", m.RetrieveRequest(fid=1))
                assert len(slept) == 2  # attempts - 1 backoffs
                assert all(delay > 0 for delay in slept)

    def test_health_monitor_sees_wire_exhaustion(self):
        servers = small_servers(2)
        with InProcessHost(servers) as host:
            with TcpTransport(host.addresses) as tcp:
                monitor = HealthMonitor(seed=5)
                retrying = RetryingTransport(
                    tcp, RetryPolicy(max_attempts=2, base_backoff_s=0.001,
                                     max_backoff_s=0.002, seed=5),
                    monitor=monitor, sleep=lambda _s: None)
                servers["s0"].crash()
                for _ in range(4):
                    with pytest.raises(errors.ServerUnavailableError):
                        retrying.call("s0", m.RetrieveRequest(fid=1))
                assert monitor.status("s0") == "dead"
                assert monitor.status("s1") == "healthy"


@pytest.mark.net
class TestChaosOverTcp:
    def test_digest_matches_local_wire(self):
        # The chaos workload's outcome is a pure function of the seed,
        # not of the plane it runs on: same faults, same recovered
        # bytes, same digest over loopback TCP as over direct calls.
        ops = generate_ops(101, n_ops=32, max_blocks=24)
        local = run_chaos(101, ops=ops, wire="local")
        tcp = run_chaos(101, ops=ops, wire="tcp")
        assert local.ok, local.problems
        assert tcp.ok, tcp.problems
        assert local.fault_history == tcp.fault_history
        assert local.state_digest == tcp.state_digest

    def test_tcp_replay_is_deterministic(self):
        ops = generate_ops(202, n_ops=28, max_blocks=24)
        first = run_chaos(202, ops=ops, wire="tcp")
        second = run_chaos(202, ops=ops, wire="tcp")
        assert first.ok and second.ok
        assert first.fault_history == second.fault_history
        assert first.state_digest == second.state_digest
