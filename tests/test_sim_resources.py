"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import Resource, Store


class TestResource:
    def test_mutex_serializes(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        spans = []

        def worker(tag):
            yield resource.request()
            start = sim.now
            yield sim.timeout(2.0)
            resource.release()
            spans.append((tag, start, sim.now))

        for tag in "ab":
            sim.process(worker(tag))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_capacity_allows_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, 2)
        ends = []

        def worker():
            yield resource.request()
            yield sim.timeout(1.0)
            resource.release()
            ends.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        resource = Resource(sim, 1)
        order = []

        def worker(tag):
            yield resource.request()
            order.append(tag)
            yield sim.timeout(1.0)
            resource.release()

        for tag in "abcd":
            sim.process(worker(tag))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_without_request_raises(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            Resource(sim, 1).release()

    def test_use_helper(self):
        sim = Simulator()
        resource = Resource(sim, 1)

        def worker():
            yield sim.process(resource.use(3.0))
            return sim.now

        assert sim.run_process(worker()) == 3.0

    def test_utilization_tracks_busy_time(self):
        sim = Simulator()
        resource = Resource(sim, 1)

        def worker():
            yield sim.process(resource.use(2.0))
            yield sim.timeout(2.0)  # idle
            yield sim.process(resource.use(1.0))

        sim.run_process(worker())
        assert resource.utilization() == pytest.approx(3.0 / 5.0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")

        def getter():
            value = yield store.get()
            return value

        assert sim.run_process(getter()) == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield sim.timeout(4.0)
            store.put("late")

        def consumer():
            value = yield store.get()
            return (value, sim.now)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run()
        assert proc.value == ("late", 4.0)

    def test_fifo_items(self):
        sim = Simulator()
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)

        def consumer():
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert sim.run_process(consumer()) == [1, 2, 3]
        assert len(store) == 0
