"""Tests for the service-stacking framework."""

import pytest

from repro import errors
from repro.log.records import RecordType
from repro.services.base import Service
from repro.services.stack import ServiceStack


class Recorder(Service):
    """A probe layer that logs every interception it sees."""

    def __init__(self, service_id, trace):
        super().__init__(service_id, "probe%d" % service_id)
        self.trace = trace

    def transform_block_down(self, writer_id, data):
        self.trace.append(("down", self.service_id))
        return data + b"|d%d" % self.service_id

    def transform_block_up(self, reader_id, data):
        self.trace.append(("up", self.service_id))
        assert data.endswith(b"|d%d" % self.service_id)
        return data[:-3]


class Writer(Service):
    """A top-level service that owns data."""


@pytest.fixture
def stack(cluster4):
    return cluster4.make_stack(client_id=1)


class TestComposition:
    def test_duplicate_service_id_rejected(self, stack):
        stack.push(Writer(1))
        with pytest.raises(errors.ServiceError):
            stack.push(Writer(1))

    def test_lookup_by_id(self, stack):
        service = stack.push(Writer(4))
        assert stack.service(4) is service
        assert stack.service(5) is None

    def test_transforms_apply_top_down_then_reverse(self, stack):
        trace = []
        stack.push(Recorder(1, trace))
        stack.push(Recorder(2, trace))
        writer = stack.push(Writer(3))
        addr = stack.write_block(writer, b"base")
        # Write path: nearest layer below first (2), then 1.
        assert trace == [("down", 2), ("down", 1)]
        trace.clear()
        assert stack.read_block(writer, addr) == b"base"
        # Read path: undo bottom-up (1 then 2).
        assert trace == [("up", 1), ("up", 2)]

    def test_stored_bytes_are_transformed(self, stack):
        trace = []
        stack.push(Recorder(1, trace))
        writer = stack.push(Writer(2))
        addr = stack.write_block(writer, b"base")
        raw = stack.log.read(addr)
        assert raw == b"base|d1"

    def test_layers_below_writer_only(self, stack):
        trace = []
        writer = stack.push(Writer(1))          # bottom
        stack.push(Recorder(2, trace))          # above the writer
        stack.write_block(writer, b"x")
        assert trace == []  # layers above never see the write


class TestRecordsThroughStack:
    def test_record_transform_chain(self, stack):
        class Tagger(Service):
            def transform_record_down(self, writer_id, rtype, payload):
                return rtype, b"T" + payload

        stack.push(Tagger(1))
        writer = stack.push(Writer(2))
        record = stack.write_record(writer, RecordType.USER_BASE, b"body")
        assert record.payload == b"Tbody"

    def test_create_info_transform_chain(self, stack):
        class InfoTagger(Service):
            def transform_create_info_down(self, writer_id, info):
                return b"I" + info

        stack.push(InfoTagger(1))
        writer = stack.push(Writer(2))
        stack.write_block(writer, b"data", create_info=b"orig")
        stack.flush().wait()
        from repro.log.recovery import recover_service_state
        from repro.log.records import decode_record_payload_block

        recovered = recover_service_state(stack.log.transport, 1, 2)
        create = [r for r in recovered.records
                  if r.rtype == RecordType.CREATE][0]
        _addr, _owner, info = decode_record_payload_block(create.payload)
        assert info == b"Iorig"


class TestCacheHooks:
    def test_cache_layer_consulted_before_network(self, stack, cluster4):
        from repro.services.cache import CacheService

        cache = stack.push(CacheService(1, capacity_bytes=1 << 20))
        writer = stack.push(Writer(2))
        addr = stack.write_block(writer, b"cache-me")
        stack.flush().wait()
        stack.read_block(writer, addr)   # miss populates
        for server in cluster4.servers.values():
            server.crash()
        # Hit must be served with every server down.
        assert stack.read_block(writer, addr) == b"cache-me"

    def test_delete_invalidates_cache(self, stack):
        from repro.services.cache import CacheService

        cache = stack.push(CacheService(1))
        writer = stack.push(Writer(2))
        addr = stack.write_block(writer, b"bye")
        stack.read_block(writer, addr)
        stack.delete_block(writer, addr)
        assert cache.cache_lookup(addr) is None


class TestMoveNotifications:
    def test_routed_to_owner_only(self, stack):
        moves = []

        class Owner(Service):
            def on_block_moved(self, old, new, info):
                moves.append((self.service_id, info))

        stack.push(Owner(1))
        stack.push(Owner(2))
        writer_addr = stack.write_block(stack.service(2), b"x",
                                        create_info=b"meta")
        stack.notify_block_moved(2, writer_addr, writer_addr, b"meta")
        assert moves == [(2, b"meta")]

    def test_unknown_owner_ignored(self, stack):
        from repro.log.address import BlockAddress

        stack.notify_block_moved(99, BlockAddress(1, 0, 1),
                                 BlockAddress(2, 0, 1), b"")


class TestCheckpointAll:
    def test_every_service_checkpointed(self, stack, cluster4):
        class Stateful(Service):
            def checkpoint_state(self):
                return b"state-%d" % self.service_id

        stack.push(Stateful(1))
        stack.push(Stateful(2))
        stack.checkpoint_all()
        from repro.log.recovery import recover_service_state

        for service_id in (1, 2):
            recovered = recover_service_state(cluster4.transport, 1,
                                              service_id)
            assert recovered.checkpoint_state == b"state-%d" % service_id
