"""Tests for the pipelined write path.

Covers the four tentpole behaviors: scattered stripe stores
(``submit_many`` plans), incremental parity (stored parity must equal
the one-shot oracle), the bounded write-behind window, and group
commit of small records — plus the late-failure accounting that rides
the flush ticket.
"""

import pytest

from repro import errors
from repro.log.config import LogConfig
from repro.log.fragment import Fragment, HEADER_SIZE
from repro.log.layer import LogLayer
from repro.log.reader import LogReader
from repro.log.records import RecordType
from repro.log.stripe import StripeGroup, parity_of
from repro.util.fids import make_fid

SVC = 7
FRAG = 1 << 16


def stored_fragments(cluster):
    """All stored images across the cluster, decoded, keyed by fid."""
    out = {}
    for server in cluster.servers.values():
        for fid in server.list_fids():
            image = bytes(server.retrieve(fid))
            out[fid] = (Fragment.decode(image), image)
    return out


def assert_stored_parity_matches_oracle(cluster):
    """For every parity-bearing stripe on the servers, the parity
    member's payload must equal the XOR of its data members' images."""
    by_fid = stored_fragments(cluster)
    stripes = {}
    for fid, (fragment, image) in by_fid.items():
        stripes.setdefault(fragment.header.stripe_base_fid, []).append(
            (fid, fragment, image))
    checked = 0
    for base, members in stripes.items():
        members.sort()
        parity = [(f, img) for _fid, f, img in members if f.header.is_parity]
        if not parity:
            continue
        data_images = [img for _fid, f, img in members
                       if not f.header.is_parity]
        assert len(parity) == 1
        want = parity_of(data_images)
        assert parity[0][1][HEADER_SIZE:] == want
        checked += 1
    return checked


class TestIncrementalParity:
    def test_stored_parity_matches_oracle_across_stripes(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(10):
            log.write_block(SVC, bytes([i + 1]) * 30000)
        log.write_block(SVC, b"tail")  # partial tail stripe
        log.flush().wait()
        assert log.stripes_written >= 2
        assert assert_stored_parity_matches_oracle(cluster4) >= 2

    def test_parity_correct_with_records_mixed_in(self, cluster4):
        log = cluster4.make_log(client_id=1)
        for i in range(8):
            log.write_block(SVC, bytes([i + 1]) * 30000)
            log.write_record(SVC, RecordType.USER_BASE, b"r" * (i + 1))
        log.flush().wait()
        assert assert_stored_parity_matches_oracle(cluster4) >= 1

    def test_single_server_group_skips_parity(self, cluster4):
        log = LogLayer(cluster4.transport, StripeGroup(("s0",)),
                       LogConfig(client_id=2, fragment_size=FRAG))
        addr = log.write_block(SVC, b"solo" * 2000)
        log.flush().wait()
        assert log.read(addr) == b"solo" * 2000

    def test_parity_correct_after_mid_stripe_reform(self, cluster4):
        log = cluster4.make_log(client_id=1)
        addrs = [log.write_block(SVC, b"a" * 30000)]
        log.reform_group(StripeGroup(("s1", "s2", "s3")))
        for _ in range(6):
            addrs.append(log.write_block(SVC, b"b" * 30000))
        log.flush().wait()
        for addr in addrs:
            assert log.read(addr)
        assert assert_stored_parity_matches_oracle(cluster4) >= 1

    def test_xor_cost_accounting_is_byte_exact(self, cluster4):
        """The incremental accumulator must charge exactly what the
        one-shot XOR charged: the sum of the data images' lengths."""
        costs = {}
        log = LogLayer(cluster4.transport, cluster4.stripe_group(),
                       LogConfig(client_id=1, fragment_size=FRAG),
                       cost_hook=lambda k, n: costs.__setitem__(
                           k, costs.get(k, 0) + n))
        for i in range(10):
            log.write_block(SVC, bytes([i + 1]) * 30000)
        log.flush().wait()
        data_bytes = sum(
            len(image) for _f, (frag, image) in stored_fragments(cluster4).items()
            if not frag.header.is_parity)
        assert costs["xor"] == data_bytes


# ----------------------------------------------------------------------
# A manual transport: futures resolve only when the test says so, which
# is the only way to watch the write-behind window from outside a
# simulator.
# ----------------------------------------------------------------------


class ManualFuture:
    def __init__(self, sim):
        self.sim = sim
        self.triggered = False
        self.value = None
        self.exception = None

    @property
    def ok(self):
        return self.triggered and self.exception is None

    def add_callback(self, callback):
        pass

    def resolve(self, value=None, exception=None):
        self.triggered = True
        self.value = value
        self.exception = exception


class ManualSim:
    """Just enough simulator for ``gather`` to drive: ``run`` resolves
    everything queued."""

    _running = False

    def __init__(self):
        self.queue = []
        self.runs = 0

    def run(self):
        self.runs += 1
        for future in self.queue:
            if not future.triggered:
                future.resolve(value=None)
        self.queue.clear()


class ManualTransport:
    submit_is_synchronous = False

    def __init__(self, gatherable=True):
        self.sim = ManualSim() if gatherable else None
        self.plans = []
        self.futures = []
        self.prior_all_resolved_at_dispatch = []

    def submit(self, server_id, request):
        future = ManualFuture(self.sim)
        if self.sim is not None:
            self.sim.queue.append(future)
        self.futures.append(future)
        return future

    def submit_many(self, plan):
        plan = list(plan)
        self.prior_all_resolved_at_dispatch.append(
            all(f.triggered for f in self.futures))
        self.plans.append(plan)
        return [self.submit(server_id, request)
                for server_id, request in plan]

    def call(self, server_id, request):
        raise NotImplementedError


def manual_log(transport, **overrides):
    config = dict(client_id=1, fragment_size=1 << 12)
    config.update(overrides)
    return LogLayer(transport, StripeGroup(("s0", "s1", "s2", "s3")),
                    LogConfig(**config))


def fill_stripes(log, stripes):
    """Append blocks until exactly ``stripes`` stripes have closed."""
    while log.stripes_written < stripes:
        log.write_block(SVC, b"w" * (1 << 11))


class TestWriteBehindWindow:
    def test_stores_travel_as_one_plan_per_stripe(self):
        transport = ManualTransport()
        log = manual_log(transport)
        fill_stripes(log, 2)
        assert len(transport.plans) == 2
        assert all(len(plan) == 4 for plan in transport.plans)

    def test_pipeline_stores_off_submits_individually(self):
        transport = ManualTransport()
        log = manual_log(transport, pipeline_stores=False)
        fill_stripes(log, 2)
        assert transport.plans == []
        assert len(transport.futures) == 8

    def test_window_bounds_inflight_stripes(self):
        transport = ManualTransport()
        log = manual_log(transport, max_inflight_stripes=2)
        fill_stripes(log, 5)
        assert log.inflight_stripes() <= 2
        assert transport.sim.runs >= 1

    def test_window_one_restores_store_barrier(self):
        """With a window of one, every stripe's stores must be resolved
        before the next stripe's plan is dispatched."""
        transport = ManualTransport()
        log = manual_log(transport, max_inflight_stripes=1)
        fill_stripes(log, 4)
        assert transport.prior_all_resolved_at_dispatch == [True] * 4

    def test_window_two_dispatches_ahead(self):
        """A window of two admits an unresolved predecessor stripe."""
        transport = ManualTransport()
        log = manual_log(transport, max_inflight_stripes=2)
        fill_stripes(log, 4)
        assert False in transport.prior_all_resolved_at_dispatch

    def test_window_is_advisory_when_it_cannot_block(self):
        """No simulator to drive (the in-sim case): the layer must not
        deadlock; the window is enforced by the driver instead."""
        transport = ManualTransport(gatherable=False)
        log = manual_log(transport, max_inflight_stripes=1)
        fill_stripes(log, 3)
        assert log.inflight_stripes() == 3
        oldest = log.oldest_inflight_events()
        assert oldest and all(not e.triggered for e in oldest)
        for future in transport.futures:
            future.resolve(value=None)
        assert log.inflight_stripes() == 0
        assert log.oldest_inflight_events() == []

    def test_flush_ticket_covers_all_inflight_stripes(self):
        transport = ManualTransport(gatherable=False)
        log = manual_log(transport, max_inflight_stripes=4)
        fill_stripes(log, 3)
        ticket = log.flush()
        assert ticket.fragment_count == len(transport.futures)


class TestGroupCommit:
    def make_log(self, cluster4, threshold=512):
        return LogLayer(cluster4.transport, cluster4.stripe_group(),
                        LogConfig(client_id=1, fragment_size=FRAG,
                                  group_commit_bytes=threshold))

    def test_small_records_coalesce_until_threshold(self, cluster4):
        log = self.make_log(cluster4, threshold=512)
        for _ in range(4):
            log.write_record(SVC, RecordType.USER_BASE, b"x" * 32)
        assert log.buffered_records() == 4
        for _ in range(8):
            log.write_record(SVC, RecordType.USER_BASE, b"x" * 32)
        assert log.buffered_records() < 12
        assert log.group_commit_batches == 1
        assert log.records_coalesced >= 8

    def test_block_append_drains_buffer_first(self, cluster4):
        log = self.make_log(cluster4)
        log.write_record(SVC, RecordType.USER_BASE, b"small")
        assert log.buffered_records() == 1
        log.write_block(SVC, b"block")
        assert log.buffered_records() == 0

    def test_flush_drains_buffer(self, cluster4):
        log = self.make_log(cluster4)
        record = log.write_record(SVC, RecordType.USER_BASE, b"buffered")
        ticket = log.flush()
        ticket.wait()
        assert log.buffered_records() == 0
        reader = LogReader(cluster4.transport, "client-1")
        stored = [r for r in reader.records_from(make_fid(1, 1))
                  if r.rtype == RecordType.USER_BASE]
        assert [r.lsn for r in stored] == [record.lsn]

    def test_large_record_bypasses_buffer(self, cluster4):
        log = self.make_log(cluster4, threshold=64)
        log.write_record(SVC, RecordType.USER_BASE, b"y" * 100)
        assert log.buffered_records() == 0

    def test_zero_threshold_disables_group_commit(self, cluster4):
        log = self.make_log(cluster4, threshold=0)
        log.write_record(SVC, RecordType.USER_BASE, b"z")
        assert log.buffered_records() == 0
        assert log.group_commit_batches == 0

    def test_log_stays_in_lsn_order_on_disk(self, cluster4):
        """Coalescing must never reorder the physical log: records and
        blocks interleaved in any pattern land in strict LSN order."""
        log = self.make_log(cluster4, threshold=256)
        lsns = []
        for i in range(6):
            lsns.append(log.write_record(SVC, RecordType.USER_BASE,
                                         bytes([i])).lsn)
            if i % 2:
                log.write_block(SVC, b"b" * 5000)
        log.flush().wait()
        reader = LogReader(cluster4.transport, "client-1")
        stored = [r.lsn for r in reader.records_from(make_fid(1, 1))]
        assert stored == sorted(stored)
        assert [l for l in stored if l in lsns] == lsns

    def test_lsns_assigned_at_write_time(self, cluster4):
        log = self.make_log(cluster4)
        first = log.write_record(SVC, RecordType.USER_BASE, b"a")
        second = log.write_record(SVC, RecordType.USER_BASE, b"b")
        assert second.lsn == first.lsn + 1


class TestLateFailureAccounting:
    """Store failures that only surface when the futures resolve must
    land in the layer's failure counters (and the failure detector),
    not vanish."""

    def run_one_failing_stripe(self, monitor=None):
        transport = ManualTransport(gatherable=False)
        log = manual_log(transport, max_inflight_stripes=8)
        if monitor is not None:
            log.monitor = monitor
        fill_stripes(log, 1)
        ticket = log.flush()
        bad_server, _request = transport.plans[0][1]
        for i, future in enumerate(transport.futures):
            if i == 1:
                future.resolve(exception=errors.ServerUnavailableError("down"))
            else:
                future.resolve(value=None)
        return log, ticket, bad_server

    def test_ticket_failures_feed_counters(self):
        log, ticket, bad_server = self.run_one_failing_stripe()
        assert log.failures() == {}  # not yet observed
        failures = ticket.failures()
        assert len(failures) == 1
        assert log.failures()[bad_server]["stores"] == 1

    def test_failures_counted_exactly_once(self):
        log, ticket, bad_server = self.run_one_failing_stripe()
        ticket.failures()
        ticket.failures()
        with pytest.raises(errors.ServerUnavailableError):
            ticket.wait()
        assert log.failures()[bad_server]["stores"] == 1

    def test_wait_observes_before_raising(self):
        log, ticket, bad_server = self.run_one_failing_stripe()
        with pytest.raises(errors.ServerUnavailableError):
            ticket.wait()
        assert log.failures()[bad_server]["stores"] == 1

    def test_monitor_fed_on_late_failure(self):
        observed = []

        class FakeMonitor:
            def observe(self, server_id, ok):
                observed.append((server_id, ok))

        log, ticket, bad_server = self.run_one_failing_stripe(FakeMonitor())
        ticket.failures()
        assert observed == [(bad_server, False)]

    def test_clean_stripe_counts_nothing(self):
        transport = ManualTransport(gatherable=False)
        log = manual_log(transport, max_inflight_stripes=8)
        fill_stripes(log, 1)
        ticket = log.flush()
        for future in transport.futures:
            future.resolve(value=None)
        ticket.wait()
        assert ticket.failures() == []
        assert log.failures() == {}
