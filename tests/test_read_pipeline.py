"""Windowed read pipeline: bounded read-ahead, batched multi-range
retrieves, and the cleaner's pipelined harvest.

Covers the read-side pipelining contract end to end:

* the reader's bounded in-flight window — identical record streams at
  any window depth, degraded fragments mid-window falling back to
  parity, abandoned prefetches still accounted (placement eviction,
  health-monitor fold-in) and never masking programming errors;
* ``LogLayer.read_ranges`` — one ``MultiRetrieveRequest`` per server,
  builder-served unflushed ranges, per-range reconstruction fallback,
  ``None`` for genuinely missing fragments;
* ``LogicalDiskService.read_many`` — the scattered-small-read path;
* retry re-scatter of multi-range retrieves — only the dropped
  operations are retried, per seed;
* the cleaner's batched harvest — one flush fence per batch, and an
  unreadable stripe skipped rather than deleted;
* the acceptance bound: on the simulated testbed a windowed sequential
  scan beats the serial one (overlap ratio below 1.0).

Seeds come from ``CHAOS_SEEDS`` (comma-separated), matching the chaos
property suite.
"""

import os
import struct
from collections import OrderedDict

import pytest

from repro import errors
from repro.bench.perf import bench_read_pipeline
from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.transport import FaultyTransport
from repro.cluster import build_local_cluster
from repro.log.config import LogConfig
from repro.log.fragment import HEADER_SIZE
from repro.log.reader import LogReader
from repro.rpc import messages as m
from repro.rpc.retry import RetryPolicy, RetryingTransport
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService
from repro.util.fids import make_fid

SEEDS = [int(s) for s in
         os.environ.get("CHAOS_SEEDS", "101,202,303").split(",") if s.strip()]

DROP_ALL_SPEC = FaultSpec(drop_request=1.0, drop_response=0.0, delay=0.0,
                          duplicate=0.0, torn_store=0.0, bit_flip=0.0)


def _cluster(num_servers=4, fragment_size=1 << 12):
    """Small fragments so a modest workload spans several stripes."""
    return build_local_cluster(num_servers=num_servers,
                               fragment_size=fragment_size,
                               server_slots=512)


def _seeded_log(cluster, blocks=30, block_size=1500):
    """A flushed log whose blocks span multiple stripes."""
    log = cluster.make_log(client_id=1)
    written = []
    for i in range(blocks):
        data = bytes([(i * 7 + 3) % 256]) * (block_size + 11 * (i % 5))
        addr = log.write_block(2, data, struct.pack(">I", i))
        written.append((addr, data))
    log.flush().wait()
    return log, written


def _reader(cluster, log, **kwargs):
    """A fresh reader (own placement cache) over the cluster."""
    return LogReader(cluster.transport, log.config.principal, **kwargs)


def _record_stream(reader):
    return [(r.lsn, bytes(r.payload)) for r in
            reader.records_from(make_fid(1, 1))]


def _retrieve_ops(cluster):
    return sum(server.retrieve_ops for server in cluster.servers.values())


class _FakeFuture:
    """A pre-triggered completion with a chosen outcome."""

    def __init__(self, exception=None, value=None):
        self.triggered = True
        self.exception = exception
        self.value = value
        self.ok = exception is None


class _RecordingMonitor:
    def __init__(self):
        self.observations = []

    def observe(self, server_id, ok):
        self.observations.append((server_id, ok))


def _churn_stack(cluster, rounds=6, files=40, threshold=0.95, cold=8):
    """Overwrite the same blocks repeatedly so early stripes die.

    A handful of ``cold`` blocks written first and never overwritten
    keep the earliest stripes *partially* live — the batch-harvest
    tests need eligible stripes with blocks to move, not just pure
    garbage.
    """
    stack = cluster.make_stack(client_id=1)
    cleaner = stack.push(CleanerService(1, utilization_threshold=threshold))
    disk = stack.push(LogicalDiskService(2))
    contents = {}
    for i in range(cold):
        data = bytes([201 + i % 5]) * (3000 + 97 * i)
        disk.write(1000 + i, data)
        contents[1000 + i] = data
    for round_no in range(rounds):
        for block in range(files):
            data = bytes([round_no * 17 + block % 7]) * (2000 + 41 * block)
            disk.write(block, data)
            contents[block] = data
    return stack, cleaner, disk, contents


# ----------------------------------------------------------------------
# The bounded read-ahead window
# ----------------------------------------------------------------------

class TestReadWindow:
    def test_zero_window_is_a_config_error(self, cluster4):
        with pytest.raises(errors.ConfigError):
            LogReader(cluster4.transport, max_inflight=0)
        with pytest.raises(errors.ConfigError):
            LogConfig(client_id=1, fragment_size=1 << 16,
                      max_inflight_reads=0)

    def test_windowed_scan_matches_serial(self):
        cluster = _cluster()
        log, _written = _seeded_log(cluster)
        serial = _record_stream(_reader(cluster, log, max_inflight=1))
        assert serial, "workload produced no records"
        for window in (2, 4, 16):
            windowed = _record_stream(
                _reader(cluster, log, max_inflight=window))
            assert windowed == serial, "window=%d diverged" % window

    def test_windowed_fragments_arrive_in_fid_order(self):
        cluster = _cluster()
        log, _written = _seeded_log(cluster)
        reader = _reader(cluster, log, max_inflight=4)
        fids = [f.header.fid for f in reader.fragments_from(make_fid(1, 1))]
        assert fids == list(range(make_fid(1, 1), make_fid(1, 1) + len(fids)))
        assert len(fids) >= 8, "workload should span several stripes"

    def test_degraded_fragment_mid_window_recovers_via_parity(self):
        cluster = _cluster()
        log, _written = _seeded_log(cluster)
        expected = _record_stream(_reader(cluster, log, max_inflight=1))
        victim = sorted(cluster.servers)[1]
        cluster.servers[victim].crash()
        monitor = _RecordingMonitor()
        reader = _reader(cluster, log, max_inflight=4, monitor=monitor)
        assert _record_stream(reader) == expected
        # The victim's prefetches failed, were counted, evicted their
        # placements, and fed the failure detector as transient.
        assert reader.prefetch_failures.get(victim, 0) >= 1
        assert set(reader.prefetch_failures) == {victim}
        assert (victim, False) in monitor.observations
        assert all(server_id == victim
                   for server_id, _ok in monitor.observations)

    def test_abandoned_window_still_accounts_failures(self):
        cluster = _cluster()
        log, _written = _seeded_log(cluster)
        # Crash the server holding the *second* fragment: the first
        # read succeeds and fills the window, and the in-flight
        # prefetch for fid 2 is the one the early exit abandons.
        victim = log.locations.get(make_fid(1, 1) + 1)
        cluster.servers[victim].crash()
        reader = _reader(cluster, log, max_inflight=4)
        stream = reader.fragments_from(make_fid(1, 1))
        next(stream)
        stream.close()
        assert reader.prefetch_failures.get(victim, 0) >= 1

    def test_abandoned_window_reraises_programming_errors(self, cluster4):
        reader = LogReader(cluster4.transport)
        pending = OrderedDict()
        pending[7] = ("s0", _FakeFuture(exception=ValueError("boom")))
        with pytest.raises(ValueError):
            reader._abandon_window(pending)
        assert not pending

    def test_abandoned_swarm_failures_feed_the_accounting(self, cluster4):
        monitor = _RecordingMonitor()
        reader = LogReader(cluster4.transport, monitor=monitor)
        pending = OrderedDict()
        pending[7] = ("s2", _FakeFuture(
            exception=errors.ServerUnavailableError("down")))
        pending[8] = ("s3", _FakeFuture(value=object()))  # consumed later: kept
        reader._abandon_window(pending)
        assert reader.prefetch_failures == {"s2": 1}
        assert monitor.observations == [("s2", False)]
        assert not pending


# ----------------------------------------------------------------------
# Batched multi-range reads
# ----------------------------------------------------------------------

class TestReadRanges:
    def test_matches_single_range_reads(self):
        cluster = _cluster()
        log, written = _seeded_log(cluster)
        ranges = [(addr.fid, addr.offset, addr.length)
                  for addr, _data in written]
        batched = log.read_ranges(ranges)
        assert batched == [data for _addr, data in written]
        assert batched == [log.read_range(*r) for r in ranges]

    def test_one_multi_retrieve_per_server(self):
        cluster = _cluster()
        log, written = _seeded_log(cluster)
        ranges = [(addr.fid, addr.offset, addr.length)
                  for addr, _data in written]
        before = _retrieve_ops(cluster)
        log.read_ranges(ranges)
        delta = _retrieve_ops(cluster) - before
        assert 1 <= delta <= len(cluster.servers), (
            "%d ranges cost %d retrieve RPCs; batching should cap the "
            "cost at the stripe width" % (len(ranges), delta))

    def test_unflushed_ranges_come_from_the_builders(self):
        cluster = _cluster()
        log = cluster.make_log(client_id=1)
        data = b"\x5a" * 500
        addr = log.write_block(2, data)
        before = _retrieve_ops(cluster)
        assert log.read_ranges([(addr.fid, addr.offset, addr.length)]) == \
            [data]
        assert _retrieve_ops(cluster) == before

    def test_degraded_ranges_fall_back_per_range(self):
        cluster = _cluster()
        log, written = _seeded_log(cluster)
        victim = sorted(cluster.servers)[1]
        cluster.servers[victim].crash()
        ranges = [(addr.fid, addr.offset, addr.length)
                  for addr, _data in written]
        assert log.read_ranges(ranges) == [data for _addr, data in written]

    def test_missing_fragment_yields_none(self):
        cluster = _cluster()
        log, written = _seeded_log(cluster)
        addr = written[0][0]
        results = log.read_ranges([
            (addr.fid, addr.offset, addr.length),
            (make_fid(1, 4000), 0, 8),
        ])
        assert results == [written[0][1], None]


class TestLogicalDiskReadMany:
    def test_matches_single_reads_and_batches(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        disk = stack.push(LogicalDiskService(2))
        contents = {}
        for block in range(24):
            data = bytes([block % 13 + 1]) * (1200 + 31 * block)
            disk.write(block, data)
            contents[block] = data
        stack.flush().wait()
        before = _retrieve_ops(cluster4)
        batch = disk.read_many(list(range(24)))
        delta = _retrieve_ops(cluster4) - before
        assert batch == [contents[block] for block in range(24)]
        assert delta <= len(cluster4.servers)
        assert batch == [disk.read(block) for block in range(24)]

    def test_unwritten_block_raises(self, cluster4):
        stack = cluster4.make_stack(client_id=1)
        disk = stack.push(LogicalDiskService(2))
        disk.write(0, b"present")
        stack.flush().wait()
        with pytest.raises(errors.ServiceError):
            disk.read_many([0, 99])


# ----------------------------------------------------------------------
# Double-erasure degraded reads (m = 2 Reed–Solomon stripes)
# ----------------------------------------------------------------------

def _seeded_rs_log(cluster, blocks=30, block_size=1500):
    """A flushed m=2 Reed–Solomon log spanning multiple stripes."""
    log = cluster.make_log(client_id=1, parity_fragments=2, coding="rs")
    written = []
    for i in range(blocks):
        data = bytes([(i * 7 + 3) % 256]) * (block_size + 11 * (i % 5))
        addr = log.write_block(2, data, struct.pack(">I", i))
        written.append((addr, data))
    log.flush().wait()
    return log, written


class TestDoubleErasureReads:
    def test_windowed_scan_with_two_erasures_matches_healthy(self):
        """Two dead servers mid-window: same records as a healthy scan."""
        cluster = _cluster(num_servers=5)
        log, _written = _seeded_rs_log(cluster)
        healthy = _record_stream(_reader(cluster, log, max_inflight=1))
        assert healthy, "workload produced no records"
        for victim in ("s1", "s3"):
            cluster.servers[victim].crash()
        monitor = _RecordingMonitor()
        reader = _reader(cluster, log, max_inflight=4, monitor=monitor)
        assert _record_stream(reader) == healthy
        # Both victims' prefetches failed and were accounted; nothing
        # was blamed on the survivors.
        assert set(reader.prefetch_failures) <= {"s1", "s3"}
        assert reader.prefetch_failures, "no degraded prefetch was seen"
        assert all(server_id in ("s1", "s3")
                   for server_id, _ok in monitor.observations)

    def test_read_ranges_falls_back_per_range_with_two_erasures(self):
        cluster = _cluster(num_servers=5)
        log, written = _seeded_rs_log(cluster)
        for victim in ("s1", "s3"):
            cluster.servers[victim].crash()
        ranges = [(addr.fid, addr.offset, addr.length)
                  for addr, _data in written]
        assert log.read_ranges(ranges) == [data for _addr, data in written]

    def test_three_erasures_at_m2_are_unrecoverable(self):
        cluster = _cluster(num_servers=5)
        log, written = _seeded_rs_log(cluster)
        for victim in ("s1", "s2", "s3"):
            cluster.servers[victim].crash()
            log.locations.evict_server(victim)
        with pytest.raises(errors.UnrecoverableError):
            for addr, _data in written:
                log.read(addr)


# ----------------------------------------------------------------------
# Retry re-scatter of multi-range retrieves
# ----------------------------------------------------------------------

class TestMultiRetrieveRetry:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_only_dropped_batches_are_rescattered(self, seed):
        cluster = _cluster()
        log, written = _seeded_log(cluster)
        by_server = {}
        for addr, _data in written:
            server_id = log.locations.get(addr.fid)
            assert server_id is not None
            by_server.setdefault(server_id, []).append(
                (addr.fid, addr.offset, addr.length))
        plan = [(server_id, m.MultiRetrieveRequest(
            ranges=tuple(ranges), principal=log.config.principal))
            for server_id, ranges in sorted(by_server.items())]
        faulty = FaultyTransport(cluster.transport,
                                 FaultPlan(seed, DROP_ALL_SPEC))
        retrying = RetryingTransport(faulty, RetryPolicy(
            max_attempts=6, jitter=0.0, seed=seed))
        victim = faulty.plan.current_victim
        futures = retrying.submit_many(plan)
        assert all(f.ok for f in futures), \
            "seed=%d: retried multi-retrieve scatter left failures" % seed
        for (server_id, request), future in zip(plan, futures):
            expected = b"".join(
                data for addr, data in written
                if (addr.fid, addr.offset, addr.length) in request.ranges)
            assert bytes(future.value.payload) == expected
            assert future.value.value == len(request.ranges)
        # Only the victim's batch burned retries; the healthy batches
        # were not re-sent (the re-scatter is per failed operation).
        assert retrying.retries > 0
        assert retrying.exhausted == 0
        for server_id, stats in retrying.per_server.items():
            if server_id != victim:
                assert stats["retries"] == 0, \
                    "seed=%d: healthy server %s was re-scattered" \
                    % (seed, server_id)


# ----------------------------------------------------------------------
# The cleaner's pipelined harvest
# ----------------------------------------------------------------------

class TestCleanerPipelinedReads:
    def test_one_flush_fence_per_batch(self, cluster4, monkeypatch):
        stack, cleaner, disk, contents = _churn_stack(cluster4)
        stack.checkpoint_all()
        flushes = []
        real_flush = stack.log.flush

        def counting_flush(*args, **kwargs):
            flushes.append(1)
            return real_flush(*args, **kwargs)

        monkeypatch.setattr(stack.log, "flush", counting_flush)
        moved = cleaner.clean(target_stripes=1 << 20)
        assert moved > 0
        assert cleaner.stripes_cleaned >= 2
        assert len(flushes) == 1, (
            "cleaning %d stripes issued %d flush fences; the batch "
            "should pay exactly one" % (cleaner.stripes_cleaned,
                                        len(flushes)))
        for block, data in contents.items():
            assert disk.read(block) == data

    def test_unreadable_stripe_is_skipped_not_deleted(self, cluster4,
                                                      monkeypatch):
        stack, cleaner, disk, contents = _churn_stack(cluster4)
        stack.checkpoint_all()
        candidates = cleaner.candidate_stripes()
        target = next(c for c in candidates if c.live_bytes > 0)
        doomed = set(range(target.base_fid, target.base_fid + target.width))
        real_read_ranges = stack.log.read_ranges

        def failing_read_ranges(ranges):
            results = real_read_ranges(ranges)
            # Header peeks stay readable so stripe selection is
            # unchanged; only the live-block harvest fails.
            return [None if (fid in doomed and
                             not (offset == 0 and length == HEADER_SIZE))
                    else image
                    for (fid, offset, length), image in zip(ranges, results)]

        monkeypatch.setattr(stack.log, "read_ranges", failing_read_ranges)
        cleaner.clean(target_stripes=len(candidates))
        # The unreadable stripe was neither counted nor deleted...
        assert doomed & set(cleaner._total), \
            "unreadable stripe was forgotten by the cleaner"
        assert cleaner.stripes_cleaned < len(candidates)
        # ...and every live block is still readable.
        monkeypatch.setattr(stack.log, "read_ranges", real_read_ranges)
        for block, data in contents.items():
            assert disk.read(block) == data


# ----------------------------------------------------------------------
# Acceptance: the windowed scan beats the serial one
# ----------------------------------------------------------------------

class TestReadOverlapBound:
    def test_windowed_scan_overlaps_on_the_testbed(self):
        metrics = bench_read_pipeline(fragment_size=1 << 16, stripes=2)
        assert metrics["serial_read_mb_s"] > 0
        assert metrics["sequential_read_mb_s"] > metrics["serial_read_mb_s"]
        assert metrics["overlap_ratio"] < 1.0, (
            "windowed scan cost %.3f× the serial scan; the read-ahead "
            "window should overlap retrieves" % metrics["overlap_ratio"])
