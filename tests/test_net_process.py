"""Real-process network plane: netd children, kill -9, self-healing.

Everything here is marked ``net``: each test spawns actual
``python -m repro.server.netd`` child processes (one OS process per
storage server, each behind its own loopback TCP listener), points a
:class:`TcpTransport` at the printed addresses, and drives the full
client stack over real sockets.

The centerpiece is the kill -9 scenario from the issue: a member dies
by SIGKILL mid-workload, the client's retries exhaust against the
refused connections, the :class:`HealthMonitor` declares the server
dead, the log layer reforms onto the spare, and a *fresh* client over a
*fresh* transport recovers every byte — with the victim still dead.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import errors
from repro.health import HealthMonitor
from repro.log.config import LogConfig
from repro.log.layer import LogLayer
from repro.log.stripe import StripeGroup
from repro.rpc import messages as m
from repro.rpc.net import TcpTransport
from repro.rpc.retry import RetryPolicy

SVC = 3
FRAG = 1 << 12
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

pytestmark = pytest.mark.net


class NetdFleet:
    """Launch one netd child per server id; harvest the READY banners."""

    def __init__(self, server_ids, fragment_size=FRAG, total_slots=512):
        self.procs = {}
        self.addresses = {}
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        try:
            for server_id in server_ids:
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.server.netd",
                     "--server-id", server_id, "--port", "0",
                     "--fragment-size", str(fragment_size),
                     "--total-slots", str(total_slots)],
                    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                    text=True, bufsize=1, env=env, cwd=REPO_ROOT)
                self.procs[server_id] = proc
            for server_id, proc in self.procs.items():
                banner = proc.stdout.readline().split()
                assert banner[:2] == ["NETD", "READY"], banner
                assert banner[2] == server_id
                self.addresses[server_id] = (banner[3], int(banner[4]))
        except BaseException:
            self.close()
            raise

    def kill_dash_9(self, server_id):
        proc = self.procs[server_id]
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

    def close(self):
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TestNetdProcesses:
    def test_store_retrieve_against_child_process(self):
        with NetdFleet(["s0"]) as fleet:
            with TcpTransport(fleet.addresses) as tcp:
                tcp.call("s0", m.StoreRequest(fid=77, data=b"over the wall"))
                got = tcp.call("s0", m.RetrieveRequest(fid=77))
                assert bytes(got.payload) == b"over the wall"

    def test_killed_child_becomes_unavailable(self):
        with NetdFleet(["s0", "s1"]) as fleet:
            with TcpTransport(fleet.addresses) as tcp:
                tcp.call("s0", m.StoreRequest(fid=1, data=b"x"))
                fleet.kill_dash_9("s0")
                with pytest.raises(errors.ServerUnavailableError):
                    tcp.call("s0", m.RetrieveRequest(fid=1))
                tcp.probe("s1")  # the survivor still answers

    def test_kill9_reform_and_fresh_client_recovery(self):
        """The full self-healing loop over real processes.

        s0..s3 form the group, s4 idles as the spare. A workload is
        running when s1 is SIGKILLed; retry exhaustion against the dead
        socket drives the failure detector to "dead", the next flushes
        reform onto s4, and every block — written before or after the
        kill — is readable both by the original client and by a fresh
        client over a fresh transport, with s1 still a corpse.
        """
        victim = "s1"
        with NetdFleet(["s0", "s1", "s2", "s3", "s4"]) as fleet:
            with TcpTransport(fleet.addresses) as tcp:
                monitor = HealthMonitor(seed=7)
                log = LogLayer(
                    tcp, StripeGroup(("s0", "s1", "s2", "s3")),
                    LogConfig(client_id=1, fragment_size=FRAG,
                              spare_servers=("s4",)),
                    retry_policy=RetryPolicy(max_attempts=2,
                                             base_backoff_s=0.001,
                                             max_backoff_s=0.002, seed=7),
                    verify_reads=True, health_monitor=monitor)

                payloads = {}
                block = 0
                for _ in range(6):           # healthy prefix, made durable
                    data = bytes([block % 251 + 1]) * 800
                    payloads[block] = (log.write_block(SVC, data), data)
                    block += 1
                log.flush().wait()

                fleet.kill_dash_9(victim)

                for round_no in range(30):   # degraded rounds until reform
                    for _ in range(3):
                        data = bytes([round_no + 1, block % 251]) * 700
                        payloads[block] = (log.write_block(SVC, data), data)
                        block += 1
                    log.flush().wait(allow_degraded=True)
                    if log.reforms:
                        break
                else:
                    raise AssertionError("no automatic reform after kill -9")

                reform = log.reforms[0]
                assert reform["departed"] == victim
                assert reform["replacement"] == "s4"
                assert monitor.status(victim) == "dead"

                # Post-reform writes land cleanly on the new group.
                for _ in range(6):
                    data = bytes([block % 251 + 2]) * 900
                    payloads[block] = (log.write_block(SVC, data), data)
                    block += 1
                log.flush().wait()

                for addr, data in payloads.values():
                    assert log.read(addr) == data

            # Fresh client, fresh sockets, no warm state — the victim
            # is still dead, so anything it held alone must come back
            # through parity reconstruction.
            with TcpTransport(fleet.addresses) as tcp2:
                fresh = LogLayer(
                    tcp2, StripeGroup(("s0", "s2", "s3", "s4")),
                    LogConfig(client_id=1, fragment_size=FRAG),
                    retry_policy=RetryPolicy(max_attempts=2,
                                             base_backoff_s=0.001,
                                             max_backoff_s=0.002, seed=8),
                    verify_reads=True)
                for addr, data in payloads.values():
                    assert fresh.read(addr) == data

    def test_wall_clock_backoff_actually_sleeps(self):
        """Over a real wire the retry backoff is wall time, not ledger."""
        with NetdFleet(["s0"]) as fleet:
            with TcpTransport(fleet.addresses) as tcp:
                fleet.kill_dash_9("s0")
                log = LogLayer(
                    tcp, StripeGroup(("s0",)),
                    LogConfig(client_id=1, fragment_size=FRAG),
                    retry_policy=RetryPolicy(max_attempts=3,
                                             base_backoff_s=0.02,
                                             max_backoff_s=0.04,
                                             jitter=0.0, seed=1),
                    retry_sleep=time.sleep)
                start = time.perf_counter()
                with pytest.raises(errors.ServerUnavailableError):
                    log.write_block(SVC, b"z" * 100)
                    log.flush().wait()
                elapsed = time.perf_counter() - start
                assert elapsed >= 0.05  # 0.02 + 0.04 backoffs were slept
