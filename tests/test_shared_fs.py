"""Tests for the distributed file service layered on Swarm."""

import pytest

from repro import errors
from repro.services.cleaner import CleanerService
from repro.shared.client import SharedDataService, SharedSwarmClient
from repro.shared.lease import LeaseManager
from repro.shared.manager import FileMap, NamespaceManager


def build_world(cluster, participants=(1, 2, 3), manager_client=1):
    """Manager on one client's stack; every participant gets a client."""
    leases = LeaseManager()
    stacks = {}
    clients = {}
    manager = None
    for client_id in participants:
        stack = cluster.make_stack(client_id)
        stacks[client_id] = stack
        if client_id == manager_client:
            manager = stack.push(NamespaceManager(10))
    for client_id in participants:
        stack = stacks[client_id]
        data = stack.push(SharedDataService(11))
        clients[client_id] = SharedSwarmClient(client_id, stack, data,
                                               manager, leases,
                                               block_size=4096)
    return leases, manager, stacks, clients


@pytest.fixture
def world(cluster4):
    return build_world(cluster4)


class TestNamespace:
    def test_mkdir_visible_to_all(self, world):
        _leases, _manager, _stacks, clients = world
        clients[1].mkdir("/shared")
        assert clients[2].listdir("/") == ["shared"]
        assert clients[3].exists("/shared")

    def test_duplicate_create_rejected(self, world):
        _l, manager, _s, clients = world
        clients[1].write_file("/f", b"x")
        with pytest.raises(errors.FileExistsFsError):
            manager.create("/f")

    def test_unlink_and_rmdir(self, world):
        _l, _m, _s, clients = world
        clients[1].mkdir("/d")
        clients[2].write_file("/d/f", b"bytes")
        with pytest.raises(errors.DirectoryNotEmptyFsError):
            clients[3].rmdir("/d")
        clients[2].unlink("/d/f")
        clients[3].rmdir("/d")
        assert not clients[1].exists("/d")


class TestCrossClientData:
    def test_write_by_one_read_by_all(self, world):
        _l, _m, _s, clients = world
        blob = bytes(range(256)) * 60   # multi-block
        clients[1].write_file("/data.bin", blob)
        assert clients[2].read_file("/data.bin") == blob
        assert clients[3].read_file("/data.bin") == blob
        assert clients[2].remote_block_reads > 0

    def test_overwrite_bumps_version_and_invalidates_caches(self, world):
        _l, _m, _s, clients = world
        clients[1].write_file("/f", b"v1")
        assert clients[2].read_file("/f") == b"v1"
        clients[3].write_file("/f", b"v2-from-client-3")
        assert clients[2].read_file("/f") == b"v2-from-client-3"
        assert clients[2].version("/f") == 2

    def test_cache_hit_on_unchanged_version(self, world):
        _l, _m, _s, clients = world
        clients[1].write_file("/f", b"stable")
        clients[2].read_file("/f")
        hits_before = clients[2].cache_hits
        clients[2].read_file("/f")
        assert clients[2].cache_hits == hits_before + 1

    def test_blocks_live_in_writers_own_log(self, world, cluster4):
        _l, manager, _s, clients = world
        clients[2].write_file("/mine", b"who-wrote-this")
        owners = {ref[0] for ref in manager.file_map("/mine").blocks.values()}
        assert owners == {2}

    def test_reads_survive_server_failure(self, world, cluster4):
        _l, _m, _s, clients = world
        blob = bytes(range(256)) * 100
        clients[1].write_file("/big", blob)
        cluster4.servers["s1"].crash()
        assert clients[3].read_file("/big") == blob

    def test_empty_file(self, world):
        _l, _m, _s, clients = world
        clients[1].write_file("/empty", b"")
        assert clients[2].read_file("/empty") == b""


class TestLeases:
    def test_concurrent_writers_conflict(self, world):
        leases, _m, _s, clients = world
        clients[1].write_file("/f", b"x")
        leases.acquire("/f", "client-2")
        with pytest.raises(errors.ServiceError):
            clients[3].write_file("/f", b"y")
        leases.release("/f", "client-2")
        clients[3].write_file("/f", b"y")  # now fine

    def test_release_by_non_holder_rejected(self):
        leases = LeaseManager()
        leases.acquire("/f", "a")
        with pytest.raises(errors.ServiceError):
            leases.release("/f", "b")

    def test_revoke_crashed_client(self):
        leases = LeaseManager()
        leases.acquire("/f", "a")
        leases.acquire("/g", "a")
        leases.acquire("/h", "b")
        assert leases.revoke_client("a") == 2
        assert leases.holder("/h") == "b"

    def test_reacquire_by_holder_is_fine(self):
        leases = LeaseManager()
        leases.acquire("/f", "a")
        leases.acquire("/f", "a")
        leases.release("/f", "a")
        assert leases.holder("/f") is None


class TestManagerRecovery:
    def test_manager_recovers_from_checkpoint_and_records(self, cluster4):
        leases, manager, stacks, clients = build_world(cluster4)
        clients[1].mkdir("/proj")
        clients[2].write_file("/proj/a", b"alpha-data" * 50)
        stacks[1].checkpoint_all()                 # manager checkpoint
        clients[3].write_file("/proj/b", b"beta-data" * 80)
        stacks[1].flush().wait()                   # records durable

        # Manager host crashes; rebuild it on a fresh stack.
        stack_m = cluster4.make_stack(1)
        manager2 = stack_m.push(NamespaceManager(10))
        data_m = stack_m.push(SharedDataService(11))
        stack_m.recover_all()
        client_m = SharedSwarmClient(1, stack_m, data_m, manager2, leases,
                                     block_size=4096)
        assert sorted(manager2.listdir("/proj")) == ["a", "b"]
        assert client_m.read_file("/proj/a") == b"alpha-data" * 50
        assert client_m.read_file("/proj/b") == b"beta-data" * 80

    def test_unflushed_metadata_lost_but_consistent(self, cluster4):
        leases, manager, stacks, clients = build_world(cluster4)
        clients[2].write_file("/kept", b"kept")
        stacks[1].checkpoint_all()
        # Manager acknowledges an op but crashes before flushing it.
        manager.create("/phantom")
        stack_m = cluster4.make_stack(1)
        manager2 = stack_m.push(NamespaceManager(10))
        stack_m.push(SharedDataService(11))
        stack_m.recover_all()
        assert manager2.exists("/kept")
        assert not manager2.exists("/phantom")


class TestCleanerRepublishing:
    def test_cleaner_move_updates_manager_map(self, cluster4):
        """If the cleaner relocates a published block in the owner's
        log, the owner re-publishes the new address and readers keep
        working."""
        leases = LeaseManager()
        stack1 = cluster4.make_stack(1)
        manager = stack1.push(NamespaceManager(10))
        stack2 = cluster4.make_stack(2)
        cleaner2 = stack2.push(CleanerService(5, utilization_threshold=0.95))
        data2 = stack2.push(SharedDataService(11))
        writer = SharedSwarmClient(2, stack2, data2, manager, leases,
                                   block_size=4096)
        stack1.push(SharedDataService(11))
        # Churn in the writer's log so its stripes become cleanable.
        contents = {}
        for round_no in range(5):
            for index in range(12):
                path = "/f%d" % index
                data = bytes([round_no * 13 + index]) * 5000
                writer.write_file(path, data)
                contents[path] = data
        stack2.checkpoint_all()
        before = dict(manager._files)
        cleaner2.clean(target_stripes=100)
        # Every file still reads correctly through the manager map.
        reader_stack = cluster4.make_stack(3)
        data3 = reader_stack.push(SharedDataService(11))
        reader = SharedSwarmClient(3, reader_stack, data3, manager, leases)
        for path, data in contents.items():
            assert reader.read_file(path) == data
