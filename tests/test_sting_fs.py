"""Functional tests for the Sting file system."""

import pytest

from repro import errors
from repro.services.cleaner import CleanerService
from repro.sting.fs import StingFileSystem


@pytest.fixture
def fs(cluster4):
    stack = cluster4.make_stack(client_id=1)
    filesystem = stack.push(StingFileSystem(3, block_size=4096))
    filesystem.format()
    return filesystem


class TestNamespace:
    def test_format_creates_empty_root(self, fs):
        assert fs.listdir("/") == []
        assert fs.stat("/").is_dir

    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.listdir("/") == ["a"]
        assert fs.listdir("/a") == ["b"]

    def test_mkdir_existing_rejected(self, fs):
        fs.mkdir("/a")
        with pytest.raises(errors.FileExistsFsError):
            fs.mkdir("/a")

    def test_mkdir_missing_parent(self, fs):
        with pytest.raises(errors.FileNotFoundFsError):
            fs.mkdir("/no/such/parent")

    def test_create_and_exists(self, fs):
        fs.create("/f.txt", b"hi")
        assert fs.exists("/f.txt")
        assert not fs.exists("/g.txt")

    def test_create_under_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(errors.NotADirectoryFsError):
            fs.create("/f/child", b"")

    def test_unlink(self, fs):
        fs.create("/f", b"data")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(errors.IsADirectoryFsError):
            fs.unlink("/d")

    def test_rmdir_empty_only(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f", b"")
        with pytest.raises(errors.DirectoryNotEmptyFsError):
            fs.rmdir("/d")
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_on_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(errors.NotADirectoryFsError):
            fs.rmdir("/f")

    def test_root_operations_rejected(self, fs):
        with pytest.raises(errors.FileSystemError):
            fs.unlink("/")
        with pytest.raises(errors.FileSystemError):
            fs.mkdir("/")

    def test_walk(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.create("/a/f1", b"")
        fs.create("/a/b/f2", b"")
        walked = list(fs.walk("/"))
        assert walked[0] == ("/", ["a"], [])
        assert ("/a", ["b"], ["f1"]) in walked
        assert ("/a/b", [], ["f2"]) in walked


class TestRename:
    def test_same_directory(self, fs):
        fs.create("/old", b"x")
        fs.rename("/old", "/new")
        assert fs.exists("/new") and not fs.exists("/old")
        assert fs.read_file("/new") == b"x"

    def test_across_directories(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.create("/src/f", b"move-me")
        fs.rename("/src/f", "/dst/g")
        assert fs.read_file("/dst/g") == b"move-me"
        assert fs.listdir("/src") == []

    def test_overwrites_existing_file(self, fs):
        fs.create("/a", b"new")
        fs.create("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"new"
        assert not fs.exists("/a")

    def test_onto_nonempty_directory_rejected(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x", b"")
        fs.create("/f", b"")
        with pytest.raises(errors.DirectoryNotEmptyFsError):
            fs.rename("/f", "/d")

    def test_directory_rename_moves_subtree(self, fs):
        fs.mkdir("/d")
        fs.create("/d/inner", b"deep")
        fs.rename("/d", "/e")
        assert fs.read_file("/e/inner") == b"deep"

    def test_missing_source(self, fs):
        with pytest.raises(errors.FileNotFoundFsError):
            fs.rename("/ghost", "/x")


class TestFileIo:
    def test_whole_file_round_trip(self, fs):
        fs.write_file("/f", b"contents here")
        assert fs.read_file("/f") == b"contents here"

    def test_multi_block_file(self, fs):
        blob = bytes(range(256)) * 200   # 51,200 B > several 4 KB blocks
        fs.write_file("/big", blob)
        assert fs.read_file("/big") == blob
        assert fs.stat("/big").size == len(blob)

    def test_overwrite_replaces(self, fs):
        fs.write_file("/f", b"version-1-is-long")
        fs.write_file("/f", b"v2")
        assert fs.read_file("/f") == b"v2"

    def test_fd_read_write_seek(self, fs):
        fd = fs.open("/f", create=True)
        fs.write(fd, b"0123456789")
        fs.seek(fd, 2)
        assert fs.read(fd, 4) == b"2345"
        fs.seek(fd, 5)
        fs.write(fd, b"XY")
        fs.close(fd)
        assert fs.read_file("/f") == b"01234XY789"

    def test_append_mode(self, fs):
        fs.write_file("/log", b"start:")
        fd = fs.open("/log", append=True)
        fs.write(fd, b"more")
        fs.close(fd)
        assert fs.read_file("/log") == b"start:more"

    def test_closed_fd_rejected(self, fs):
        fd = fs.open("/f", create=True)
        fs.close(fd)
        with pytest.raises(errors.BadFileDescriptorError):
            fs.read(fd, 1)

    def test_open_missing_without_create(self, fs):
        with pytest.raises(errors.FileNotFoundFsError):
            fs.open("/missing")

    def test_open_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(errors.IsADirectoryFsError):
            fs.open("/d")

    def test_read_past_eof_truncates(self, fs):
        fs.write_file("/f", b"abc")
        fd = fs.open("/f")
        assert fs.read(fd, 100) == b"abc"
        assert fs.read(fd, 100) == b""

    def test_sparse_write_zero_fills(self, fs):
        fd = fs.open("/sparse", create=True)
        fs.seek(fd, 10000)
        fs.write(fd, b"END")
        fs.close(fd)
        data = fs.read_file("/sparse")
        assert len(data) == 10003
        assert data[:10000] == b"\x00" * 10000
        assert data[10000:] == b"END"

    def test_partial_block_overwrite(self, fs):
        fs.write_file("/f", b"A" * 10000)
        fd = fs.open("/f")
        fs.seek(fd, 4000)
        fs.write(fd, b"B" * 200)
        fs.close(fd)
        data = fs.read_file("/f")
        assert data[4000:4200] == b"B" * 200
        assert data[3999:4000] == b"A" and data[4200:4201] == b"A"
        assert len(data) == 10000

    def test_truncate_shrink(self, fs):
        fs.write_file("/f", b"x" * 9000)
        fs.truncate("/f", 5000)
        assert fs.read_file("/f") == b"x" * 5000

    def test_truncate_extend_zero_fills(self, fs):
        fs.write_file("/f", b"ab")
        fs.truncate("/f", 10)
        assert fs.read_file("/f") == b"ab" + b"\x00" * 8

    def test_truncate_to_zero(self, fs):
        fs.write_file("/f", b"full")
        fs.truncate("/f", 0)
        assert fs.read_file("/f") == b""

    def test_empty_file(self, fs):
        fs.create("/empty")
        assert fs.read_file("/empty") == b""
        assert fs.stat("/empty").size == 0


class TestDurability:
    def test_data_reaches_servers_on_sync(self, fs, cluster4):
        fs.write_file("/f", b"durable")
        fs.sync()
        stored = sum(server.bytes_stored
                     for server in cluster4.servers.values())
        assert stored > 0

    def test_reads_after_sync_with_server_down(self, fs, cluster4):
        blob = bytes(range(256)) * 300
        fs.write_file("/big", blob)
        fs.sync()
        cluster4.servers["s1"].crash()
        assert fs.read_file("/big") == blob
