"""Unit tests for the SwarmScript interpreter."""

import pytest

from repro import errors
from repro.server.script import (
    SwarmScriptInterpreter,
    split_commands,
    tokenize_command,
)


@pytest.fixture
def interp(server):
    return SwarmScriptInterpreter(server)


class TestTokenizer:
    def test_plain_words(self):
        assert tokenize_command("store 1 abc") == ["store", "1", "abc"]

    def test_braces_group(self):
        assert tokenize_command("foreach x {1 2 3} {puts $x}") == \
            ["foreach", "x", "{1 2 3}", "{puts $x}"]

    def test_nested_braces(self):
        assert tokenize_command("if {1} {if {2} {puts x}}") == \
            ["if", "{1}", "{if {2} {puts x}}"]

    def test_brackets_group(self):
        assert tokenize_command("puts [expr 1 + 2]") == ["puts", "[expr 1 + 2]"]

    def test_quotes_group(self):
        assert tokenize_command('puts "two words"') == ["puts", '"two words"']

    def test_unbalanced_brace(self):
        with pytest.raises(errors.ScriptError):
            tokenize_command("puts {oops")

    def test_unterminated_string(self):
        with pytest.raises(errors.ScriptError):
            tokenize_command('puts "oops')


class TestSplitCommands:
    def test_newlines_and_semicolons(self):
        assert split_commands("a 1\nb 2; c 3") == ["a 1", "b 2", "c 3"]

    def test_comments_and_blanks_dropped(self):
        assert split_commands("# hi\n\nputs x\n  # more\n") == ["puts x"]

    def test_semicolon_inside_braces_kept(self):
        assert split_commands("if {1} {a; b}") == ["if {1} {a; b}"]


class TestCore:
    def test_set_and_substitute(self, interp):
        assert interp.run("set x 5\nputs $x") == "5"

    def test_undefined_variable(self, interp):
        with pytest.raises(errors.ScriptError):
            interp.run("puts $nope")

    def test_command_substitution(self, interp):
        assert interp.run("puts [expr 6 * 7]") == "42"

    def test_nested_substitution(self, interp):
        assert interp.run("set a 2\nputs [expr [expr $a * $a] + 1]") == "5"

    def test_expr_comparisons(self, interp):
        assert interp.run("puts [expr 3 < 4]") == "1"
        assert interp.run("puts [expr 3 == 4]") == "0"

    def test_expr_rejects_code(self, interp):
        with pytest.raises(errors.ScriptError):
            interp.run("puts [expr __import__ ]")

    def test_if_else(self, interp):
        assert interp.run("if {1 > 2} {puts yes} else {puts no}") == "no"

    def test_if_with_substitution_in_condition(self, interp):
        assert interp.run("set x 9\nif {$x > 5} {puts big}") == "big"

    def test_foreach(self, interp):
        assert interp.run("foreach i {1 2 3} {puts [expr $i * 10]}") \
            == "10\n20\n30"

    def test_unknown_command(self, interp):
        with pytest.raises(errors.ScriptError):
            interp.run("frobnicate 1")

    def test_quotes_interpolate(self, interp):
        assert interp.run('set n 3\nputs "n is $n"') == "n is 3"

    def test_braces_suppress_interpolation(self, interp):
        assert interp.run("set n 3\nputs {n is $n}") == "n is $n"


class TestServerCommands:
    def test_store_retrieve_cycle(self, interp):
        out = interp.run("store 10 %s\nputs [retrieve 10]" % b"hey".hex())
        assert out == b"hey".hex()

    def test_store_marked_and_query(self, interp):
        interp.run("store 5 00 marked\nstore 6 00")
        assert interp.run("puts [last-marked]") == "5"

    def test_holds_and_delete(self, interp):
        interp.run("store 3 00")
        assert interp.run("puts [holds 3]") == "1"
        interp.run("delete 3")
        assert interp.run("puts [holds 3]") == "0"

    def test_preallocate(self, interp, server):
        interp.run("preallocate 9")
        server.store(9, b"later")
        assert server.retrieve(9) == b"later"

    def test_bad_hex_rejected(self, interp):
        with pytest.raises(errors.ScriptError):
            interp.run("store 1 nothex!")

    def test_server_errors_surface(self, interp):
        with pytest.raises(errors.FragmentNotFoundError):
            interp.run("retrieve 404")

    def test_integer_parsing_with_base(self, interp):
        interp.run("store 0x10 00")
        assert interp.run("puts [holds 16]") == "1"

    def test_acl_commands(self):
        from repro.server.config import ServerConfig
        from repro.server.server import StorageServer

        server = StorageServer(ServerConfig("sec", fragment_size=1 << 16,
                                            enforce_acls=True))
        interp = SwarmScriptInterpreter(server, principal="alice")
        aid = interp.run("puts [acl-create {alice} {alice}]")
        interp.variables["aid"] = aid
        interp.run("acl-modify $aid {alice bob} {alice}")
        assert server.acls.get(int(aid)).readers == {"alice", "bob"}
        interp.run("acl-delete $aid")
        with pytest.raises(errors.AclNotFoundError):
            server.acls.get(int(aid))


class TestActiveDisk:
    def test_count_byte_at_server(self, interp, server):
        server.store(1, b"abca")
        assert interp.run("puts [count-byte 1 0x61]") == "2"

    def test_checksum_matches_client_side(self, interp, server):
        from repro.util.checksums import crc32_of

        server.store(1, b"fragment-bytes")
        assert interp.run("puts [checksum 1]") == str(crc32_of(b"fragment-bytes"))

    def test_script_with_loop_over_fragments(self, interp, server):
        server.store(1, b"aa")
        server.store(2, b"aaa")
        out = interp.run("foreach f {1 2} {puts [count-byte $f 0x61]}")
        assert out == "2\n3"

    def test_principal_enforced_through_scripts(self):
        from repro.server.config import ServerConfig
        from repro.server.server import StorageServer

        server = StorageServer(ServerConfig("sec", fragment_size=1 << 16,
                                            enforce_acls=True))
        aid = server.create_acl(readers={"alice"}, writers={"alice"})
        server.store(1, b"top-secret", acl_ranges=[(0, 10, aid)])
        eve = SwarmScriptInterpreter(server, principal="eve")
        with pytest.raises(errors.AccessDeniedError):
            eve.run("puts [count-byte 1 0x74]")
        alice = SwarmScriptInterpreter(server, principal="alice")
        assert alice.run("puts [count-byte 1 0x74]") == "2"
