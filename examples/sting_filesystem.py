#!/usr/bin/env python3
"""Sting: a UNIX-like file system whose disk is a Swarm cluster.

Shows the full stack the paper describes — cleaner + cache + Sting over
the striped log — doing ordinary file-system work, then surviving a
client crash (rollforward from the last checkpoint) and a storage-server
failure (parity reconstruction) without losing a byte.

Run: ``python examples/sting_filesystem.py``
"""

from repro.cluster import build_local_cluster
from repro.services import CacheService, CleanerService
from repro.sting import StingFileSystem

SVC_CLEANER, SVC_CACHE, SVC_STING = 1, 2, 3


def build_fs(cluster):
    stack = cluster.make_stack(client_id=7)
    stack.push(CleanerService(SVC_CLEANER))
    stack.push(CacheService(SVC_CACHE, capacity_bytes=8 << 20))
    fs = stack.push(StingFileSystem(SVC_STING))
    return stack, fs


def main() -> None:
    cluster = build_local_cluster(num_servers=4, fragment_size=256 << 10)

    stack, fs = build_fs(cluster)
    fs.format()

    # Ordinary file-system life.
    fs.mkdir("/projects")
    fs.mkdir("/projects/swarm")
    fs.write_file("/projects/swarm/notes.txt",
                  b"striped logs + parity = cheap reliability\n")
    fd = fs.open("/projects/swarm/journal.log", create=True, append=True)
    for day in range(1, 31):
        fs.write(fd, b"day %02d: benchmarks green\n" % day)
    fs.close(fd)
    fs.write_file("/projects/swarm/big.bin", bytes(range(256)) * 512)  # 128 KB
    fs.rename("/projects/swarm/notes.txt", "/projects/swarm/README")

    print("tree:")
    for path, dirs, files in fs.walk("/"):
        print("  %-24s dirs=%-18s files=%s" % (path, dirs, files))

    # Clean shutdown writes a checkpoint into a *marked* fragment.
    fs.unmount()

    # The client machine dies. A brand-new client finds the newest
    # marked fragment, loads the checkpoint, and rolls the log forward.
    stack2, fs2 = build_fs(cluster)
    stack2.recover_all()
    journal = fs2.read_file("/projects/swarm/journal.log")
    assert journal.count(b"\n") == 30
    assert fs2.read_file("/projects/swarm/big.bin") == bytes(range(256)) * 512
    print("client crash -> recovered %d files, journal intact"
          % sum(len(files) for _p, _d, files in fs2.walk("/")))

    # Now a storage server dies. Every read still works: missing
    # fragments are rebuilt from their stripes' parity, transparently.
    cluster.servers["s2"].crash()
    assert fs2.read_file("/projects/swarm/README").startswith(b"striped logs")
    assert fs2.read_file("/projects/swarm/big.bin")[:256] == bytes(range(256))
    print("server s2 down -> all files still readable via parity")


if __name__ == "__main__":
    main()
