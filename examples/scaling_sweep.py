#!/usr/bin/env python3
"""Reproduce the shape of Figures 3 and 4 on the simulated testbed.

Runs the paper's write microbenchmark (10,000 x 4 KB blocks per client)
across client and server counts and prints the bandwidth curves next to
the paper's headline numbers. Expect a couple of minutes of wall time;
pass ``--quick`` for a reduced run.

Run: ``python examples/scaling_sweep.py [--quick]``
"""

import sys

from repro.workloads import run_write_bench


def main() -> None:
    blocks = 2_500 if "--quick" in sys.argv[1:] else 10_000
    print("paper: 1 client raw 6.1 (1 server) -> 6.4 (8); useful 3.0 @2;"
          " 4 clients raw 19.3 / useful 16.0 @8\n")
    print("clients servers   raw MB/s   useful MB/s")
    for clients in (1, 2, 4):
        for servers in (1, 2, 4, 8):
            result = run_write_bench(clients, servers, blocks=blocks)
            print("%7d %7d %10.2f %13.2f"
                  % (clients, servers, result.raw_mb_per_s,
                     result.useful_mb_per_s))
        print()


if __name__ == "__main__":
    main()
