#!/usr/bin/env python3
"""SwarmScript: the storage server's scriptable interface (§3.2).

The prototype drove its servers with TCL scripts, which "effectively
turns the storage server into an Active Disk". This example stores
fragments by script, then runs computations *at* the server — counting
bytes and checksumming a fragment without shipping it over the network.

Run: ``python examples/active_disk_script.py``
"""

from repro.cluster import build_local_cluster
from repro.rpc import messages as m


def main() -> None:
    cluster = build_local_cluster(num_servers=1, fragment_size=64 << 10)

    # Every server operation is expressible as a script. Data crosses
    # the ASCII interface hex-encoded, as it did through TCL.
    payload = (b"swarm " * 1000).hex()
    script = """
    set fid 4242
    store $fid %s marked
    puts "stored fragment $fid in slot [holds $fid]"
    puts "newest marked fragment: [last-marked]"
    """ % payload
    response = cluster.transport.call("s0", m.EvalScriptRequest(script=script))
    print(response.text)

    # Active-disk computation: ship the program to the data.
    analytics = """
    set fid 4242
    puts "bytes == 's' at server: [count-byte $fid 0x73]"
    puts "fragment checksum at server: [checksum $fid]"
    foreach b {0x61 0x6d 0x77} { puts "count($b) = [count-byte 4242 $b]" }
    """
    response = cluster.transport.call("s0",
                                      m.EvalScriptRequest(script=analytics))
    print(response.text)

    # Control flow works too: scripts can branch on server state.
    conditional = """
    if {[holds 4242] > 0} { puts "fragment present" } else { puts "missing" }
    delete 4242
    puts "after delete, holds: [holds 4242]"
    """
    response = cluster.transport.call("s0",
                                      m.EvalScriptRequest(script=conditional))
    print(response.text)


if __name__ == "__main__":
    main()
