#!/usr/bin/env python3
"""Day-two operations: scrub a Swarm log, find damage, repair it.

A scheduled scrubber (`repro.tools.fsck`) walks a client's stripes
verifying fragment checksums and the parity equation itself — catching
even *silent* corruption that per-fragment checksums would miss — and
re-materializes anything recoverable onto a healthy server.

Run: ``python examples/scrub_and_repair.py``
"""

from repro.cluster import build_local_cluster
from repro.tools.fsck import check_client_log, repair_client_log

SVC = 5


def main() -> None:
    cluster = build_local_cluster(num_servers=4, fragment_size=128 << 10)
    log = cluster.make_log(client_id=1)
    payloads = {i: bytes([40 + i]) * 20000 for i in range(24)}
    addresses = {i: log.write_block(SVC, data)
                 for i, data in payloads.items()}
    log.checkpoint(SVC, b"cp").wait()

    report = check_client_log(cluster.transport, 1)
    print("initial scrub:", report.summary())
    assert report.healthy

    # Damage 1: a fragment quietly loses a slot (operator fat-finger).
    from repro.log.fragment import Fragment

    victim = cluster.servers["s1"]
    dropped = victim.list_fids()[0]
    dropped_stripe = Fragment.decode(victim.retrieve(dropped)) \
        .header.stripe_base_fid
    victim.delete(dropped)

    # Damage 2: bit rot flips bytes in a fragment of a *different*
    # stripe on s2 (two failures in one stripe would be unrecoverable).
    rotten_server = cluster.servers["s2"]
    rotten = next(
        fid for fid in rotten_server.list_fids()
        if Fragment.decode(rotten_server.retrieve(fid))
        .header.stripe_base_fid != dropped_stripe)
    slot = rotten_server.slots.slot_of(rotten)
    image = bytearray(rotten_server.backend.read_slot(slot))
    image[7] ^= 0xFF
    image[600] ^= 0xFF
    rotten_server.backend.write_slot(slot, bytes(image))

    report = check_client_log(cluster.transport, 1)
    print("after damage: ", report.summary())
    for finding in report.stripes:
        if finding.status != "healthy":
            print("  stripe @%d: status=%s missing=%s corrupt=%s"
                  % (finding.base_fid, finding.status,
                     finding.missing, finding.corrupt))

    restored = repair_client_log(cluster.transport, 1,
                                 target_server="s3")
    print("repair: re-materialized %d fragment(s)" % restored)

    report = check_client_log(cluster.transport, 1)
    print("final scrub:  ", report.summary())
    assert report.healthy
    for i, addr in addresses.items():
        assert log.read(addr) == payloads[i]
    print("all %d blocks verified byte-identical" % len(addresses))


if __name__ == "__main__":
    main()
