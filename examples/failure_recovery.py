#!/usr/bin/env python3
"""Server failure, reconstruction, and cluster repair.

Demonstrates §2.4.3 end to end:

1. a client stripes data over four servers with rotated parity;
2. a server suffers total media loss (not just a crash);
3. reads keep working — the client broadcasts for stripe neighbors,
   learns the stripe layout from their headers, and XORs the survivors;
4. the cluster is repaired by re-materializing every lost fragment onto
   a replacement server, after which a *second* failure elsewhere is
   still survivable.

Run: ``python examples/failure_recovery.py``
"""

from repro.cluster import build_local_cluster, FailureInjector
from repro.log.reconstruct import Reconstructor
from repro.server import ServerConfig, StorageServer

SVC = 9


def main() -> None:
    cluster = build_local_cluster(num_servers=4, fragment_size=128 << 10)
    log = cluster.make_log(client_id=3)

    payloads = {i: bytes([i % 251]) * (3000 + 17 * i) for i in range(120)}
    addresses = {i: log.write_block(SVC, data, create_info=b"%d" % i)
                 for i, data in payloads.items()}
    log.checkpoint(SVC, b"cp").wait()

    victim = "s1"
    lost_fids = sorted(cluster.servers[victim].list_fids())
    print("server %s holds %d fragments" % (victim, len(lost_fids)))

    injector = FailureInjector(cluster)
    injector.wipe_server(victim)  # crash + discard the disk contents
    print("wiped %s (media loss); alive: %s" % (victim,
                                                injector.alive_servers()))

    # Reads still work: every block on the dead server is reconstructed.
    for i, data in payloads.items():
        assert log.read(addresses[i]) == data
    print("all 120 blocks readable through parity reconstruction")

    # Repair: bring up a replacement and re-materialize the lost
    # fragments onto it from the surviving stripes.
    replacement = StorageServer(ServerConfig("s1b",
                                             fragment_size=128 << 10))
    cluster.transport.add_server(replacement)
    rebuilder = Reconstructor(cluster.transport, principal="client-3")
    for fid in lost_fids:
        rebuilder.rebuild_to_server(fid, "s1b")
    print("re-materialized %d fragments onto s1b (%d by XOR)"
          % (len(lost_fids), rebuilder.reconstructions))

    # The cluster is whole again: lose a *different* server and survive.
    injector.crash_server("s3")
    sample = [0, 17, 55, 119]
    for i in sample:
        assert log.read(addresses[i]) == payloads[i]
    print("second failure (s3) survived; sample blocks %s verified" % sample)


if __name__ == "__main__":
    main()
