#!/usr/bin/env python3
"""Three clients sharing one namespace over a Swarm cluster.

The paper's closing argument: distributed file systems belong *above*
Swarm, synchronizing only the clients that actually share. Here one
client hosts the namespace manager (itself an ordinary, recoverable
Swarm service); every client writes file data to its own striped log;
readers pull blocks straight from the storage servers — across client
boundaries, and even across a server failure.

Run: ``python examples/shared_namespace.py``
"""

from repro.cluster import build_local_cluster
from repro.shared.client import SharedDataService, SharedSwarmClient
from repro.shared.lease import LeaseManager
from repro.shared.manager import NamespaceManager


def main() -> None:
    cluster = build_local_cluster(num_servers=4, fragment_size=128 << 10)
    leases = LeaseManager()

    # Client 1 hosts the namespace manager on its stack.
    stacks, clients = {}, {}
    for client_id in (1, 2, 3):
        stack = cluster.make_stack(client_id)
        stacks[client_id] = stack
        if client_id == 1:
            manager = stack.push(NamespaceManager(10))
    for client_id in (1, 2, 3):
        data = stacks[client_id].push(SharedDataService(11))
        clients[client_id] = SharedSwarmClient(client_id, stacks[client_id],
                                               data, manager, leases)

    # Collaborate.
    clients[1].mkdir("/paper")
    clients[2].write_file("/paper/draft.tex", b"\\section{Swarm}\n" * 200)
    clients[3].write_file("/paper/data.csv", b"servers,MBps\n8,16.0\n")
    print("client 1 sees:", clients[1].listdir("/paper"))

    draft = clients[1].read_file("/paper/draft.tex")
    print("client 1 read client 2's draft: %d bytes, %d remote blocks"
          % (len(draft), clients[1].remote_block_reads))

    # Concurrent editing is serialized by write leases...
    leases.acquire("/paper/draft.tex", "client-3")
    try:
        clients[2].write_file("/paper/draft.tex", b"conflict!")
    except Exception as exc:
        print("client 2 write blocked by lease:", type(exc).__name__)
    leases.release("/paper/draft.tex", "client-3")

    # ...and versions keep caches honest.
    clients[2].write_file("/paper/draft.tex", b"\\section{Swarm v2}\n" * 300)
    print("client 1 sees version", clients[1].version("/paper/draft.tex"),
          "->", clients[1].read_file("/paper/draft.tex")[:20], "...")

    # A storage server dies: shared reads still work (parity).
    cluster.servers["s2"].crash()
    assert clients[3].read_file("/paper/draft.tex").startswith(
        b"\\section{Swarm v2}")
    print("server s2 down; shared reads still served via reconstruction")

    # Writes with a dead stripe-group member are degraded but safe
    # (parity covers the missing fragment); the client then reforms its
    # stripe group around the failure and continues cleanly.
    from repro.log.stripe import StripeGroup

    for stack in stacks.values():
        stack.log.reform_group(StripeGroup(("s0", "s1", "s3")))

    # The manager host crashes: rebuild the namespace from its log.
    stacks[1].checkpoint_all()
    stack_m = cluster.make_stack(1)
    manager2 = stack_m.push(NamespaceManager(10))
    stack_m.push(SharedDataService(11))
    stack_m.recover_all()
    print("manager recovered; namespace:", manager2.listdir("/paper"))


if __name__ == "__main__":
    main()
