#!/usr/bin/env python3
"""The log cleaner reclaiming space under churn (§2.2).

A logical disk overwrites the same blocks repeatedly, turning old
stripes into garbage. Watch server slot usage climb, then have the
cleaner demand checkpoints, relocate the surviving live blocks, and
delete dead stripes — while every logical block stays readable.

Run: ``python examples/cleaner_in_action.py``
"""

from repro.cluster import build_local_cluster
from repro.services import CleanerService, LogicalDiskService
from repro.workloads import make_churn_trace


def used_slots(cluster) -> int:
    return sum(len(server.slots) for server in cluster.servers.values())


def main() -> None:
    cluster = build_local_cluster(num_servers=3, fragment_size=64 << 10,
                                  server_slots=512)
    stack = cluster.make_stack(client_id=2)
    cleaner = stack.push(CleanerService(1, utilization_threshold=0.8))
    disk = stack.push(LogicalDiskService(2))

    expected = {}
    for op, path, data in make_churn_trace(seed=11, n_files=40, rounds=6):
        block_no = int(path.rsplit("f", 1)[1])
        if op == "write":
            disk.write(block_no, data)
            expected[block_no] = data
        else:
            disk.trim(block_no)
            expected.pop(block_no, None)
    stack.checkpoint_all()

    before = used_slots(cluster)
    print("after churn: %d slots used across servers" % before)

    moved = cleaner.clean(target_stripes=1000)
    after = used_slots(cluster)
    print("cleaner: %d stripes cleaned, %d live blocks moved, "
          "%d KB relocated" % (cleaner.stripes_cleaned, moved,
                               cleaner.bytes_moved // 1024))
    print("slots: %d -> %d (reclaimed %d)" % (before, after, before - after))

    for block_no, data in expected.items():
        assert disk.read(block_no) == data
    print("every live logical block verified after cleaning (%d blocks)"
          % len(expected))


if __name__ == "__main__":
    main()
