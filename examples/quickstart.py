#!/usr/bin/env python3
"""Quickstart: a Swarm cluster in a few lines.

Builds four storage servers, writes blocks into a striped, parity-
protected log, reads them back, checkpoints, and survives a simulated
client crash via log rollforward.

Run: ``python examples/quickstart.py``
"""

from repro.cluster import build_local_cluster
from repro.log.recovery import recover_service_state
from repro.log.records import RecordType

MY_SERVICE = 42


def main() -> None:
    # Four storage servers, fragments of 256 KB (small for the demo).
    cluster = build_local_cluster(num_servers=4, fragment_size=256 << 10)
    log = cluster.make_log(client_id=1)

    # Append blocks. Addresses are final immediately; data is striped
    # with rotated parity when fragments fill or the log is flushed.
    addresses = []
    for i in range(100):
        data = ("record %03d " % i).encode() * 40
        addresses.append(log.write_block(MY_SERVICE, data,
                                         create_info=b"item-%d" % i))

    # Checkpoint: durable, and the recovery starting point.
    log.checkpoint(MY_SERVICE, b"my-service-state-v1").wait()
    print("wrote %d blocks in %d stripes (%.0f KB raw)"
          % (len(addresses), log.stripes_written,
             log.raw_bytes_written / 1024))

    # Read anything back by address.
    roundtrip = log.read(addresses[57])
    assert roundtrip.startswith(b"record 057")
    print("read back block 57: %r..." % roundtrip[:22])

    # More writes after the checkpoint, flushed but not checkpointed...
    for i in range(100, 110):
        log.write_block(MY_SERVICE, b"late-%d" % i, create_info=b"item-%d" % i)
    log.flush().wait()

    # ...then the client "crashes". A fresh client recovers: checkpoint
    # state plus every record written after it, in order.
    recovered = recover_service_state(cluster.transport, client_id=1,
                                      service_id=MY_SERVICE)
    creates = [r for r in recovered.records if r.rtype == RecordType.CREATE]
    print("recovered checkpoint %r with %d post-checkpoint block creations"
          % (recovered.checkpoint_state, len(creates)))
    assert recovered.checkpoint_state == b"my-service-state-v1"
    assert len(creates) == 10

    # Kill a server: reads keep working via parity reconstruction.
    cluster.servers["s1"].crash()
    still_there = log.read(addresses[57])
    assert still_there == roundtrip
    print("server s1 down; block 57 reconstructed from parity: ok")


if __name__ == "__main__":
    main()
