#!/usr/bin/env python3
"""Atomic recovery units: multi-write atomicity across client crashes.

A tiny banking ledger stores each account as a logical-disk block.
Transfers touch two blocks; wrapping them in an ARU makes the pair
atomic — after a crash, recovery replays both writes or neither, so
money is never created or destroyed.

Run: ``python examples/atomic_updates.py``
"""

from repro.cluster import build_local_cluster
from repro.services import AruService, LogicalDiskService

SVC_ARU, SVC_LEDGER = 1, 2


def build(cluster):
    stack = cluster.make_stack(client_id=4)
    aru = stack.push(AruService(SVC_ARU))
    ledger = stack.push(LogicalDiskService(SVC_LEDGER))
    return stack, aru, ledger


def balance(ledger, account):
    return int(ledger.read(account).decode())


def main() -> None:
    cluster = build_local_cluster(num_servers=3, fragment_size=64 << 10)
    stack, aru, ledger = build(cluster)

    ledger.write(0, b"1000")   # Alice
    ledger.write(1, b"1000")   # Bob
    stack.checkpoint_all()

    # A committed transfer: both writes inside one ARU.
    aru.begin()
    ledger.write(0, b"700")
    ledger.write(1, b"1300")
    aru.commit()
    print("transfer #1 committed: alice=700 bob=1300")

    # A second transfer starts... and the client crashes mid-way:
    # the debit is written (and even flushed!) but the credit and the
    # commit never happen.
    aru.begin()
    ledger.write(0, b"200")            # debit Alice by 500
    stack.flush().wait()               # durable, yet uncommitted
    print("transfer #2 in flight: debit durable, credit never written")

    # Recovery on a fresh client: the uncommitted debit is filtered out
    # by the ARU service during replay. Total money is conserved.
    stack2, aru2, ledger2 = build(cluster)
    stack2.recover_all()
    alice, bob = balance(ledger2, 0), balance(ledger2, 1)
    print("after crash recovery: alice=%d bob=%d total=%d"
          % (alice, bob, alice + bob))
    assert (alice, bob) == (700, 1300)
    assert alice + bob == 2000

    # The retried transfer succeeds atomically.
    aru2.begin()
    ledger2.write(0, b"200")
    ledger2.write(1, b"1800")
    aru2.commit()
    print("transfer #2 retried and committed: alice=200 bob=1800")
    assert balance(ledger2, 0) + balance(ledger2, 1) == 2000


if __name__ == "__main__":
    main()
