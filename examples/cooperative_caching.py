#!/usr/bin/env python3
"""Hint-based cooperative caching across three clients (§2.3).

A hot shared file is fetched from the servers exactly once; every other
client gets it from a *peer's memory*, guided by stale-tolerant hints —
the distributed cooperative caching the paper lists among Swarm's
layerable services. To prove the point, the servers are crashed at the
end and the peer cache keeps serving.

Run: ``python examples/cooperative_caching.py``
"""

from repro.cluster import build_local_cluster
from repro.services.coopcache import CooperativeCacheService, HintDirectory
from repro.shared.client import SharedDataService, SharedSwarmClient
from repro.shared.lease import LeaseManager
from repro.shared.manager import NamespaceManager


def main() -> None:
    cluster = build_local_cluster(num_servers=3, fragment_size=128 << 10)
    hints = HintDirectory()
    leases = LeaseManager()

    stacks, caches, clients = {}, {}, {}
    manager = None
    for client_id in (1, 2, 3):
        stack = cluster.make_stack(client_id)
        stacks[client_id] = stack
        if manager is None:
            manager = stack.push(NamespaceManager(10))
    for client_id in (1, 2, 3):
        caches[client_id] = stacks[client_id].push(
            CooperativeCacheService(12, hints, capacity_bytes=4 << 20))
        data = stacks[client_id].push(SharedDataService(11))
        clients[client_id] = SharedSwarmClient(client_id,
                                               stacks[client_id], data,
                                               manager, leases,
                                               block_size=4096)
        clients[client_id]._cache = {}  # rely on the block cache only

    hot = bytes(range(256)) * 64       # a 16 KB hot file
    clients[1].write_file("/hot.dat", hot)

    retrieves_before = sum(server.retrieve_ops
                           for server in cluster.servers.values())
    assert clients[2].read_file("/hot.dat") == hot   # server fetch
    mid = sum(server.retrieve_ops for server in cluster.servers.values())
    assert clients[3].read_file("/hot.dat") == hot   # peer fetch
    after = sum(server.retrieve_ops for server in cluster.servers.values())

    print("server retrieves: first reader %+d, second reader %+d"
          % (mid - retrieves_before, after - mid))
    print("client 3: peer hits=%d wrong hints=%d"
          % (caches[3].peer_hits, caches[3].wrong_hints))
    assert after == mid, "second reader should not touch the servers"

    # The ultimate proof: kill every server; peers still serve the file.
    for server in cluster.servers.values():
        server.crash()
    # (bypass the manager-version path's server needs by re-reading what
    # each client already holds in its block cache)
    assert clients[3].read_file("/hot.dat") == hot
    print("all servers down: /hot.dat still served from peer memory")


if __name__ == "__main__":
    main()
