"""Drivers for every figure and in-text number of the evaluation.

Paper reference values (ICDCS '99, §1/§3.4/§5):

* Figure 3 (raw): 1 client 6.1 → 6.4 MB/s over 1→8 servers; 2 clients
  12.9 MB/s and 4 clients 19.3 MB/s at 8 servers; one server sustains
  7.7 MB/s under multi-client load.
* Figure 4 (useful): 1 client 3.0 MB/s at 2 servers → 5.5 at 4; 4
  clients 6.7 at 2 servers → 16.0 at 8 (within 17 % of raw).
* Figure 5 (MAB): Sting 9.4 s vs ext2fs 17.9 s; CPU utilization 93 %
  vs 57 %.
* §3.4 reads: 1.7 MB/s for uncached 4 KB reads.
* §3.3 disk: 10.3 MB/s upper bound for fragment-sized writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.client import SimClientDriver
from repro.cluster.cluster import SimCluster
from repro.cluster.config import ClusterConfig
from repro.workloads.mab import MabResult, run_mab_on_ext2, run_mab_on_sting
from repro.workloads.microbench import WriteBenchResult, run_write_bench

PAPER = {
    "fig3": {1: {1: 6.1, 8: 6.4}, 2: {8: 12.9}, 4: {8: 19.3}},
    "fig4": {1: {2: 3.0, 4: 5.5}, 4: {2: 6.7, 8: 16.0}},
    "fig5": {"sting_s": 9.4, "ext2_s": 17.9,
             "sting_util": 0.93, "ext2_util": 0.57},
    "read_mb_s": 1.7,
    "server_sustained_mb_s": 7.7,
    "disk_upper_bound_mb_s": 10.3,
}

DEFAULT_SERVER_COUNTS = (1, 2, 3, 4, 6, 8)
DEFAULT_CLIENT_COUNTS = (1, 2, 4)


@dataclass
class FigureSweep:
    """One figure's measured curves: client count → list of results."""

    name: str
    curves: Dict[int, List[WriteBenchResult]] = field(default_factory=dict)

    def series(self, clients: int, raw: bool) -> List:
        """``[(servers, MB/s), ...]`` for one curve."""
        return [(r.servers, r.raw_mb_per_s if raw else r.useful_mb_per_s)
                for r in self.curves.get(clients, [])]


def run_fig3_raw_bandwidth(client_counts=DEFAULT_CLIENT_COUNTS,
                           server_counts=DEFAULT_SERVER_COUNTS,
                           blocks: int = 10_000) -> FigureSweep:
    """Figure 3: aggregate raw write bandwidth (data+metadata+parity)."""
    sweep = FigureSweep("fig3")
    for clients in client_counts:
        sweep.curves[clients] = [
            run_write_bench(clients, servers, blocks=blocks)
            for servers in server_counts]
    return sweep


def run_fig4_useful_bandwidth(client_counts=DEFAULT_CLIENT_COUNTS,
                              server_counts=DEFAULT_SERVER_COUNTS,
                              blocks: int = 10_000) -> FigureSweep:
    """Figure 4: useful write throughput (application bytes only).

    The minimum configuration is two servers — one for data, one for
    parity — exactly as in the paper.
    """
    sweep = FigureSweep("fig4")
    for clients in client_counts:
        sweep.curves[clients] = [
            run_write_bench(clients, servers, blocks=blocks)
            for servers in server_counts if servers >= 2]
    return sweep


@dataclass
class Fig5Result:
    """Figure 5 plus the in-text CPU-utilization comparison."""

    sting: MabResult
    ext2: MabResult

    @property
    def speedup(self) -> float:
        """ext2 elapsed / Sting elapsed (paper: ~1.9)."""
        return self.ext2.elapsed_s / self.sting.elapsed_s


def run_fig5_mab() -> Fig5Result:
    """Figure 5: Modified Andrew Benchmark, Sting vs ext2fs."""
    return Fig5Result(sting=run_mab_on_sting(), ext2=run_mab_on_ext2())


@dataclass
class ReadBenchResult:
    """§3.4's read measurement."""

    blocks: int
    block_size: int
    elapsed_s: float
    bytes_read: int
    prefetch: bool

    @property
    def mb_per_s(self) -> float:
        """Read bandwidth in decimal MB/s."""
        return self.bytes_read / self.elapsed_s / 1e6


def run_read_bandwidth(blocks: int = 2000, block_size: int = 4096,
                       servers: int = 2) -> ReadBenchResult:
    """Uncached sequential 4 KB reads, one RPC per block (paper: 1.7 MB/s).

    The client cache is cold and there is no prefetch — the exact
    configuration whose slowness the paper attributes to the missing
    caching/prefetch services.
    """
    cluster = SimCluster(ClusterConfig(num_servers=servers, num_clients=1))
    driver = SimClientDriver(cluster, 0)
    addresses = []

    def writer():
        for index in range(blocks):
            addresses.append(driver.log.write_block(
                1, b"\xcd" * block_size, create_info=index.to_bytes(8, "big")))
            if index % 16 == 0:
                yield from driver._charge_cpu()
                yield from driver._throttle()
        ticket = driver.log.flush()
        yield cluster.sim.all_of(ticket.events)

    cluster.sim.run_process(writer())
    start = cluster.sim.now
    process = cluster.sim.process(driver.read_blocks(addresses))
    cluster.sim.run()
    if process.exception is not None:
        raise process.exception
    return ReadBenchResult(blocks=blocks, block_size=block_size,
                           elapsed_s=cluster.sim.now - start,
                           bytes_read=process.value, prefetch=False)


@dataclass
class ServerSustainedResult:
    """§3.3/§3.4: one server under multi-client offered load."""

    clients: int
    raw_mb_per_s: float
    disk_upper_bound_mb_per_s: float


def run_server_sustained(clients: int = 4,
                         blocks: int = 10_000) -> ServerSustainedResult:
    """Drive one server from several clients; report its sustained rate
    (paper: 7.7 MB/s) against the raw disk bound (paper: 10.3 MB/s)."""
    result = run_write_bench(clients, 1, blocks=blocks)
    from repro.sim.disk import DiskModel

    disk = DiskModel()
    return ServerSustainedResult(
        clients=clients, raw_mb_per_s=result.raw_mb_per_s,
        disk_upper_bound_mb_per_s=disk.sequential_bandwidth(1 << 20) / 1e6)
