"""Wall-clock performance harness for the functional hot paths.

Unlike :mod:`repro.bench.figures` (which replays the paper's *simulated*
1999 testbed), this module measures the reproduction's own Python hot
paths in real time: log append throughput, parity XOR throughput, codec
message rate, stripe-close and reconstruction latency, and the RPC cost
of locating fragments by broadcast. It exists to keep the zero-copy
write path and the batched ``holds`` protocol honest — regressions show
up as real milliseconds, not simulated ones.

Usage::

    python -m repro.bench.perf            # full run, writes BENCH_PERF.json
    python -m repro.bench.perf --smoke    # seconds-long sanity run (CI)
    python -m repro.bench.perf --out x.json

Output schema (``schema_version`` 8)::

    {
      "schema_version": 8,
      "smoke": bool,
      "config": {"fragment_size": int, "num_servers": int, ...},
      "metrics": {
        "log_append_mb_s": float,        # useful MB/s through LogLayer
        "parity_mb_s": float,            # parity_of_fast data MB/s
        "codec_msgs_s": float,           # encode+decode round trips/s
        "stripe_close_ms": float,        # mean _close_stripe latency
        "reconstruction_ms": float,      # mean lost-fragment rebuild
        "broadcast_holds_rpcs": int,     # RPCs to locate the fid batch
        "broadcast_holds_fids": int,
        "broadcast_holds_servers": int,
        "reconstruct_latency": {         # modeled (simulated) latency
          "single_retrieve_ms": float,   # healthy whole-fragment read
          "reconstruct_ms": float,       # width-4 degraded read
          "ratio": float                 # reconstruct / single; < 2.5
        },
        "write_pipeline": {              # modeled (simulated) stores
          "serial_flush_ms": float,      # stores charged one by one
          "pipelined_flush_ms": float,   # stores as concurrent scatter
          "overlap_ratio": float,        # pipelined / serial; < 1.0
          "group_commit_batches": int,   # record batches drained
          "records_coalesced": int       # records that rode a batch
        },
        "read_pipeline": {               # modeled (simulated) reads
          "serial_read_mb_s": float,     # sequential scan, window 1
          "sequential_read_mb_s": float, # same scan, windowed read-ahead
          "overlap_ratio": float,        # windowed / serial time; < 1.0
          "window": int,                 # read-ahead depth measured
          "cleaning_mb_s": float         # wall-clock MB reclaimed/s
        },
        "opcounts": {                    # deterministic RPC/byte proxy
          "sequential_scan": {"rpcs": int, "bytes": int},
          "scattered_read": {"rpcs": int, "bytes": int},
          "cleaner_pass": {"rpcs": int, "bytes": int}
        },
        "erasure": {                     # coding-engine costs
          "parity_fragments": int,       # m measured (2)
          "xor_encode_mb_s": float,      # XOR engine data MB/s
          "rs_encode_mb_s": float,       # RS m=2 engine data MB/s
          "rs_vs_xor_ratio": float,      # rs / xor throughput
          "degraded_read_ratio": float   # m=2 double-erasure rebuild /
                                         # healthy retrieve (simulated)
        },
        "placement": {                   # reallocation-free scale-out
          "stripe_width": int,           # fragments per stripe (8)
          "scaling": [                   # 4 clients per fleet size
            {"servers": int, "append_mb_s": float}, ...  # 16/64/256
          ],
          "scaling_efficiency_64": float,# 64-server MB/s / 16-server
          "multi_client_overlap_ratio": float, # 4 concurrent / 4
                                         # serial elapsed; < 1.0
          "view_change_rpcs": int,       # store RPCs a 16->64 grow
          "view_change_bytes": int       # costs: the whole data-
                                         # movement bill (deterministic)
        },
        "crash": {                       # crash-recovery cost
          "sweep_points": int,           # instrumented crash points (>= 8)
          "recovery_short_blocks": int,  # blocks in the short log
          "recovery_long_blocks": int,   # blocks in the long log (4x)
          "recovery_short_ms": float,    # fresh-client recovery, short
          "recovery_long_ms": float,     # fresh-client recovery, long
          "recovery_mb_s": float         # rolled-forward MB/s, long log
        },
        "net": {                         # real wire: loopback asyncio TCP
          "append_mb_s": float,          # useful MB/s, stores as frames
          "scan_mb_s": float,            # windowed sequential scan MB/s
          "overlap_ratio": float,        # submit_many / serial calls; <1.0
          "opcounts": {"rpcs": int, "bytes": int},       # scan over TCP
          "local_opcounts": {"rpcs": int, "bytes": int}  # same scan,
                                         # LocalTransport; must match
        }
      }
    }

``reconstruct_latency`` is simulated, not wall-clock: it runs the
degraded read on the calibrated testbed, where the scatter-gather read
path must cost about two overlapped round trips (descriptor probe +
survivor fetch), not width−1 serial ones. The ``ratio`` bound is
asserted by CI and ``tests/test_scatter_gather.py``.

``write_pipeline`` is simulated the same way for the write side: the
same workload is written once with ``pipeline_stores`` off (every
fragment store charged a serial round trip) and once on (the stripe's
stores travel as concurrent simulator processes), so ``overlap_ratio``
below 1.0 is the measured stripe-store overlap. CI asserts it.

``read_pipeline`` mirrors that for the read side: the same sequential
log scan runs once with a read-ahead window of 1 (every fragment
retrieve charged its own serial round trip — the pre-window prefetch)
and once with the window open, where the in-flight retrieves travel as
concurrent simulator processes; ``overlap_ratio`` below 1.0 is the
measured read overlap, and ``cleaning_mb_s`` is the wall-clock rate at
which a cleaning pass (batched multi-range harvest, pipelined
re-append) reclaims fragment bytes under churn.

``opcounts`` is a timing-free proxy: for three fixed read scenarios it
records exactly how many retrieve RPCs the servers saw and how many
payload bytes they shipped. The counts are deterministic — identical in
smoke and full mode, on any machine — so the regression gate can hold
them to a tight tolerance where wall-clock numbers would be noise.

``erasure`` tracks the pluggable coding engines: encode throughput of
the table-driven Reed–Solomon engine at ``m = 2`` against the XOR
single-parity engine over identical data (the ratio is the price of
double-failure tolerance on the write path), plus the simulated cost
of a double-erasure degraded read — one fragment rebuilt with two
stripe members crashed — relative to a healthy retrieve.

``placement`` measures reallocation-free scale-out on the simulated
testbed: aggregate useful append bandwidth of four concurrent clients
striping width-8 over 16-, 64-, and 256-server fleets through
:class:`~repro.placement.SequentialCheckingPlacement` (a plain stripe
group cannot even be built past ``MAX_STRIPE_WIDTH``), the concurrency
win of those four clients against the same work run serially, and the
deterministic opcount bill of a 16 → 64 view change — which is the
*entire* data-movement cost, because no pre-existing stripe moves.

``net`` is the only section measured over real sockets: the same
in-process servers are hosted behind ``asyncio`` loopback TCP
listeners (:mod:`repro.rpc.net`) and the client drives them through a
:class:`~repro.rpc.net.TcpTransport`, so every store and retrieve is a
length-prefixed frame on a real connection. ``append_mb_s`` and
``scan_mb_s`` are wall-clock loopback throughput; ``overlap_ratio``
compares one ``submit_many`` plan of whole-fragment retrieves (frames
multiplexed over per-server connections, completions consumed in plan
order) against the same retrieves issued as serial blocking calls —
below 1.0 is genuine socket-level pipelining, asserted by CI.
``opcounts``/``local_opcounts`` replay an identical windowed scan over
the TCP and in-process transports and record the servers' retrieve
RPC/byte bill for each: the wire is a transport, not a protocol, so
the regression gate holds the two byte-identical.

``crash`` tracks crash recovery — the flip side of the chaos crash
sweep (``python -m repro.chaos --crash-sweep``), which proves recovery
*correct* from every instrumented crash point while this section keeps
it *cheap*: wall-clock time for a fresh client to recover the service
stack from the servers alone, measured at two log lengths so the cost
visibly tracks the un-checkpointed suffix. ``sweep_points`` pins the
size of the crash-point registry (the sweep's coverage floor).

``validate_bench_schema`` checks exactly this shape (no external JSON
schema dependency), and CI runs it against the smoke output.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, List

from repro.chaos.crashpoints import CRASH_POINTS
from repro.cluster import ClusterConfig, SimCluster, build_local_cluster
from repro.cluster.client import SimClientDriver
from repro.log.address import make_fid
from repro.log.coding import make_engine
from repro.log.config import LogConfig
from repro.log.layer import LogLayer
from repro.log.reader import LogReader
from repro.log.reconstruct import Reconstructor
from repro.log.stripe import parity_of_fast
from repro.rpc import RetryPolicy, messages as m
from repro.rpc.codec import decode_message, encode_message
from repro.rpc.transport import LocalTransport
from repro.server.config import ServerConfig
from repro.server.server import StorageServer
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService

SCHEMA_VERSION = 8

REQUIRED_METRICS = (
    "log_append_mb_s",
    "parity_mb_s",
    "codec_msgs_s",
    "stripe_close_ms",
    "reconstruction_ms",
    "broadcast_holds_rpcs",
    "broadcast_holds_fids",
    "broadcast_holds_servers",
)

RECONSTRUCT_LATENCY_KEYS = (
    "single_retrieve_ms",
    "reconstruct_ms",
    "ratio",
)

WRITE_PIPELINE_KEYS = (
    "serial_flush_ms",
    "pipelined_flush_ms",
    "overlap_ratio",
    "group_commit_batches",
    "records_coalesced",
)

READ_PIPELINE_KEYS = (
    "serial_read_mb_s",
    "sequential_read_mb_s",
    "overlap_ratio",
    "window",
    "cleaning_mb_s",
)

OPCOUNT_SCENARIOS = (
    "sequential_scan",
    "scattered_read",
    "cleaner_pass",
)

ERASURE_KEYS = (
    "parity_fragments",
    "xor_encode_mb_s",
    "rs_encode_mb_s",
    "rs_vs_xor_ratio",
    "degraded_read_ratio",
)

PLACEMENT_KEYS = (
    "stripe_width",
    "scaling",
    "scaling_efficiency_64",
    "multi_client_overlap_ratio",
    "view_change_rpcs",
    "view_change_bytes",
)

PLACEMENT_FLEETS = (16, 64, 256)

CRASH_KEYS = (
    "sweep_points",
    "recovery_short_blocks",
    "recovery_long_blocks",
    "recovery_short_ms",
    "recovery_long_ms",
    "recovery_mb_s",
)

NET_KEYS = (
    "append_mb_s",
    "scan_mb_s",
    "overlap_ratio",
    "opcounts",
    "local_opcounts",
)


class _CountingTransport(LocalTransport):
    """LocalTransport that counts RPCs issued through :meth:`call`."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def call(self, server_id, message):
        self.calls += 1
        return super().call(server_id, message)


# ----------------------------------------------------------------------
# Individual measurements
# ----------------------------------------------------------------------

def bench_parity(fragment_size: int = 1 << 20, width: int = 4,
                 repeats: int = 32) -> float:
    """Data MB/s through ``parity_of_fast`` (a stripe's data members)."""
    images = [bytes([i + 1]) * fragment_size for i in range(width - 1)]
    parity_of_fast(images)  # warm up
    start = time.perf_counter()
    for _ in range(repeats):
        parity_of_fast(images)
    elapsed = time.perf_counter() - start
    total = fragment_size * (width - 1) * repeats
    return total / elapsed / 1e6


def bench_erasure(fragment_size: int = 1 << 20, width: int = 6,
                  parity: int = 2, repeats: int = 16) -> Dict[str, float]:
    """Coding-engine costs: RS-vs-XOR encode rate, m=2 degraded read.

    Encode throughput is measured through the engines' shared
    interface over identical data members (``width - parity`` of
    them), so the ratio isolates the extra translate passes the
    Reed–Solomon rows cost over the single XOR fold. The degraded-read
    ratio runs on the simulated testbed: a stripe written at ``m = 2``
    loses two members to crashes, and rebuilding one fragment through
    the double-erasure decode is compared against a healthy retrieve.
    """
    ndata = width - parity
    images = [bytes([i + 1]) * fragment_size for i in range(ndata)]
    xor_engine = make_engine("xor", 1)
    rs_engine = make_engine("rs", parity)
    xor_engine.encode(images)  # warm up
    rs_engine.encode(images)
    start = time.perf_counter()
    for _ in range(repeats):
        xor_engine.encode(images)
    xor_elapsed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(repeats):
        rs_engine.encode(images)
    rs_elapsed = time.perf_counter() - start
    total = fragment_size * ndata * repeats
    xor_mb_s = total / xor_elapsed / 1e6
    rs_mb_s = total / rs_elapsed / 1e6

    # Simulated double-erasure degraded read at m = parity.
    sim_fragment = 1 << 16
    cluster = SimCluster(ClusterConfig(
        num_servers=width, num_clients=1, fragment_size=sim_fragment))
    log = cluster.make_log(0, deferred_mode=True,
                           parity_fragments=parity, coding="rs")
    transport = log.transport
    block_size = 4096
    blocks_per_stripe = ndata * (sim_fragment // (block_size + 64))
    payload = b"\x6e" * block_size
    addresses = [log.write_block(1, payload)
                 for _ in range(3 * blocks_per_stripe)]
    log.flush().wait()
    placements = log.locations.locate_many(
        sorted({address.fid for address in addresses}))
    victims = sorted(cluster.server_nodes)[:parity]
    healthy_fid, healthy_server = next(
        (fid, sid) for fid, sid in sorted(placements.items())
        if sid not in victims)
    transport.take_deferred_time()  # drain the write-path charges
    transport.call(healthy_server, m.RetrieveRequest(
        fid=healthy_fid, principal=log.config.principal))
    single_s = transport.take_deferred_time()
    for victim in victims:
        cluster.crash_server(victim)
        log.locations.evict_server(victim)
    target = next(fid for fid, sid in sorted(placements.items())
                  if sid == victims[0]
                  and (log.locations.get(fid + 1) is not None
                       or log.locations.get(fid - 1) is not None))
    rebuilder = Reconstructor(transport, principal=log.config.principal,
                              locations=log.locations)
    rebuilder.reconstruct(target)
    reconstruct_s = transport.take_deferred_time()
    return {
        "parity_fragments": parity,
        "xor_encode_mb_s": round(xor_mb_s, 3),
        "rs_encode_mb_s": round(rs_mb_s, 3),
        "rs_vs_xor_ratio": round(rs_mb_s / xor_mb_s, 3),
        "degraded_read_ratio": round(reconstruct_s / single_s, 3),
    }


def bench_log_append(total_bytes: int = 32 << 20, block_size: int = 4096,
                     num_servers: int = 4,
                     fragment_size: int = 1 << 20,
                     repeats: int = 3) -> Dict[str, float]:
    """Useful MB/s through a real LogLayer, plus stripe-close latency.

    Best of ``repeats`` fresh runs: the interesting number is what the
    write path costs, not what the machine's scheduler did to one run,
    and the minimum-elapsed run is the standard low-noise estimator.
    """
    best: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        cluster = build_local_cluster(num_servers=num_servers,
                                      fragment_size=fragment_size,
                                      server_slots=4096)
        # Measured with the retry layer installed, as deployed: its
        # fault-free overhead must stay in the noise.
        log = cluster.make_log(client_id=1, retry_policy=RetryPolicy())
        close_times: List[float] = []
        original_close = log._close_stripe

        def timed_close():
            t0 = time.perf_counter()
            original_close()
            close_times.append(time.perf_counter() - t0)

        log._close_stripe = timed_close
        payload = b"\xa5" * block_size
        count = total_bytes // block_size
        start = time.perf_counter()
        for _ in range(count):
            log.write_block(1, payload)
        log.flush().wait()
        elapsed = time.perf_counter() - start
        run = {
            "log_append_mb_s": log.useful_bytes_written / elapsed / 1e6,
            "stripe_close_ms": (sum(close_times) / len(close_times) * 1e3
                                if close_times else 0.0),
        }
        if not best or run["log_append_mb_s"] > best["log_append_mb_s"]:
            best = run
    return best


def bench_codec(messages_per_kind: int = 20_000) -> float:
    """Encode+decode round trips per second over a representative mix."""
    mix = [
        m.StoreRequest(fid=7, data=b"x" * 4096, principal="c1"),
        m.RetrieveRequest(fid=9, offset=12, length=4096, principal="c2"),
        m.HoldsRequest(fids=tuple(range(100, 132)), principal="c1"),
        m.Response(value=3, payload=b"y" * 256),
    ]
    for message in mix:  # warm up
        decode_message(encode_message(message))
    start = time.perf_counter()
    for _ in range(messages_per_kind):
        for message in mix:
            decode_message(encode_message(message))
    elapsed = time.perf_counter() - start
    return messages_per_kind * len(mix) / elapsed


def bench_reconstruction(stripes: int = 8, num_servers: int = 4,
                         fragment_size: int = 1 << 20) -> float:
    """Mean milliseconds to rebuild one lost fragment from its stripe."""
    cluster = build_local_cluster(num_servers=num_servers,
                                  fragment_size=fragment_size,
                                  server_slots=1024)
    log = cluster.make_log(client_id=1)
    block_size = 4096
    blocks_per_stripe = ((num_servers - 1)
                         * (fragment_size // (block_size + 64)))
    payload = b"\x5a" * block_size
    addresses = []
    for _ in range(stripes * blocks_per_stripe):
        addresses.append(log.write_block(1, payload))
    log.flush().wait()
    # Fail one server; every fragment it held must be rebuilt via XOR.
    victim = next(iter(cluster.servers))
    lost = [fid for fid, sid in log.locations.locate_many(
        sorted({a.fid for a in addresses})).items() if sid == victim]
    cluster.servers[victim].crash()
    log.locations.evict_server(victim)
    rebuilder = Reconstructor(cluster.transport,
                              principal=log.config.principal,
                              locations=log.locations,
                              retry_policy=RetryPolicy())
    start = time.perf_counter()
    for fid in lost:
        rebuilder.fetch(fid)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, len(lost)) * 1e3


def bench_reconstruct_latency(num_servers: int = 4,
                              fragment_size: int = 1 << 16) -> Dict[str, float]:
    """Modeled degraded-read latency on the simulated testbed.

    Writes a few width-``num_servers`` stripes, crashes one server, and
    compares the simulated cost of reconstructing one of its fragments
    against a healthy single-fragment retrieve. With the scatter-gather
    read path the rebuild is two overlapped round trips (the stripe
    descriptor probe, then the remaining survivors fetched together),
    so the ratio must stay well under the serial bound of ``width − 1``
    — the checked-in target is < 2.5×.
    """
    cluster = SimCluster(ClusterConfig(
        num_servers=num_servers, num_clients=1,
        fragment_size=fragment_size))
    log = cluster.make_log(0, deferred_mode=True)
    transport = log.transport
    block_size = 4096
    blocks_per_stripe = ((num_servers - 1)
                         * (fragment_size // (block_size + 64)))
    payload = b"\x3c" * block_size
    addresses = [log.write_block(1, payload)
                 for _ in range(3 * blocks_per_stripe)]
    log.flush().wait()
    placements = log.locations.locate_many(
        sorted({address.fid for address in addresses}))
    victim = next(iter(cluster.server_nodes))
    lost = sorted(fid for fid, sid in placements.items() if sid == victim)
    # Healthy baseline: one whole-fragment retrieve from a live server.
    healthy_fid, healthy_server = next(
        (fid, sid) for fid, sid in sorted(placements.items())
        if sid != victim)
    transport.take_deferred_time()  # drain the write-path charges
    transport.call(healthy_server, m.RetrieveRequest(
        fid=healthy_fid, principal=log.config.principal))
    single_s = transport.take_deferred_time()
    cluster.crash_server(victim)
    log.locations.evict_server(victim)
    # A lost fragment whose neighbors both have live cached placements:
    # the rebuild then needs no location broadcast, isolating the
    # scatter cost itself.
    target = next(fid for fid in lost
                  if log.locations.get(fid - 1) is not None
                  and log.locations.get(fid + 1) is not None)
    rebuilder = Reconstructor(transport, principal=log.config.principal,
                              locations=log.locations)
    rebuilder.reconstruct(target)
    reconstruct_s = transport.take_deferred_time()
    return {
        "single_retrieve_ms": round(single_s * 1e3, 4),
        "reconstruct_ms": round(reconstruct_s * 1e3, 4),
        "ratio": round(reconstruct_s / single_s, 3),
    }


def bench_write_pipeline(num_servers: int = 4, fragment_size: int = 1 << 16,
                         stripes: int = 3) -> Dict[str, float]:
    """Modeled write-side overlap on the simulated testbed.

    Writes the same workload twice on fresh clusters: once with
    ``pipeline_stores`` off — every fragment store of a closing stripe
    charged its own serial round trip — and once on, where the stripe's
    stores travel as concurrent simulator processes and contention
    comes from the NIC/fabric/disk model. ``overlap_ratio`` below 1.0
    is the measured pipelining win; the serial configuration is the
    pre-pipeline write path.

    Also reports the group-commit counters from a record-heavy
    workload, so BENCH_PERF tracks whether small records actually
    coalesce.
    """
    def run(pipelined: bool) -> float:
        cluster = SimCluster(ClusterConfig(
            num_servers=num_servers, num_clients=1,
            fragment_size=fragment_size))
        transport = cluster.make_transport(0, deferred_mode=True)
        log = LogLayer(transport, cluster.stripe_group(),
                       LogConfig(client_id=1, fragment_size=fragment_size,
                                 pipeline_stores=pipelined))
        block_size = 4096
        blocks_per_stripe = ((num_servers - 1)
                             * (fragment_size // (block_size + 64)))
        payload = b"\x77" * block_size
        transport.take_deferred_time()
        for _ in range(stripes * blocks_per_stripe):
            log.write_block(1, payload)
        log.flush().wait()
        return transport.take_deferred_time()

    serial_s = run(pipelined=False)
    pipelined_s = run(pipelined=True)
    # Group commit: a burst of small service records through a
    # functional cluster; every record should ride a batch.
    cluster = build_local_cluster(num_servers=num_servers,
                                  fragment_size=fragment_size,
                                  server_slots=512)
    log = cluster.make_log(client_id=1)
    for i in range(256):
        log.write_record(7, 64, b"\x11" * 48)
    log.flush().wait()
    return {
        "serial_flush_ms": round(serial_s * 1e3, 4),
        "pipelined_flush_ms": round(pipelined_s * 1e3, 4),
        "overlap_ratio": round(pipelined_s / serial_s, 3),
        "group_commit_batches": log.group_commit_batches,
        "records_coalesced": log.records_coalesced,
    }


def bench_read_pipeline(num_servers: int = 4, fragment_size: int = 1 << 16,
                        stripes: int = 4, window: int = 4) -> Dict[str, float]:
    """Modeled read-side overlap on the simulated testbed.

    Writes a fixed workload, then scans the whole log sequentially
    twice on identical fresh clusters: once with ``max_inflight`` 1
    (the pre-window single-slot prefetch — every fragment retrieve
    charged its own serial round trip) and once with the read-ahead
    window open, where the in-flight retrieves run as concurrent
    simulator processes. ``overlap_ratio`` below 1.0 is the measured
    read overlap; CI asserts it.
    """
    def scan(max_inflight: int) -> Dict[str, float]:
        cluster = SimCluster(ClusterConfig(
            num_servers=num_servers, num_clients=1,
            fragment_size=fragment_size))
        transport = cluster.make_transport(0, deferred_mode=True)
        log = LogLayer(transport, cluster.stripe_group(),
                       LogConfig(client_id=1, fragment_size=fragment_size))
        block_size = 4096
        blocks_per_stripe = ((num_servers - 1)
                             * (fragment_size // (block_size + 64)))
        payload = b"\x2b" * block_size
        for _ in range(stripes * blocks_per_stripe):
            log.write_block(1, payload)
        log.flush().wait()
        transport.take_deferred_time()  # drain the write-path charges
        reader = LogReader(transport, log.config.principal,
                           locations=log.locations,
                           max_inflight=max_inflight)
        fragments = sum(1 for _ in reader.fragments_from(make_fid(1, 1)))
        return {"elapsed_s": transport.take_deferred_time(),
                "bytes": fragments * fragment_size}

    serial = scan(1)
    windowed = scan(window)
    return {
        "serial_read_mb_s": round(
            serial["bytes"] / serial["elapsed_s"] / 1e6, 4),
        "sequential_read_mb_s": round(
            windowed["bytes"] / windowed["elapsed_s"] / 1e6, 4),
        "overlap_ratio": round(
            windowed["elapsed_s"] / serial["elapsed_s"], 3),
        "window": window,
    }


def bench_cleaning(num_servers: int = 4, fragment_size: int = 1 << 16,
                   rounds: int = 5, files: int = 24) -> float:
    """Wall-clock MB/s of fragment bytes reclaimed by a cleaning pass.

    Churns a small logical-disk block space until early stripes are
    mostly dead, checkpoints, then times one batched cleaning pass
    (multi-range harvest, pipelined re-append, single durability
    fence). The rate is reclaimed fragment bytes per second.
    """
    cluster = build_local_cluster(num_servers=num_servers,
                                  fragment_size=fragment_size,
                                  server_slots=4096)
    stack = cluster.make_stack(client_id=1)
    cleaner = stack.push(CleanerService(1, utilization_threshold=0.95))
    disk = stack.push(LogicalDiskService(2))
    for round_no in range(rounds):
        for block in range(files):
            data = bytes([(round_no * 29 + block * 7) % 256]) \
                * (2048 + 37 * block)
            disk.write(block, data)
    stack.flush().wait()
    stack.checkpoint_all()
    before = sum(len(server.slots) for server in cluster.servers.values())
    start = time.perf_counter()
    cleaner.clean(target_stripes=1 << 20)
    elapsed = time.perf_counter() - start
    after = sum(len(server.slots) for server in cluster.servers.values())
    reclaimed = max(0, before - after) * fragment_size
    return reclaimed / max(elapsed, 1e-9) / 1e6


def bench_opcounts() -> Dict[str, Dict[str, int]]:
    """Deterministic retrieve-RPC and byte counts for fixed read paths.

    No clocks anywhere: each scenario runs a fixed workload on a fresh
    functional cluster and reports how many retrieve RPCs the servers
    answered and how many payload bytes they shipped. The numbers are
    identical in smoke and full mode and across machines, so the
    regression gate holds them to a tight tolerance.
    """
    def counters(cluster) -> Dict[str, int]:
        return {
            "rpcs": sum(server.retrieve_ops
                        for server in cluster.servers.values()),
            "bytes": sum(server.bytes_retrieved
                         for server in cluster.servers.values()),
        }

    def delta(cluster, before: Dict[str, int]) -> Dict[str, int]:
        now = counters(cluster)
        return {key: now[key] - before[key] for key in before}

    out: Dict[str, Dict[str, int]] = {}

    # Sequential scan of the whole log with the read-ahead window open.
    cluster = build_local_cluster(num_servers=4, fragment_size=1 << 14,
                                  server_slots=2048)
    log = cluster.make_log(client_id=1)
    payload = b"\x42" * 1024
    for _ in range(96):
        log.write_block(1, payload)
    log.flush().wait()
    before = counters(cluster)
    reader = LogReader(cluster.transport, log.config.principal,
                       locations=log.locations, max_inflight=4)
    for _ in reader.fragments_from(make_fid(1, 1)):
        pass
    out["sequential_scan"] = delta(cluster, before)

    # Scattered small reads batched into one multi-range RPC per server.
    cluster = build_local_cluster(num_servers=4, fragment_size=1 << 14,
                                  server_slots=2048)
    stack = cluster.make_stack(client_id=1)
    disk = stack.push(LogicalDiskService(2))
    for block in range(48):
        disk.write(block, bytes([block % 256]) * (512 + 16 * block))
    stack.flush().wait()
    before = counters(cluster)
    disk.read_many(list(range(48)))
    out["scattered_read"] = delta(cluster, before)

    # One cleaning pass: batched header reads plus the live harvest.
    cluster = build_local_cluster(num_servers=4, fragment_size=1 << 14,
                                  server_slots=4096)
    stack = cluster.make_stack(client_id=1)
    cleaner = stack.push(CleanerService(1, utilization_threshold=0.95))
    disk = stack.push(LogicalDiskService(2))
    for round_no in range(4):
        for block in range(16):
            disk.write(block,
                       bytes([(round_no * 31 + block) % 256]) * 1536)
    stack.flush().wait()
    stack.checkpoint_all()
    before = counters(cluster)
    cleaner.clean(target_stripes=1 << 20)
    out["cleaner_pass"] = delta(cluster, before)
    return out


def bench_placement(smoke: bool = False,
                    stripe_width: int = 8) -> Dict[str, object]:
    """Reallocation-free scale-out on the simulated testbed.

    Three measurements:

    * ``scaling`` — aggregate useful append MB/s of four concurrent
      clients, each striping ``stripe_width`` wide over the whole fleet
      through its own :class:`SequentialCheckingPlacement`, at 16, 64,
      and 256 servers. A plain stripe group cannot be built past
      ``MAX_STRIPE_WIDTH``, so these points only exist because the
      placement layer decouples stripe width from fleet size.
    * ``multi_client_overlap_ratio`` — elapsed simulated time of the
      four concurrent 64-server clients against the same work run as
      four serial single-client rounds; below 1.0 means the clients
      genuinely overlap in the shared testbed rather than serialize.
    * ``view_change_rpcs`` / ``view_change_bytes`` — the deterministic
      opcount delta of growing a 16-server view to 64 on a functional
      cluster. Because no pre-existing stripe moves, this is the whole
      data-movement bill: the VIEW_CHANGE record's own stripe, and
      nothing proportional to data already written.
    """
    blocks = 250 if smoke else 1500
    block_size = 4096
    clients = 4

    def aggregate_run(servers: int, nclients: int) -> Dict[str, float]:
        cluster = SimCluster(ClusterConfig(num_servers=servers,
                                           num_clients=nclients))
        drivers = [
            SimClientDriver(cluster, index,
                            group=cluster.make_placement(
                                stripe_width=stripe_width))
            for index in range(nclients)]
        processes = [cluster.sim.process(
            driver.write_blocks(blocks, block_size), name="client-%d" % i)
            for i, driver in enumerate(drivers)]
        cluster.sim.run()
        useful = 0
        for process in processes:
            if process.exception is not None:
                raise process.exception
            useful += process.value[0]
        return {"elapsed_s": cluster.sim.now,
                "mb_s": useful / cluster.sim.now / 1e6}

    scaling = []
    by_servers: Dict[int, float] = {}
    elapsed_64 = 0.0
    for servers in PLACEMENT_FLEETS:
        run = aggregate_run(servers, clients)
        by_servers[servers] = run["mb_s"]
        if servers == 64:
            elapsed_64 = run["elapsed_s"]
        scaling.append({"servers": servers,
                        "append_mb_s": round(run["mb_s"], 3)})

    # Same total work, one client at a time: four serial rounds.
    serial_elapsed = sum(aggregate_run(64, 1)["elapsed_s"]
                         for _ in range(clients))
    overlap_ratio = elapsed_64 / serial_elapsed

    # View-change bill: deterministic store-side opcounts of a 16 -> 64
    # grow, measured after a fixed workload so the cost visibly does
    # NOT scale with data already written.
    cluster = build_local_cluster(num_servers=64, fragment_size=1 << 14,
                                  server_slots=2048)
    fleet = cluster.fleet()
    group = cluster.make_placement(stripe_width=stripe_width,
                                   view_servers=fleet[:16])
    log = cluster.make_log(client_id=1, group=group)
    payload = b"\x9c" * 1024
    for _ in range(96):
        log.write_block(1, payload)
    log.flush().wait()
    before_rpcs = sum(server.store_ops
                      for server in cluster.servers.values())
    before_bytes = sum(server.bytes_stored
                       for server in cluster.servers.values())
    log.grow_fleet(fleet[16:])
    log.flush().wait()
    view_change_rpcs = sum(server.store_ops
                           for server in cluster.servers.values()) \
        - before_rpcs
    view_change_bytes = sum(server.bytes_stored
                            for server in cluster.servers.values()) \
        - before_bytes

    return {
        "stripe_width": stripe_width,
        "scaling": scaling,
        "scaling_efficiency_64": round(by_servers[64] / by_servers[16], 3),
        "multi_client_overlap_ratio": round(overlap_ratio, 3),
        "view_change_rpcs": view_change_rpcs,
        "view_change_bytes": view_change_bytes,
    }


def bench_broadcast_holds(num_servers: int = 8,
                          num_fids: int = 32) -> Dict[str, int]:
    """RPCs needed to locate ``num_fids`` fragments over the cluster."""
    servers = {"s%d" % i: StorageServer(ServerConfig(
        "s%d" % i, fragment_size=1 << 16)) for i in range(num_servers)}
    transport = _CountingTransport(servers)
    fids = list(range(1000, 1000 + num_fids))
    for i, fid in enumerate(fids):
        transport.call("s%d" % (i % num_servers),
                       m.StoreRequest(fid=fid, data=b"x"))
    transport.calls = 0
    found = transport.broadcast_holds(fids)
    assert len(found) == num_fids
    return {
        "broadcast_holds_rpcs": transport.calls,
        "broadcast_holds_fids": num_fids,
        "broadcast_holds_servers": num_servers,
    }


def bench_crash(num_servers: int = 4, fragment_size: int = 1 << 16,
                block_size: int = 4096,
                short_blocks: int = 64, scale: int = 4) -> Dict[str, float]:
    """Crash-recovery cost: fresh-client rollforward time vs log length.

    Writes ``short_blocks`` blocks (and then ``scale``× as many)
    through a real client, then wall-clocks a *fresh* client rebuilding
    the whole service stack from the servers alone — checkpoint
    discovery, checkpoint load, and rollforward of every record past
    the checkpoint. Recovery is the paper's crash story ("reading its
    most recent checkpoint and rolling the log forward"), so its cost
    must grow with the un-checkpointed log suffix, not with anything
    else; the short/long pair makes that visible. ``sweep_points`` is
    the size of the instrumented crash-point registry the chaos sweep
    (``python -m repro.chaos --crash-sweep``) enumerates.
    """
    def recovery_ms(blocks: int) -> float:
        cluster = build_local_cluster(num_servers=num_servers,
                                      fragment_size=fragment_size,
                                      server_slots=8192)
        stack = cluster.make_stack(client_id=1)
        disk = stack.push(LogicalDiskService(17))
        payload = b"\x42" * block_size
        for block_no in range(blocks):
            disk.write(block_no, payload)
        stack.flush().wait()
        fresh = cluster.make_stack(client_id=1)
        fresh_disk = fresh.push(LogicalDiskService(17))
        start = time.perf_counter()
        fresh.recover_all()
        elapsed = time.perf_counter() - start
        assert len(fresh_disk.block_numbers()) == blocks
        return elapsed * 1e3

    long_blocks = short_blocks * scale
    short_ms = recovery_ms(short_blocks)
    long_ms = recovery_ms(long_blocks)
    return {
        "sweep_points": len(CRASH_POINTS),
        "recovery_short_blocks": short_blocks,
        "recovery_long_blocks": long_blocks,
        "recovery_short_ms": round(short_ms, 3),
        "recovery_long_ms": round(long_ms, 3),
        "recovery_mb_s": round(
            long_blocks * block_size / (long_ms / 1e3) / 1e6, 3),
    }


def bench_net(smoke: bool = False, num_servers: int = 4,
              fragment_size: int = 1 << 14,
              repeats: int = None) -> Dict[str, object]:
    """Real-wire costs over the loopback asyncio TCP plane.

    Hosts the cluster's servers behind loopback TCP listeners (the
    servers stay the same in-process objects, so their opcounters keep
    working) and measures what the wire adds: useful append MB/s
    through a LogLayer whose stores travel as length-prefixed frames,
    windowed sequential-scan MB/s, and the multiplexing win —
    ``overlap_ratio`` compares one ``submit_many`` plan of
    whole-fragment retrieves against the same retrieves as serial
    blocking calls (min-of-repeats on both sides; below 1.0 is real
    socket-level pipelining). The whole TCP run repeats and each
    throughput keeps its best figure — the workload is tiny, so one
    scheduler hiccup swamps a single run. The workload itself is fixed
    — identical in smoke and full mode — so the retrieve RPC/byte bill
    of the scan is deterministic and comparable across the TCP and
    in-process transports; both bills are reported and the regression
    gate holds them byte-identical.
    """
    if repeats is None:
        repeats = 2 if smoke else 5
    blocks = 96
    block_size = 1024

    def counters(cluster) -> Dict[str, int]:
        return {
            "rpcs": sum(server.retrieve_ops
                        for server in cluster.servers.values()),
            "bytes": sum(server.bytes_retrieved
                         for server in cluster.servers.values()),
        }

    def run(wire: str) -> Dict[str, object]:
        cluster = build_local_cluster(num_servers=num_servers,
                                      fragment_size=fragment_size,
                                      server_slots=2048)
        host = tcp = None
        if wire == "tcp":
            host, tcp = cluster.serve_tcp()
        transport = tcp if tcp is not None else cluster.transport
        try:
            log = cluster.make_log(client_id=1, transport=transport)
            payload = b"\x42" * block_size
            addresses = []
            start = time.perf_counter()
            for _ in range(blocks):
                addresses.append(log.write_block(1, payload))
            log.flush().wait()
            append_s = time.perf_counter() - start
            before = counters(cluster)
            reader = LogReader(transport, log.config.principal,
                               locations=log.locations, max_inflight=4)
            start = time.perf_counter()
            fragments = sum(1 for _ in reader.fragments_from(make_fid(1, 1)))
            scan_s = time.perf_counter() - start
            opcounts = {key: value - before[key]
                        for key, value in counters(cluster).items()}
            result: Dict[str, object] = {
                "append_mb_s": log.useful_bytes_written / append_s / 1e6,
                "scan_mb_s": fragments * fragment_size / scan_s / 1e6,
                "opcounts": opcounts,
            }
            if wire == "tcp":
                placements = log.locations.locate_many(
                    sorted({address.fid for address in addresses}))
                plan = [(sid, m.RetrieveRequest(
                    fid=fid, principal=log.config.principal))
                    for fid, sid in sorted(placements.items())]
                serial_s = batched_s = float("inf")
                for _ in range(max(1, repeats)):
                    start = time.perf_counter()
                    for server_id, request in plan:
                        transport.call(server_id, request)
                    serial_s = min(serial_s, time.perf_counter() - start)
                    start = time.perf_counter()
                    for future in transport.submit_many(plan):
                        future.result()
                    batched_s = min(batched_s, time.perf_counter() - start)
                result["overlap_ratio"] = batched_s / serial_s
            return result
        finally:
            if tcp is not None:
                tcp.close()
                host.close()

    tcp_runs = [run("tcp") for _ in range(3)]
    local_run = run("local")
    return {
        "append_mb_s": round(max(r["append_mb_s"] for r in tcp_runs), 3),
        "scan_mb_s": round(max(r["scan_mb_s"] for r in tcp_runs), 3),
        "overlap_ratio": round(min(r["overlap_ratio"]
                                   for r in tcp_runs), 3),
        "opcounts": tcp_runs[0]["opcounts"],
        "local_opcounts": local_run["opcounts"],
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_all(smoke: bool = False) -> Dict:
    """Run every measurement; returns the BENCH_PERF document."""
    fragment_size = 1 << 16 if smoke else 1 << 20
    append_bytes = 2 << 20 if smoke else 32 << 20
    config = {
        "fragment_size": fragment_size,
        "num_servers": 4,
        "block_size": 4096,
        "append_bytes": append_bytes,
    }
    metrics: Dict[str, float] = {}
    metrics["parity_mb_s"] = round(bench_parity(
        fragment_size=fragment_size, repeats=4 if smoke else 32), 3)
    metrics.update({key: round(value, 3) for key, value in bench_log_append(
        total_bytes=append_bytes, fragment_size=fragment_size,
        repeats=2 if smoke else 3).items()})
    metrics["codec_msgs_s"] = round(bench_codec(
        messages_per_kind=1_000 if smoke else 20_000), 1)
    metrics["reconstruction_ms"] = round(bench_reconstruction(
        stripes=2 if smoke else 8, fragment_size=fragment_size), 3)
    metrics.update(bench_broadcast_holds())
    metrics["reconstruct_latency"] = bench_reconstruct_latency(
        fragment_size=1 << 16)
    metrics["write_pipeline"] = bench_write_pipeline(
        fragment_size=1 << 16, stripes=2 if smoke else 3)
    read_pipeline = bench_read_pipeline(
        fragment_size=1 << 16, stripes=2 if smoke else 4)
    read_pipeline["cleaning_mb_s"] = round(bench_cleaning(
        fragment_size=1 << 16, rounds=3 if smoke else 5), 3)
    metrics["read_pipeline"] = read_pipeline
    metrics["opcounts"] = bench_opcounts()
    metrics["erasure"] = bench_erasure(
        fragment_size=1 << 18 if smoke else 1 << 20,
        repeats=4 if smoke else 16)
    metrics["placement"] = bench_placement(smoke=smoke)
    metrics["crash"] = bench_crash(short_blocks=32 if smoke else 64)
    metrics["net"] = bench_net(smoke=smoke)
    return {
        "schema_version": SCHEMA_VERSION,
        "smoke": smoke,
        "config": config,
        "metrics": metrics,
    }


def validate_bench_schema(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the documented shape."""
    if not isinstance(doc, dict):
        raise ValueError("BENCH_PERF document must be an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError("schema_version must be %d, got %r"
                         % (SCHEMA_VERSION, doc.get("schema_version")))
    if not isinstance(doc.get("smoke"), bool):
        raise ValueError("smoke must be a boolean")
    if not isinstance(doc.get("config"), dict):
        raise ValueError("config must be an object")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("metrics must be an object")
    for key in REQUIRED_METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError("metric %r missing or non-numeric: %r"
                             % (key, value))
        if value < 0:
            raise ValueError("metric %r is negative: %r" % (key, value))
    for key in ("log_append_mb_s", "parity_mb_s", "codec_msgs_s"):
        if metrics[key] <= 0:
            raise ValueError("throughput metric %r must be positive" % key)
    latency = metrics.get("reconstruct_latency")
    if not isinstance(latency, dict):
        raise ValueError("metric 'reconstruct_latency' must be an object")
    for key in RECONSTRUCT_LATENCY_KEYS:
        value = latency.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "reconstruct_latency.%s missing or non-numeric: %r"
                % (key, value))
        if value <= 0:
            raise ValueError(
                "reconstruct_latency.%s must be positive: %r" % (key, value))
    pipeline = metrics.get("write_pipeline")
    if not isinstance(pipeline, dict):
        raise ValueError("metric 'write_pipeline' must be an object")
    for key in WRITE_PIPELINE_KEYS:
        value = pipeline.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "write_pipeline.%s missing or non-numeric: %r" % (key, value))
        if value < 0:
            raise ValueError(
                "write_pipeline.%s must be non-negative: %r" % (key, value))
    for key in ("serial_flush_ms", "pipelined_flush_ms", "overlap_ratio"):
        if pipeline[key] <= 0:
            raise ValueError(
                "write_pipeline.%s must be positive: %r"
                % (key, pipeline[key]))
    read_pipeline = metrics.get("read_pipeline")
    if not isinstance(read_pipeline, dict):
        raise ValueError("metric 'read_pipeline' must be an object")
    for key in READ_PIPELINE_KEYS:
        value = read_pipeline.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "read_pipeline.%s missing or non-numeric: %r" % (key, value))
        if value <= 0:
            raise ValueError(
                "read_pipeline.%s must be positive: %r" % (key, value))
    opcounts = metrics.get("opcounts")
    if not isinstance(opcounts, dict):
        raise ValueError("metric 'opcounts' must be an object")
    for scenario in OPCOUNT_SCENARIOS:
        entry = opcounts.get(scenario)
        if not isinstance(entry, dict):
            raise ValueError("opcounts.%s must be an object" % scenario)
        for key in ("rpcs", "bytes"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError("opcounts.%s.%s missing or non-integer: %r"
                                 % (scenario, key, value))
            if value <= 0:
                raise ValueError("opcounts.%s.%s must be positive: %r"
                                 % (scenario, key, value))
    erasure = metrics.get("erasure")
    if not isinstance(erasure, dict):
        raise ValueError("metric 'erasure' must be an object")
    for key in ERASURE_KEYS:
        value = erasure.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "erasure.%s missing or non-numeric: %r" % (key, value))
        if value <= 0:
            raise ValueError(
                "erasure.%s must be positive: %r" % (key, value))
    if not isinstance(erasure["parity_fragments"], int):
        raise ValueError("erasure.parity_fragments must be an integer")
    placement = metrics.get("placement")
    if not isinstance(placement, dict):
        raise ValueError("metric 'placement' must be an object")
    for key in PLACEMENT_KEYS:
        if key not in placement:
            raise ValueError("placement.%s missing" % key)
    scaling = placement["scaling"]
    if (not isinstance(scaling, list)
            or len(scaling) != len(PLACEMENT_FLEETS)):
        raise ValueError("placement.scaling must list %d fleet sizes"
                         % len(PLACEMENT_FLEETS))
    for point, servers in zip(scaling, PLACEMENT_FLEETS):
        if not isinstance(point, dict) or point.get("servers") != servers:
            raise ValueError("placement.scaling must cover fleets %r"
                             % (PLACEMENT_FLEETS,))
        rate = point.get("append_mb_s")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) \
                or rate <= 0:
            raise ValueError(
                "placement.scaling[servers=%d].append_mb_s must be "
                "positive: %r" % (servers, rate))
    for key in ("stripe_width", "view_change_rpcs", "view_change_bytes"):
        value = placement[key]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value <= 0:
            raise ValueError(
                "placement.%s must be a positive integer: %r" % (key, value))
    for key in ("scaling_efficiency_64", "multi_client_overlap_ratio"):
        value = placement[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or value <= 0:
            raise ValueError(
                "placement.%s must be positive: %r" % (key, value))
    if placement["multi_client_overlap_ratio"] >= 1.0:
        raise ValueError(
            "placement.multi_client_overlap_ratio must be < 1.0 "
            "(concurrent clients must beat serial rounds): %r"
            % placement["multi_client_overlap_ratio"])
    crash = metrics.get("crash")
    if not isinstance(crash, dict):
        raise ValueError("metric 'crash' must be an object")
    for key in CRASH_KEYS:
        value = crash.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "crash.%s missing or non-numeric: %r" % (key, value))
        if value <= 0:
            raise ValueError(
                "crash.%s must be positive: %r" % (key, value))
    for key in ("sweep_points", "recovery_short_blocks",
                "recovery_long_blocks"):
        if not isinstance(crash[key], int):
            raise ValueError("crash.%s must be an integer" % key)
    if crash["sweep_points"] < 8:
        raise ValueError(
            "crash.sweep_points must be >= 8 (the sweep's coverage "
            "floor): %r" % crash["sweep_points"])
    if crash["recovery_long_blocks"] <= crash["recovery_short_blocks"]:
        raise ValueError(
            "crash.recovery_long_blocks must exceed recovery_short_blocks")
    net = metrics.get("net")
    if not isinstance(net, dict):
        raise ValueError("metric 'net' must be an object")
    for key in ("append_mb_s", "scan_mb_s", "overlap_ratio"):
        value = net.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                "net.%s missing or non-numeric: %r" % (key, value))
        if value <= 0:
            raise ValueError("net.%s must be positive: %r" % (key, value))
    if net["overlap_ratio"] >= 1.0:
        raise ValueError(
            "net.overlap_ratio must be < 1.0 (multiplexed submit_many "
            "must beat serial calls over the wire): %r"
            % net["overlap_ratio"])
    for which in ("opcounts", "local_opcounts"):
        entry = net.get(which)
        if not isinstance(entry, dict):
            raise ValueError("net.%s must be an object" % which)
        for key in ("rpcs", "bytes"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError("net.%s.%s must be a positive integer: %r"
                                 % (which, key, value))


def main(argv=None) -> int:
    """Entry point for ``python -m repro.bench.perf``."""
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    out = "BENCH_PERF.json"
    if "--out" in argv:
        index = argv.index("--out") + 1
        if index >= len(argv):
            print("error: --out requires a file path", file=sys.stderr)
            return 2
        out = argv[index]
    doc = run_all(smoke=smoke)
    validate_bench_schema(doc)
    with open(out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for key in REQUIRED_METRICS:
        print("%-26s %s" % (key, doc["metrics"][key]))
    latency = doc["metrics"]["reconstruct_latency"]
    for key in RECONSTRUCT_LATENCY_KEYS:
        print("%-26s %s" % ("reconstruct_latency." + key, latency[key]))
    pipeline = doc["metrics"]["write_pipeline"]
    for key in WRITE_PIPELINE_KEYS:
        print("%-26s %s" % ("write_pipeline." + key, pipeline[key]))
    read_pipeline = doc["metrics"]["read_pipeline"]
    for key in READ_PIPELINE_KEYS:
        print("%-26s %s" % ("read_pipeline." + key, read_pipeline[key]))
    for scenario in OPCOUNT_SCENARIOS:
        entry = doc["metrics"]["opcounts"][scenario]
        print("%-26s rpcs=%d bytes=%d"
              % ("opcounts." + scenario, entry["rpcs"], entry["bytes"]))
    erasure = doc["metrics"]["erasure"]
    for key in ERASURE_KEYS:
        print("%-26s %s" % ("erasure." + key, erasure[key]))
    placement = doc["metrics"]["placement"]
    for point in placement["scaling"]:
        print("%-26s %s MB/s" % ("placement.%d_servers" % point["servers"],
                                 point["append_mb_s"]))
    for key in ("scaling_efficiency_64", "multi_client_overlap_ratio",
                "view_change_rpcs", "view_change_bytes"):
        print("%-26s %s" % ("placement." + key, placement[key]))
    crash = doc["metrics"]["crash"]
    for key in CRASH_KEYS:
        print("%-26s %s" % ("crash." + key, crash[key]))
    net = doc["metrics"]["net"]
    for key in ("append_mb_s", "scan_mb_s", "overlap_ratio"):
        print("%-26s %s" % ("net." + key, net[key]))
    for which in ("opcounts", "local_opcounts"):
        entry = net[which]
        print("%-26s rpcs=%d bytes=%d"
              % ("net." + which, entry["rpcs"], entry["bytes"]))
    print("wrote %s" % out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
