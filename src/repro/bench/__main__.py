"""Run every experiment and print the paper-vs-measured report.

Usage::

    python -m repro.bench            # full sweeps (a few minutes)
    python -m repro.bench --quick    # reduced block counts (~30 s)
"""

from __future__ import annotations

import sys

from repro.bench.ablations import (
    ablate_flow_control,
    ablate_fragment_size,
    ablate_parity,
    ablate_read_prefetch,
    ablate_stripe_width,
)
from repro.bench.figures import (
    run_fig3_raw_bandwidth,
    run_fig4_useful_bandwidth,
    run_fig5_mab,
    run_read_bandwidth,
    run_server_sustained,
)
from repro.bench.report import (
    format_figure_table,
    format_mab_table,
    format_read_result,
    format_server_result,
)


def main(argv=None) -> int:
    """Entry point for ``python -m repro.bench``."""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    blocks = 2_500 if quick else 10_000

    print("== Figure 3: raw write bandwidth (MB/s) ==")
    print("paper: 1 client 6.1 -> 6.4 over 1..8 servers; "
          "2 clients 12.9 @8; 4 clients 19.3 @8")
    fig3 = run_fig3_raw_bandwidth(blocks=blocks)
    print(format_figure_table(fig3, raw=True))
    print()

    print("== Figure 4: useful write throughput (MB/s) ==")
    print("paper: 1 client 3.0 @2 -> 5.5 @4; 4 clients 6.7 @2 -> 16.0 @8")
    fig4 = run_fig4_useful_bandwidth(blocks=blocks)
    print(format_figure_table(fig4, raw=False))
    print()

    print("== Figure 5: Modified Andrew Benchmark ==")
    print(format_mab_table(run_fig5_mab()))
    print()

    print("== In-text numbers ==")
    print(format_read_result(run_read_bandwidth(
        blocks=500 if quick else 2000)))
    print(format_server_result(run_server_sustained(blocks=blocks)))
    print()

    print("== Ablations ==")
    for point in ablate_fragment_size(blocks=blocks):
        print("fragment size %-16s useful %.2f MB/s" % (point.label,
                                                        point.mb_per_s))
    parity = ablate_parity(blocks=blocks)
    print("parity ablation: with=%.2f MB/s (4 servers), "
          "without=%.2f MB/s (1 server)" % (parity["with_parity_4s"],
                                            parity["no_parity_1s"]))
    for point in ablate_stripe_width(blocks=blocks):
        print("stripe %-12s useful %.2f MB/s" % (point.label, point.mb_per_s))
    for point in ablate_flow_control(blocks=blocks):
        print("flow %-12s raw %.2f MB/s" % (point.label, point.mb_per_s))
    prefetch = ablate_read_prefetch(blocks=300 if quick else 1500)
    print("reads: per-block %.2f MB/s vs fragment-prefetch %.2f MB/s"
          % (prefetch["per_block"], prefetch["prefetch"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
