"""Benchmark harness: regenerates every figure and number in §3.

Each experiment has a function returning structured results plus a
formatter that prints the same rows/series the paper reports, annotated
with the paper's values for comparison. ``python -m repro.bench`` runs
everything and emits the EXPERIMENTS.md table bodies.
"""

from repro.bench.figures import (
    run_fig3_raw_bandwidth,
    run_fig4_useful_bandwidth,
    run_fig5_mab,
    run_read_bandwidth,
    run_server_sustained,
)
from repro.bench.report import format_figure_table, format_mab_table

__all__ = [
    "run_fig3_raw_bandwidth",
    "run_fig4_useful_bandwidth",
    "run_fig5_mab",
    "run_read_bandwidth",
    "run_server_sustained",
    "format_figure_table",
    "format_mab_table",
]
