"""Performance regression gate: fresh numbers vs the committed baseline.

``python -m repro.bench.regression`` re-measures the two headline
metrics at the committed configuration and compares them against the
repository's ``BENCH_PERF.json``:

* ``log_append_mb_s`` may not drop more than the tolerance below the
  baseline (lower is worse);
* ``reconstruct_latency.ratio`` may not rise more than the tolerance
  above it (higher is worse);
* ``write_pipeline.overlap_ratio`` must stay below 1.0 — an absolute
  property (pipelined stripe stores cost less than their serial sum),
  not a relative one, so it is checked against the fresh run only;
* ``read_pipeline.sequential_read_mb_s`` and
  ``read_pipeline.cleaning_mb_s`` may not drop more than the tolerance
  below baseline, and ``read_pipeline.overlap_ratio`` must stay below
  1.0 (windowed read-ahead beats the serial scan), absolute like the
  write-side ratio;
* every ``opcounts`` counter is held to a *tight* tolerance (default
  2%, ``PERF_OPCOUNT_TOLERANCE``): the counts are deterministic RPC and
  byte totals, so any drift is a real protocol change, not noise;
* ``erasure.rs_encode_mb_s`` may not drop more than the tolerance
  below baseline (the table-driven Reed–Solomon encode is a hot write
  path at ``m ≥ 2``), and ``erasure.degraded_read_ratio`` — the
  simulated cost of a double-erasure rebuild over a healthy retrieve —
  may not rise more than the tolerance above it;
* ``placement.scaling_efficiency_64`` (aggregate 64-server append
  throughput over the 16-server figure) may not drop more than the
  tolerance below baseline — reallocation-free placement must keep
  scale-out from costing throughput;
* ``placement.multi_client_overlap_ratio`` must stay below 1.0 —
  absolute, like the pipeline ratios: four clients appending
  concurrently must finish faster than the same work run serially;
* ``placement.view_change_rpcs`` / ``placement.view_change_bytes`` are
  held to the same tight opcount tolerance: growing the fleet is a
  metadata-only log record, and any growth in its cost means view
  changes started moving data;
* ``crash.sweep_points`` may never shrink below the baseline (or the
  documented floor of 8) — fewer instrumented crash points means the
  chaos sweep silently covers fewer kill boundaries — and
  ``crash.recovery_mb_s`` (fresh-client rollforward throughput) may
  not drop more than the tolerance below baseline;
* ``codec_msgs_s`` must stay above an *absolute* floor of 220k
  messages/s (``CODEC_FLOOR``): the precompiled-``Struct`` codec hot
  path serves every frame the TCP plane ships, so it is gated against
  a constant, not just the baseline;
* ``net.append_mb_s`` and ``net.scan_mb_s`` (loopback TCP throughput)
  may not drop more than the tolerance below baseline, and
  ``net.overlap_ratio`` must stay below 1.0 — a ``submit_many`` plan
  multiplexed over real sockets must beat the same retrieves issued
  as serial blocking calls;
* ``net.opcounts`` must match ``net.local_opcounts`` within the tight
  opcount tolerance: the TCP plane is a transport, not a protocol, so
  the identical scan must bill identical retrieve RPCs and bytes on
  either wire (and neither may grow past the committed baseline).

The tolerance defaults to 15% and is widened via the
``PERF_REGRESSION_TOLERANCE`` environment variable (CI machines are
noisy and unlike the machine that produced the baseline) or
``--tolerance``. Exit status 1 means a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

from repro.bench.perf import (
    bench_cleaning,
    bench_codec,
    bench_crash,
    bench_erasure,
    bench_log_append,
    bench_net,
    bench_opcounts,
    bench_placement,
    bench_read_pipeline,
    bench_reconstruct_latency,
    bench_write_pipeline,
)

DEFAULT_TOLERANCE = 0.15
DEFAULT_OPCOUNT_TOLERANCE = 0.02

#: Absolute floor on the codec microbench (messages/s). The
#: precompiled-Struct hot path sustains ~3x this on an idle machine;
#: dropping through the floor means the codec re-grew per-message
#: format parsing, which taxes every frame on the wire.
CODEC_FLOOR = 220_000.0

#: The committed-baseline configuration (run_all's non-smoke settings);
#: fresh numbers are only comparable when measured the same way.
FULL_APPEND_BYTES = 32 << 20
FULL_FRAGMENT_SIZE = 1 << 20


def measure_fresh(smoke: bool = False) -> Dict:
    """Re-measure just the gated metrics, at baseline configuration.

    ``smoke`` shrinks the append volume for fast CI runs; the
    fragment size stays at the baseline's so stripe-close frequency —
    which dominates the metric — is unchanged.
    """
    append_bytes = (4 << 20) if smoke else FULL_APPEND_BYTES
    append = bench_log_append(total_bytes=append_bytes,
                              fragment_size=FULL_FRAGMENT_SIZE,
                              repeats=3)
    # Always measured at the baseline configuration: the scan is
    # simulated (deterministic and cheap) and the cleaning pass is
    # sub-second, so smoke mode doesn't need to shrink them — and a
    # config mismatch would show up as fake drift in the relative gates.
    read_pipeline = bench_read_pipeline(fragment_size=1 << 16, stripes=4)
    read_pipeline["cleaning_mb_s"] = bench_cleaning(
        fragment_size=1 << 16, rounds=5)
    return {
        "log_append_mb_s": append["log_append_mb_s"],
        "reconstruct_latency": bench_reconstruct_latency(
            fragment_size=1 << 16),
        "write_pipeline": bench_write_pipeline(fragment_size=1 << 16,
                                               stripes=2 if smoke else 3),
        "read_pipeline": read_pipeline,
        "opcounts": bench_opcounts(),
        "erasure": bench_erasure(
            fragment_size=(1 << 18) if smoke else (1 << 20),
            repeats=4 if smoke else 16),
        "placement": bench_placement(smoke=smoke),
        "crash": bench_crash(short_blocks=32 if smoke else 64),
        "codec_msgs_s": bench_codec(
            messages_per_kind=2_000 if smoke else 20_000),
        "net": bench_net(smoke=smoke),
    }


def compare(baseline: Dict, fresh: Dict,
            tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Problems found comparing ``fresh`` metrics against ``baseline``.

    Both arguments are ``metrics`` objects (the ``metrics`` key of a
    BENCH_PERF document). Empty list means the gate passes.
    """
    problems: List[str] = []

    base_append = baseline.get("log_append_mb_s")
    fresh_append = fresh.get("log_append_mb_s")
    if not isinstance(base_append, (int, float)) or base_append <= 0:
        problems.append("baseline log_append_mb_s missing or non-positive")
    elif fresh_append < base_append * (1.0 - tolerance):
        problems.append(
            "log_append_mb_s regressed: %.1f -> %.1f MB/s (%.0f%% below "
            "baseline, tolerance %.0f%%)"
            % (base_append, fresh_append,
               100.0 * (1.0 - fresh_append / base_append),
               100.0 * tolerance))

    base_latency = baseline.get("reconstruct_latency")
    base_ratio = (base_latency or {}).get("ratio")
    fresh_ratio = fresh["reconstruct_latency"]["ratio"]
    if not isinstance(base_ratio, (int, float)) or base_ratio <= 0:
        problems.append("baseline reconstruct_latency.ratio missing or "
                        "non-positive")
    elif fresh_ratio > base_ratio * (1.0 + tolerance):
        problems.append(
            "reconstruct_latency.ratio regressed: %.3f -> %.3f (%.0f%% "
            "above baseline, tolerance %.0f%%)"
            % (base_ratio, fresh_ratio,
               100.0 * (fresh_ratio / base_ratio - 1.0),
               100.0 * tolerance))

    overlap = fresh["write_pipeline"]["overlap_ratio"]
    if overlap >= 1.0:
        problems.append(
            "write_pipeline.overlap_ratio is %.3f — pipelined stripe "
            "stores no longer beat the serial sum" % overlap)

    base_read = baseline.get("read_pipeline") or {}
    fresh_read = fresh["read_pipeline"]
    for key in ("sequential_read_mb_s", "cleaning_mb_s"):
        base_value = base_read.get(key)
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            problems.append(
                "baseline read_pipeline.%s missing or non-positive" % key)
        elif fresh_read[key] < base_value * (1.0 - tolerance):
            problems.append(
                "read_pipeline.%s regressed: %.1f -> %.1f MB/s (%.0f%% "
                "below baseline, tolerance %.0f%%)"
                % (key, base_value, fresh_read[key],
                   100.0 * (1.0 - fresh_read[key] / base_value),
                   100.0 * tolerance))
    read_overlap = fresh_read["overlap_ratio"]
    if read_overlap >= 1.0:
        problems.append(
            "read_pipeline.overlap_ratio is %.3f — the read-ahead window "
            "no longer beats the serial scan" % read_overlap)

    base_erasure = baseline.get("erasure") or {}
    fresh_erasure = fresh["erasure"]
    base_rs = base_erasure.get("rs_encode_mb_s")
    if not isinstance(base_rs, (int, float)) or base_rs <= 0:
        problems.append("baseline erasure.rs_encode_mb_s missing or "
                        "non-positive")
    elif fresh_erasure["rs_encode_mb_s"] < base_rs * (1.0 - tolerance):
        problems.append(
            "erasure.rs_encode_mb_s regressed: %.1f -> %.1f MB/s (%.0f%% "
            "below baseline, tolerance %.0f%%)"
            % (base_rs, fresh_erasure["rs_encode_mb_s"],
               100.0 * (1.0 - fresh_erasure["rs_encode_mb_s"] / base_rs),
               100.0 * tolerance))
    base_degraded = base_erasure.get("degraded_read_ratio")
    fresh_degraded = fresh_erasure["degraded_read_ratio"]
    if not isinstance(base_degraded, (int, float)) or base_degraded <= 0:
        problems.append("baseline erasure.degraded_read_ratio missing or "
                        "non-positive")
    elif fresh_degraded > base_degraded * (1.0 + tolerance):
        problems.append(
            "erasure.degraded_read_ratio regressed: %.3f -> %.3f (%.0f%% "
            "above baseline, tolerance %.0f%%)"
            % (base_degraded, fresh_degraded,
               100.0 * (fresh_degraded / base_degraded - 1.0),
               100.0 * tolerance))

    base_placement = baseline.get("placement") or {}
    fresh_placement = fresh["placement"]
    base_efficiency = base_placement.get("scaling_efficiency_64")
    fresh_efficiency = fresh_placement["scaling_efficiency_64"]
    if not isinstance(base_efficiency, (int, float)) or base_efficiency <= 0:
        problems.append("baseline placement.scaling_efficiency_64 missing "
                        "or non-positive")
    elif fresh_efficiency < base_efficiency * (1.0 - tolerance):
        problems.append(
            "placement.scaling_efficiency_64 regressed: %.3f -> %.3f "
            "(%.0f%% below baseline, tolerance %.0f%%) — 64-server "
            "aggregate append fell behind the 16-server figure"
            % (base_efficiency, fresh_efficiency,
               100.0 * (1.0 - fresh_efficiency / base_efficiency),
               100.0 * tolerance))
    client_overlap = fresh_placement["multi_client_overlap_ratio"]
    if client_overlap >= 1.0:
        problems.append(
            "placement.multi_client_overlap_ratio is %.3f — concurrent "
            "clients no longer beat the same work run serially"
            % client_overlap)

    base_crash = baseline.get("crash") or {}
    fresh_crash = fresh["crash"]
    base_points = base_crash.get("sweep_points")
    if not isinstance(base_points, int) or base_points <= 0:
        problems.append("baseline crash.sweep_points missing or "
                        "non-positive (regenerate BENCH_PERF.json)")
    elif fresh_crash["sweep_points"] < base_points:
        problems.append(
            "crash.sweep_points shrank: %d -> %d — the crash-point "
            "registry lost instrumented points, so the sweep covers "
            "fewer kill boundaries"
            % (base_points, fresh_crash["sweep_points"]))
    if fresh_crash["sweep_points"] < 8:
        problems.append(
            "crash.sweep_points is %d — below the sweep's documented "
            "coverage floor of 8" % fresh_crash["sweep_points"])
    base_recovery = base_crash.get("recovery_mb_s")
    if not isinstance(base_recovery, (int, float)) or base_recovery <= 0:
        problems.append("baseline crash.recovery_mb_s missing or "
                        "non-positive")
    elif fresh_crash["recovery_mb_s"] < base_recovery * (1.0 - tolerance):
        problems.append(
            "crash.recovery_mb_s regressed: %.1f -> %.1f MB/s (%.0f%% "
            "below baseline, tolerance %.0f%%) — rollforward after a "
            "crash got slower"
            % (base_recovery, fresh_crash["recovery_mb_s"],
               100.0 * (1.0 - fresh_crash["recovery_mb_s"] / base_recovery),
               100.0 * tolerance))

    fresh_codec = fresh["codec_msgs_s"]
    if fresh_codec < CODEC_FLOOR:
        problems.append(
            "codec_msgs_s is %.0f — below the absolute floor of %.0f "
            "msgs/s; the codec hot path regressed" % (fresh_codec,
                                                      CODEC_FLOOR))

    base_net = baseline.get("net") or {}
    fresh_net = fresh["net"]
    for key in ("append_mb_s", "scan_mb_s"):
        base_value = base_net.get(key)
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            problems.append("baseline net.%s missing or non-positive" % key)
        elif fresh_net[key] < base_value * (1.0 - tolerance):
            problems.append(
                "net.%s regressed: %.1f -> %.1f MB/s (%.0f%% below "
                "baseline, tolerance %.0f%%) — the TCP plane got slower"
                % (key, base_value, fresh_net[key],
                   100.0 * (1.0 - fresh_net[key] / base_value),
                   100.0 * tolerance))
    net_overlap = fresh_net["overlap_ratio"]
    if net_overlap >= 1.0:
        problems.append(
            "net.overlap_ratio is %.3f — multiplexed submit_many no "
            "longer beats serial calls over the wire" % net_overlap)

    return problems


def compare_opcounts(baseline: Dict, fresh: Dict,
                     tolerance: float = DEFAULT_OPCOUNT_TOLERANCE,
                     ) -> List[str]:
    """Problems in the deterministic opcount counters.

    These are exact RPC/byte totals; ``tolerance`` is tight because any
    drift means the protocol got chattier (or an optimization silently
    stopped batching), not that the machine was busy.
    """
    problems: List[str] = []
    base_counts = baseline.get("opcounts")
    if not isinstance(base_counts, dict):
        return ["baseline opcounts missing (regenerate BENCH_PERF.json)"]
    for scenario, fresh_entry in sorted(fresh.get("opcounts", {}).items()):
        base_entry = base_counts.get(scenario)
        if not isinstance(base_entry, dict):
            problems.append("baseline opcounts.%s missing" % scenario)
            continue
        for key in ("rpcs", "bytes"):
            base_value = base_entry.get(key, 0)
            fresh_value = fresh_entry.get(key, 0)
            if base_value <= 0:
                problems.append(
                    "baseline opcounts.%s.%s missing or non-positive"
                    % (scenario, key))
            elif fresh_value > base_value * (1.0 + tolerance):
                problems.append(
                    "opcounts.%s.%s grew: %d -> %d (beyond %.0f%% "
                    "tolerance) — the read path got chattier"
                    % (scenario, key, base_value, fresh_value,
                       100.0 * tolerance))

    # The view-change bill is a deterministic store-side opcount too:
    # growing the fleet must stay a metadata-only log record, never a
    # cost proportional to data already written.
    base_placement = baseline.get("placement")
    fresh_placement = fresh.get("placement") or {}
    if not isinstance(base_placement, dict):
        problems.append("baseline placement missing (regenerate "
                        "BENCH_PERF.json)")
    else:
        for key in ("view_change_rpcs", "view_change_bytes"):
            base_value = base_placement.get(key, 0)
            fresh_value = fresh_placement.get(key, 0)
            if base_value <= 0:
                problems.append(
                    "baseline placement.%s missing or non-positive" % key)
            elif fresh_value > base_value * (1.0 + tolerance):
                problems.append(
                    "placement.%s grew: %d -> %d (beyond %.0f%% "
                    "tolerance) — the view change started moving data"
                    % (key, base_value, fresh_value, 100.0 * tolerance))

    # The real wire is a transport, not a protocol: the identical scan
    # must bill the same retrieve RPCs and bytes whether the frames
    # cross loopback TCP or stay in process, and neither bill may grow
    # past the committed baseline.
    fresh_net = fresh.get("net") or {}
    tcp_counts = fresh_net.get("opcounts") or {}
    local_counts = fresh_net.get("local_opcounts") or {}
    for key in ("rpcs", "bytes"):
        tcp_value = tcp_counts.get(key, 0)
        local_value = local_counts.get(key, 0)
        if local_value <= 0:
            problems.append("net.local_opcounts.%s missing or "
                            "non-positive" % key)
        elif abs(tcp_value - local_value) > local_value * tolerance:
            problems.append(
                "net.opcounts.%s diverged from the local wire: "
                "tcp=%d local=%d (beyond %.0f%% tolerance) — the TCP "
                "plane changed the protocol"
                % (key, tcp_value, local_value, 100.0 * tolerance))
    base_net = baseline.get("net")
    if not isinstance(base_net, dict):
        problems.append("baseline net missing (regenerate BENCH_PERF.json)")
    else:
        base_entry = base_net.get("opcounts") or {}
        for key in ("rpcs", "bytes"):
            base_value = base_entry.get(key, 0)
            fresh_value = tcp_counts.get(key, 0)
            if base_value <= 0:
                problems.append(
                    "baseline net.opcounts.%s missing or non-positive" % key)
            elif fresh_value > base_value * (1.0 + tolerance):
                problems.append(
                    "net.opcounts.%s grew: %d -> %d (beyond %.0f%% "
                    "tolerance) — the wire got chattier"
                    % (key, base_value, fresh_value, 100.0 * tolerance))
    return problems


def resolve_tolerance(cli_value=None) -> float:
    """Tolerance from the CLI flag, the environment, or the default."""
    if cli_value is not None:
        return float(cli_value)
    raw = os.environ.get("PERF_REGRESSION_TOLERANCE", "")
    if raw.strip():
        value = float(raw)
        if value < 0:
            raise ValueError("PERF_REGRESSION_TOLERANCE must be >= 0")
        return value
    return DEFAULT_TOLERANCE


def resolve_opcount_tolerance() -> float:
    """Opcount tolerance from ``PERF_OPCOUNT_TOLERANCE`` or the default.

    Deliberately *not* widened by ``PERF_REGRESSION_TOLERANCE``: the
    counters are deterministic, so machine noise is no excuse.
    """
    raw = os.environ.get("PERF_OPCOUNT_TOLERANCE", "")
    if raw.strip():
        value = float(raw)
        if value < 0:
            raise ValueError("PERF_OPCOUNT_TOLERANCE must be >= 0")
        return value
    return DEFAULT_OPCOUNT_TOLERANCE


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regression",
        description="Compare fresh perf numbers against the committed "
                    "BENCH_PERF.json baseline.")
    parser.add_argument("--baseline", default="BENCH_PERF.json",
                        help="baseline document (default: BENCH_PERF.json)")
    parser.add_argument("--fresh-json", default=None,
                        help="use a pre-measured BENCH_PERF document "
                             "instead of re-benchmarking")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed relative regression (default: "
                             "$PERF_REGRESSION_TOLERANCE or %.2f)"
                        % DEFAULT_TOLERANCE)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller append volume for fast CI runs")
    args = parser.parse_args(argv)

    tolerance = resolve_tolerance(args.tolerance)
    with open(args.baseline) as handle:
        baseline = json.load(handle)["metrics"]

    if args.fresh_json is not None:
        with open(args.fresh_json) as handle:
            fresh = json.load(handle)["metrics"]
    else:
        fresh = measure_fresh(smoke=args.smoke)

    print("tolerance: %.0f%%" % (100.0 * tolerance))
    print("%-28s %12s %12s" % ("metric", "baseline", "fresh"))
    print("%-28s %12.3f %12.3f" % ("log_append_mb_s",
                                   baseline.get("log_append_mb_s", -1),
                                   fresh["log_append_mb_s"]))
    print("%-28s %12.3f %12.3f"
          % ("reconstruct_latency.ratio",
             (baseline.get("reconstruct_latency") or {}).get("ratio", -1),
             fresh["reconstruct_latency"]["ratio"]))
    print("%-28s %12s %12.3f" % ("write_pipeline.overlap_ratio", "<1.0",
                                 fresh["write_pipeline"]["overlap_ratio"]))
    base_read = baseline.get("read_pipeline") or {}
    fresh_read = fresh["read_pipeline"]
    for key in ("sequential_read_mb_s", "cleaning_mb_s"):
        print("%-28s %12.3f %12.3f"
              % ("read_pipeline." + key, base_read.get(key, -1),
                 fresh_read[key]))
    print("%-28s %12s %12.3f" % ("read_pipeline.overlap_ratio", "<1.0",
                                 fresh_read["overlap_ratio"]))
    base_erasure = baseline.get("erasure") or {}
    fresh_erasure = fresh["erasure"]
    for key in ("rs_encode_mb_s", "degraded_read_ratio"):
        print("%-28s %12.3f %12.3f"
              % ("erasure." + key, base_erasure.get(key, -1),
                 fresh_erasure[key]))
    base_placement = baseline.get("placement") or {}
    fresh_placement = fresh["placement"]
    print("%-28s %12.3f %12.3f"
          % ("placement.efficiency_64",
             base_placement.get("scaling_efficiency_64", -1),
             fresh_placement["scaling_efficiency_64"]))
    print("%-28s %12s %12.3f"
          % ("placement.client_overlap", "<1.0",
             fresh_placement["multi_client_overlap_ratio"]))
    print("%-28s %12s %12s"
          % ("placement.view_change",
             "%d/%d" % (base_placement.get("view_change_rpcs", -1),
                        base_placement.get("view_change_bytes", -1)),
             "%d/%d" % (fresh_placement["view_change_rpcs"],
                        fresh_placement["view_change_bytes"])))
    print("%-28s %12.0f %12.0f"
          % ("codec_msgs_s (floor %dk)" % (CODEC_FLOOR // 1000),
             baseline.get("codec_msgs_s", -1), fresh["codec_msgs_s"]))
    base_net = baseline.get("net") or {}
    fresh_net = fresh["net"]
    for key in ("append_mb_s", "scan_mb_s"):
        print("%-28s %12.3f %12.3f"
              % ("net." + key, base_net.get(key, -1), fresh_net[key]))
    print("%-28s %12s %12.3f" % ("net.overlap_ratio", "<1.0",
                                 fresh_net["overlap_ratio"]))
    print("%-28s %12s %12s"
          % ("net.opcounts (tcp/local)",
             "%d/%d" % ((base_net.get("opcounts") or {}).get("rpcs", -1),
                        (base_net.get("opcounts") or {}).get("bytes", -1)),
             "%d=%d/%d=%d" % (fresh_net["opcounts"]["rpcs"],
                              fresh_net["local_opcounts"]["rpcs"],
                              fresh_net["opcounts"]["bytes"],
                              fresh_net["local_opcounts"]["bytes"])))
    opcount_tolerance = resolve_opcount_tolerance()
    for scenario, entry in sorted(fresh.get("opcounts", {}).items()):
        base_entry = (baseline.get("opcounts") or {}).get(scenario, {})
        print("%-28s %12s %12s"
              % ("opcounts." + scenario,
                 "%d/%d" % (base_entry.get("rpcs", -1),
                            base_entry.get("bytes", -1)),
                 "%d/%d" % (entry.get("rpcs", -1),
                            entry.get("bytes", -1))))

    problems = compare(baseline, fresh, tolerance)
    problems += compare_opcounts(baseline, fresh, opcount_tolerance)
    for problem in problems:
        print("REGRESSION: %s" % problem, file=sys.stderr)
    if problems:
        return 1
    print("perf regression gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
