"""Ablations of the design choices DESIGN.md calls out.

The paper argues for several mechanisms qualitatively; these
experiments quantify them on the simulated testbed:

* **Fragment size** — why 1 MB fragments? Sweep fragment size and watch
  per-request overheads eat small fragments' bandwidth.
* **Parity on/off** — the redundancy tax on useful bandwidth.
* **Stripe-group width** — parity amortization vs reconstruction cost.
* **Client cache + prefetch** — the paper's own prescription for its
  1.7 MB/s read rate; we implement it and measure the win.
* **Flow-control window** — the §2.1.2 pipelining: how many outstanding
  fragment stores keep disk and network busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.client import SimClientDriver
from repro.cluster.cluster import SimCluster
from repro.cluster.config import ClusterConfig
from repro.workloads.microbench import run_write_bench


@dataclass
class AblationPoint:
    """One measured ablation point."""

    label: str
    value: float
    mb_per_s: float


def ablate_fragment_size(sizes=(64 << 10, 256 << 10, 1 << 20, 4 << 20),
                         blocks: int = 10_000) -> List[AblationPoint]:
    """Useful bandwidth vs fragment size (1 client, 4 servers)."""
    points = []
    for size in sizes:
        config = ClusterConfig(num_servers=4, num_clients=1,
                               fragment_size=size)
        result = run_write_bench(1, 4, blocks=blocks, config=config)
        points.append(AblationPoint("fragment=%dKB" % (size >> 10),
                                    float(size), result.useful_mb_per_s))
    return points


def ablate_parity(blocks: int = 10_000) -> Dict[str, float]:
    """Useful bandwidth with and without parity (4 servers).

    "Without parity" stripes each fragment on its own single-member
    stripe group — no redundancy, no XOR, no parity fragment.
    """
    with_parity = run_write_bench(1, 4, blocks=blocks).useful_mb_per_s

    cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
    driver = SimClientDriver(cluster, 0)
    process = cluster.sim.process(driver.write_blocks(blocks, 4096))
    cluster.sim.run()
    useful, _raw = process.value
    without_parity = useful / cluster.sim.now / 1e6
    return {"with_parity_4s": with_parity,
            "no_parity_1s": without_parity}


def ablate_stripe_width(widths=(2, 3, 4, 6, 8),
                        blocks: int = 10_000) -> List[AblationPoint]:
    """Useful bandwidth vs stripe-group width (= server count here)."""
    return [AblationPoint("width=%d" % width, float(width),
                          run_write_bench(1, width, blocks=blocks).useful_mb_per_s)
            for width in widths]


def ablate_flow_control(windows=(1, 2, 4, 8),
                        blocks: int = 10_000) -> List[AblationPoint]:
    """Raw bandwidth vs outstanding-fragment window (1 client, 4 servers)."""
    points = []
    for window in windows:
        config = ClusterConfig(num_servers=4, num_clients=1,
                               max_outstanding_fragments=window)
        result = run_write_bench(1, 4, blocks=blocks, config=config)
        points.append(AblationPoint("window=%d" % window, float(window),
                                    result.raw_mb_per_s))
    return points


def ablate_disjoint_groups(blocks: int = 10_000) -> Dict[str, float]:
    """Shared vs disjoint stripe groups (§2.1.2's scalability claim).

    Four clients over four servers, two ways: everyone striping over
    all four servers (shared), or two clients per disjoint pair
    (disjoint). Disjoint groups also bound failure domains: two server
    losses are survivable as long as they hit different groups.
    """
    results: Dict[str, float] = {}
    for mode in ("shared", "disjoint"):
        config = ClusterConfig(num_servers=4, num_clients=4)
        cluster = SimCluster(config)
        processes = []
        for index in range(4):
            if mode == "shared":
                group = cluster.stripe_group()
            else:
                pair = (["s0", "s1"] if index % 2 == 0 else ["s2", "s3"])
                group = cluster.stripe_group(pair)
            driver = SimClientDriver(cluster, index, group=group)
            processes.append(cluster.sim.process(
                driver.write_blocks(blocks, 4096)))
        cluster.sim.run()
        useful = sum(process.value[0] for process in processes)
        raw = sum(process.value[1] for process in processes)
        results["%s_useful" % mode] = useful / cluster.sim.now / 1e6
        results["%s_raw" % mode] = raw / cluster.sim.now / 1e6
    return results


def ablate_server_cache(reads: int = 10,
                        fragment_bytes: int = 1 << 20) -> Dict[str, float]:
    """Repeated whole-fragment reads with/without a server memory cache.

    The paper: "the prototype servers do not cache log fragments in
    memory ... [this] would greatly improve the performance of reads
    that miss in the client cache." Measured as elapsed seconds for
    ``reads`` back-to-back 1 MB retrieves of a hot fragment.
    """
    from repro.rpc import messages as m

    results: Dict[str, float] = {}
    for cached in (False, True):
        cluster = SimCluster(ClusterConfig(num_servers=1, num_clients=1))
        node = cluster.server_nodes["s0"]
        object.__setattr__(node.server.config, "cache_fragments",
                           8 if cached else 0)
        node.server.store(1, b"z" * fragment_bytes)
        transport = cluster.make_transport(0)

        def workload():
            for _ in range(reads):
                yield transport.submit("s0", m.RetrieveRequest(fid=1))

        cluster.sim.run_process(workload())
        results["cached" if cached else "uncached"] = cluster.sim.now
    return results


def ablate_read_prefetch(blocks: int = 1500,
                         block_size: int = 4096) -> Dict[str, float]:
    """Read bandwidth: prototype path vs whole-fragment prefetch.

    The prototype read 4 KB blocks one RPC at a time (1.7 MB/s); the
    paper says prefetch "would greatly improve" it. With fragment
    prefetch a run of sequential reads costs one 1 MB transfer.
    """
    results: Dict[str, float] = {}
    for prefetch in (False, True):
        cluster = SimCluster(ClusterConfig(num_servers=2, num_clients=1))
        driver = SimClientDriver(cluster, 0)
        addresses = []

        def writer():
            for index in range(blocks):
                addresses.append(driver.log.write_block(
                    1, b"\xcd" * block_size))
                if index % 16 == 0:
                    yield from driver._charge_cpu()
                    yield from driver._throttle()
            ticket = driver.log.flush()
            yield cluster.sim.all_of(ticket.events)

        cluster.sim.run_process(writer())
        start = cluster.sim.now
        if prefetch:
            # One whole-fragment fetch per fragment, then local parsing:
            # model with fragment-sized retrieves.
            from repro.rpc import messages as m

            fids = sorted({addr.fid for addr in addresses})

            def reader():
                total = 0
                for fid in fids:
                    server_id = driver.log.known_location(fid)
                    response = yield driver.log.transport.submit(
                        server_id, m.RetrieveRequest(fid=fid))
                    total += len(response.payload)
                return total

            process = cluster.sim.process(reader())
        else:
            process = cluster.sim.process(driver.read_blocks(addresses))
        cluster.sim.run()
        useful_bytes = blocks * block_size
        results["prefetch" if prefetch else "per_block"] = (
            useful_bytes / (cluster.sim.now - start) / 1e6)
    return results
