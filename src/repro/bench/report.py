"""Text formatting for benchmark results (paper-vs-measured tables)."""

from __future__ import annotations


from repro.bench.figures import (
    Fig5Result,
    FigureSweep,
    PAPER,
    ReadBenchResult,
    ServerSustainedResult,
)


def format_figure_table(sweep: FigureSweep, raw: bool) -> str:
    """A markdown table of one figure's curves (rows = servers)."""
    client_counts = sorted(sweep.curves)
    server_counts = sorted({r.servers for curve in sweep.curves.values()
                            for r in curve})
    header = "| servers | " + " | ".join("%d client%s (MB/s)"
                                         % (c, "s" if c > 1 else "")
                                         for c in client_counts) + " |"
    rule = "|---" * (len(client_counts) + 1) + "|"
    lines = [header, rule]
    for servers in server_counts:
        cells = []
        for clients in client_counts:
            value = ""
            for result in sweep.curves[clients]:
                if result.servers == servers:
                    value = "%.1f" % (result.raw_mb_per_s if raw
                                      else result.useful_mb_per_s)
            cells.append(value)
        lines.append("| %d | " % servers + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_mab_table(result: Fig5Result) -> str:
    """Figure 5 as a markdown table with paper values alongside."""
    paper = PAPER["fig5"]
    lines = [
        "| system | elapsed (s) | paper (s) | CPU util | paper util |",
        "|---|---|---|---|---|",
        "| Sting | %.1f | %.1f | %.0f%% | %.0f%% |" % (
            result.sting.elapsed_s, paper["sting_s"],
            100 * result.sting.cpu_utilization, 100 * paper["sting_util"]),
        "| ext2fs | %.1f | %.1f | %.0f%% | %.0f%% |" % (
            result.ext2.elapsed_s, paper["ext2_s"],
            100 * result.ext2.cpu_utilization, 100 * paper["ext2_util"]),
        "",
        "Speedup: %.2fx (paper: %.2fx)" % (
            result.speedup, paper["ext2_s"] / paper["sting_s"]),
    ]
    return "\n".join(lines)


def format_read_result(result: ReadBenchResult) -> str:
    """§3.4 read number, measured vs paper."""
    return ("uncached %d-byte reads: %.2f MB/s (paper: %.1f MB/s)"
            % (result.block_size, result.mb_per_s, PAPER["read_mb_s"]))


def format_server_result(result: ServerSustainedResult) -> str:
    """Server sustained rate and disk upper bound vs paper."""
    return ("one server, %d clients: %.1f MB/s sustained "
            "(paper: %.1f); disk upper bound %.1f MB/s (paper: %.1f)"
            % (result.clients, result.raw_mb_per_s,
               PAPER["server_sustained_mb_s"],
               result.disk_upper_bound_mb_per_s,
               PAPER["disk_upper_bound_mb_s"]))
