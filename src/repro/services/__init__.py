"""Stackable services layered on the log (§2.3).

The log alone only appends; services extend or hide its functionality by
intercepting the block and record streams that flow between the layers
above and below them. This package provides the stacking framework and
the services the paper describes or sketches:

* :class:`~repro.services.cleaner.CleanerService` — log-structured
  space reclamation (§2.2);
* :class:`~repro.services.aru.AruService` — atomic recovery units:
  failure atomicity across multiple log writes;
* :class:`~repro.services.logical_disk.LogicalDiskService` — an
  overwritable block address space hiding the append-only log;
* :class:`~repro.services.cache.CacheService` — client-side block
  caching with optional fragment prefetch (the paper names their absence
  as the cause of its 1.7 MB/s uncached read rate);
* :class:`~repro.services.compress.CompressionService` — an example
  transform service.
"""

from repro.services.base import Service
from repro.services.stack import ServiceStack
from repro.services.cleaner import CleanerService
from repro.services.aru import AruService
from repro.services.logical_disk import LogicalDiskService
from repro.services.cache import CacheService
from repro.services.compress import CompressionService
from repro.services.encrypt import EncryptionService
from repro.services.coopcache import CooperativeCacheService, HintDirectory

__all__ = [
    "Service",
    "ServiceStack",
    "CleanerService",
    "AruService",
    "LogicalDiskService",
    "CacheService",
    "CompressionService",
    "EncryptionService",
    "CooperativeCacheService",
    "HintDirectory",
]
