"""The log cleaner (§2.2, §2.3).

The log is infinite; disks are not. As services delete and overwrite
blocks and checkpoints obsolete old records, stripes become mostly
dead, and the cleaner reclaims them: it copies each stripe's surviving
live blocks to the head of the log (with their original ``create_info``
so owners can re-find them), notifies the owning services of the moves,
and deletes the stripe's fragments from their servers.

Exactly as the paper prescribes, the cleaner is *a service like any
other*, layered on the log rather than built into it: it keeps its
bookkeeping (per-fragment utilization and the dead-block set) in
ordinary service state, checkpoints it, and recovers it by replaying
the log's CREATE/DELETE records.

Safety rule (§2.2): a stripe may only be cleaned when every record it
holds is already obsolete — i.e. older than the *oldest* checkpoint of
any service — because newer records must survive for replay. When free
space runs low the cleaner *demands* fresh checkpoints from the
services; one that refuses eventually has its records reclaimed anyway,
"at its own peril".

The read side is pipelined like the write side: candidate discovery
reads every fragment header in one batched multi-range scatter, a
cleaning pass harvests the live bytes of *all* its stripes in another
(one ``MultiRetrieveRequest`` per server), re-appends them through the
log layer's pipelined write-behind path, and pays a single durability
fence for the whole batch — never one blocking stripe close per stripe.
The live-block index that makes the harvest addressable (owner and
``create_info`` per live address, fed by the log layer's usage events)
replaces the old whole-fragment decode and creation-record lookahead.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CleanerError
from repro.log.address import BlockAddress
from repro.log.fragment import FragmentHeader, HEADER_SIZE
from repro.log.records import (
    Record,
    RecordType,
    SERVICE_LOG_LAYER,
    decode_record_payload_block,
)
from repro.services.base import Service

_ADDR = struct.Struct(">QII")


@dataclass
class StripeUsage:
    """Cleaning statistics for one stripe (keyed by its base FID)."""

    base_fid: int
    width: int
    live_bytes: int
    total_bytes: int
    max_lsn: int

    @property
    def utilization(self) -> float:
        """Live fraction; 0.0 means pure garbage."""
        if self.total_bytes <= 0:
            return 0.0
        return self.live_bytes / self.total_bytes


class CleanerService(Service):
    """Reclaims dead stripes by relocating their live blocks."""

    #: recover_all() passes this flag to the rollforward so the cleaner
    #: sees *every* service's CREATE/DELETE records, not only its own.
    needs_all_block_records = True

    def __init__(self, service_id: int,
                 utilization_threshold: float = 0.75) -> None:
        super().__init__(service_id, "cleaner")
        self.utilization_threshold = utilization_threshold
        # Per-fragment accounting, folded into stripes lazily (the
        # stripe shape is only known from fragment headers).
        self._live: Dict[int, int] = {}       # fid -> live bytes
        self._total: Dict[int, int] = {}      # fid -> total block bytes
        self._dead: Set[BlockAddress] = set()
        # Live-block index: address -> (owner service, create_info).
        # This is what lets a cleaning pass harvest exactly the live
        # byte ranges of a stripe in one multi-range scatter instead of
        # decoding whole fragments hunting for creation records.
        self._blocks: Dict[BlockAddress, Tuple[int, bytes]] = {}
        # Fragments whose deletes failed transiently; retried on the
        # next cleaning pass rather than leaking disk forever.
        self._deferred_deletes: Set[int] = set()
        # Stripe bases the repair daemon is rebuilding: cleaning one
        # mid-repair would delete the survivors the reconstruction is
        # XOR-ing together, so held stripes are never candidates.
        self._repair_hold: Set[int] = set()
        # Statistics.
        self.stripes_cleaned = 0
        self.blocks_moved = 0
        self.bytes_moved = 0
        self.deletes_requeued = 0

    def bind(self, stack) -> None:
        super().bind(stack)
        stack.log.add_usage_listener(self._on_usage)

    # ------------------------------------------------------------------
    # Liveness accounting (driven by log-layer usage events)
    # ------------------------------------------------------------------

    def _on_usage(self, event: str, addr: BlockAddress, size: int,
                  owner: int = 0, info: bytes = b"") -> None:
        if event == "create":
            self._live[addr.fid] = self._live.get(addr.fid, 0) + size
            self._total[addr.fid] = self._total.get(addr.fid, 0) + size
            self._dead.discard(addr)
            self._blocks[addr] = (owner, info)
        elif event == "delete":
            self._live[addr.fid] = self._live.get(addr.fid, 0) - size
            self._dead.add(addr)
            self._blocks.pop(addr, None)

    def fragment_utilization(self, fid: int) -> float:
        """Live fraction of one fragment's block bytes."""
        total = self._total.get(fid, 0)
        if total <= 0:
            return 0.0
        return max(0.0, self._live.get(fid, 0) / total)

    # ------------------------------------------------------------------
    # Stripe discovery and eligibility
    # ------------------------------------------------------------------

    def _min_checkpoint_lsn(self) -> int:
        """Oldest checkpoint LSN across all services (0 = none yet)."""
        table = self.stack.log.checkpoint_table
        if not table:
            return 0
        return min(lsn for _addr, lsn in table.values())

    def _read_headers(
            self, fids: List[int]) -> Dict[int, Optional[FragmentHeader]]:
        """Decode the headers of ``fids`` via one batched range read.

        All the headers travel as a single multi-range scatter (one
        ``MultiRetrieveRequest`` per server) instead of one synchronous
        round trip per fragment; unreadable or undecodable headers map
        to ``None``.
        """
        headers: Dict[int, Optional[FragmentHeader]] = {}
        if not fids:
            return headers
        images = self.stack.log.read_ranges(
            [(fid, 0, HEADER_SIZE) for fid in fids])
        for fid, image in zip(fids, images):
            if image is None:
                headers[fid] = None
                continue
            try:
                headers[fid] = FragmentHeader.decode(image)
            except Exception:
                headers[fid] = None
        return headers

    def candidate_stripes(self) -> List[StripeUsage]:
        """Stripes eligible for cleaning, least-utilized first.

        A stripe qualifies when (a) its records are all older than the
        oldest service checkpoint and (b) its live fraction is below the
        threshold.
        """
        min_ckpt = self._min_checkpoint_lsn()
        if min_ckpt <= 0:
            return []
        fids = sorted(self._total)
        headers = self._read_headers(fids)
        # Stripe descriptors may reference members (e.g. parity) that
        # hold no tracked blocks; fetch those headers in a second batch.
        extra: Set[int] = set()
        for fid in fids:
            header = headers.get(fid)
            if header is None or header.is_parity:
                continue
            base = header.stripe_base_fid
            for index in range(header.stripe_width):
                if base + index not in headers:
                    extra.add(base + index)
        headers.update(self._read_headers(sorted(extra)))
        seen_bases: Set[int] = set()
        stripes: List[StripeUsage] = []
        for fid in fids:
            header = headers.get(fid)
            if header is None or header.is_parity:
                continue
            base = header.stripe_base_fid
            if base in seen_bases or base in self._repair_hold:
                continue
            seen_bases.add(base)
            usage = self._stripe_usage(header, headers)
            if usage is None:
                continue
            if usage.max_lsn >= min_ckpt:
                continue
            if usage.utilization >= self.utilization_threshold:
                continue
            stripes.append(usage)
        stripes.sort(key=lambda s: s.utilization)
        return stripes

    def hold_for_repair(self, base_fids) -> None:
        """Exclude stripes from cleaning while they are being repaired.

        The repair daemon calls this with the base fids of every stripe
        whose lost member it is about to re-materialize; cleaning such
        a stripe would race the reconstruction (deleting survivors the
        rebuild still needs to fetch).
        """
        self._repair_hold.update(base_fids)

    def release_repair_hold(self, base_fids) -> None:
        """Make repaired stripes eligible for cleaning again."""
        self._repair_hold.difference_update(base_fids)

    def _stripe_usage(
            self, header: FragmentHeader,
            headers: Dict[int, Optional[FragmentHeader]],
    ) -> Optional[StripeUsage]:
        base, width = header.stripe_base_fid, header.stripe_width
        live = total = 0
        max_lsn = 0
        for index in range(width):
            # parity_index is the stripe's *first* parity member: every
            # index at or past it is parity (one for XOR, several for
            # Reed-Solomon) and carries no live blocks.
            if index >= header.parity_index:
                continue
            member = headers.get(base + index)
            if member is None:
                if base + index == header.fid:
                    return None
                continue
            if member.is_parity:
                continue
            live += max(0, self._live.get(base + index, 0))
            total += self._total.get(base + index, 0)
            max_lsn = max(max_lsn, member.last_lsn)
        return StripeUsage(base_fid=base, width=width, live_bytes=live,
                           total_bytes=total, max_lsn=max_lsn)

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------

    def clean_once(self) -> int:
        """Clean the single least-utilized eligible stripe.

        Returns the number of blocks moved, or raises
        :class:`~repro.errors.CleanerError` if nothing is eligible.
        """
        self._retry_deferred_deletes()
        candidates = self.candidate_stripes()
        if not candidates:
            raise CleanerError("no stripe is eligible for cleaning")
        return self._clean_batch(candidates[:1])

    def clean(self, target_stripes: int = 1) -> int:
        """Clean up to ``target_stripes`` stripes; returns blocks moved.

        If nothing is eligible, demands fresh checkpoints from every
        service (the paper's on-demand checkpoint mechanism) and retries
        once. All selected stripes are cleaned as one batch: one
        multi-range harvest, pipelined re-appends, one durability fence.
        """
        self._retry_deferred_deletes()
        candidates = self.candidate_stripes()
        if not candidates:
            self.stack.demand_checkpoints()
            candidates = self.candidate_stripes()
            if not candidates:
                return 0
        return self._clean_batch(candidates[:target_stripes])

    def _clean_batch(self, stripes: List[StripeUsage]) -> int:
        """Clean ``stripes`` together through the pipelined read path.

        The live blocks of every stripe are fetched with one batched
        multi-range read (grouped into one ``MultiRetrieveRequest`` per
        server, parity-reconstructing any degraded range), re-appended
        through the log's write-behind pipeline, and made durable with a
        *single* flush fence for the whole batch — the old path paid one
        blocking stripe close per cleaned stripe. A stripe with a live
        range that cannot be read even via reconstruction is skipped
        (and not deleted) rather than risking data loss.
        """
        log = self.stack.log
        harvests: List[Tuple[StripeUsage,
                             List[Tuple[BlockAddress, int, bytes]]]] = []
        for usage in stripes:
            targets = sorted(
                (addr, owner, info)
                for addr, (owner, info) in self._blocks.items()
                if usage.base_fid <= addr.fid < usage.base_fid + usage.width)
            harvests.append((usage, targets))
        all_ranges = [(addr.fid, addr.offset, addr.length)
                      for _usage, targets in harvests
                      for addr, _owner, _info in targets]
        images = log.read_ranges(all_ranges)
        # Crash boundary: live blocks harvested, nothing re-appended yet.
        # Dying here loses only this pass's work — originals are intact.
        log.crash_point("cleaner_reappend")
        moved = 0
        notifications: List[Tuple[int, BlockAddress, BlockAddress, bytes]] = []
        cleanable: List[StripeUsage] = []
        pos = 0
        for usage, targets in harvests:
            datas = images[pos:pos + len(targets)]
            pos += len(targets)
            if any(data is None for data in datas):
                continue
            for (addr, owner, info), data in zip(targets, datas):
                new_addr = log.write_block(owner, bytes(data), info)
                notifications.append((owner, addr, new_addr, info))
                moved += 1
                self.bytes_moved += len(data)
            cleanable.append(usage)
        # Make all the copies durable before destroying any original:
        # one fence for the whole batch, closing stripes through the
        # same write-behind pipeline as ordinary appends.
        if notifications:
            log.flush().wait()
        # Crash boundary: the copies are durable but the doomed
        # originals still exist — a client dying here leaves duplicate
        # copies of every moved block, which rollforward must tolerate
        # (the re-append CREATEs carry newer LSNs, so replay converges
        # on the new copies).
        log.crash_point("cleaner_fence")
        for owner, old_addr, new_addr, create_info in notifications:
            self.stack.notify_block_moved(owner, old_addr, new_addr,
                                          create_info)
        doomed = [usage.base_fid + index
                  for usage in cleanable for index in range(usage.width)]
        failed = log.delete_fids(doomed) if doomed else []
        if failed:
            # The live blocks are safe (copied and flushed above); only
            # the garbage fragments linger. Re-queue them for the next
            # pass instead of failing the clean.
            self._deferred_deletes.update(failed)
            self.deletes_requeued += len(failed)
        for usage in cleanable:
            self._forget_stripe(usage)
            self.stripes_cleaned += 1
        self.blocks_moved += moved
        return moved

    def _retry_deferred_deletes(self) -> None:
        """Re-issue deletes that failed on an earlier pass."""
        if not self._deferred_deletes:
            return
        pending = sorted(self._deferred_deletes)
        self._deferred_deletes = set(
            self.stack.log.delete_fids(pending))

    def _forget_stripe(self, usage: StripeUsage) -> None:
        for index in range(usage.width):
            fid = usage.base_fid + index
            self._live.pop(fid, None)
            self._total.pop(fid, None)
        self._dead = {addr for addr in self._dead
                      if not (usage.base_fid <= addr.fid
                              < usage.base_fid + usage.width)}
        self._blocks = {addr: value for addr, value in self._blocks.items()
                        if not (usage.base_fid <= addr.fid
                                < usage.base_fid + usage.width)}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        live_items = sorted(self._total)
        out = [struct.pack(">II", len(live_items), len(self._dead))]
        for fid in live_items:
            out.append(struct.pack(">Qqq", fid, self._live.get(fid, 0),
                                   self._total[fid]))
        for addr in sorted(self._dead):
            out.append(_ADDR.pack(addr.fid, addr.offset, addr.length))
        # Live-block index: address, owner, and create_info per block,
        # so a recovered cleaner can harvest stripes that were written
        # entirely before this checkpoint.
        out.append(struct.pack(">I", len(self._blocks)))
        for addr in sorted(self._blocks):
            owner, info = self._blocks[addr]
            out.append(_ADDR.pack(addr.fid, addr.offset, addr.length))
            out.append(struct.pack(">QI", owner, len(info)))
            out.append(info)
        return b"".join(out)

    def restore(self, state: Optional[bytes], records: List[Record]) -> None:
        self._live, self._total, self._dead = {}, {}, set()
        self._blocks = {}
        if state:
            nfrag, ndead = struct.unpack_from(">II", state, 0)
            pos = 8
            for _ in range(nfrag):
                fid, live, total = struct.unpack_from(">Qqq", state, pos)
                self._live[fid] = live
                self._total[fid] = total
                pos += 24
            for _ in range(ndead):
                fid, offset, length = _ADDR.unpack_from(state, pos)
                self._dead.add(BlockAddress(fid, offset, length))
                pos += _ADDR.size
            if pos + 4 <= len(state):
                (nblocks,) = struct.unpack_from(">I", state, pos)
                pos += 4
                for _ in range(nblocks):
                    fid, offset, length = _ADDR.unpack_from(state, pos)
                    pos += _ADDR.size
                    owner, info_len = struct.unpack_from(">QI", state, pos)
                    pos += 12
                    info = state[pos:pos + info_len]
                    pos += info_len
                    self._blocks[BlockAddress(fid, offset, length)] = (
                        owner, info)
        for record in records:
            if record.service_id != SERVICE_LOG_LAYER:
                continue
            if record.rtype not in (RecordType.CREATE, RecordType.DELETE):
                continue
            addr, owner, info = decode_record_payload_block(record.payload)
            event = "create" if record.rtype == RecordType.CREATE else "delete"
            self._on_usage(event, addr, addr.length, owner, info)
