"""The service stack: composition of layered services over one log.

Services are pushed bottom-first. A write by service S passes through
every layer *below* S (top-down) before reaching the log; a read passes
back up through the same layers in reverse. Replayed records pass up
through each layer's filter so that, e.g., the ARU service can withhold
records of uncommitted ARUs from the services above it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BlockNotFoundError, ServiceError
from repro.log.address import BlockAddress
from repro.log.layer import FlushTicket, LogLayer
from repro.log.reader import LogReader
from repro.log.records import Record
from repro.log.recovery import recover_service_state
from repro.services.base import Service


class ServiceStack:
    """Orders services over a :class:`~repro.log.layer.LogLayer`."""

    def __init__(self, log: LogLayer) -> None:
        self.log = log
        self.layers: List[Service] = []
        self._by_id: Dict[int, Service] = {}

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def push(self, service: Service) -> Service:
        """Add ``service`` on top of the stack; returns it for chaining."""
        if service.service_id in self._by_id:
            raise ServiceError("duplicate service id %d" % service.service_id)
        self.layers.append(service)
        self._by_id[service.service_id] = service
        service.bind(self)
        return service

    def service(self, service_id: int) -> Optional[Service]:
        """Look up a service by id."""
        return self._by_id.get(service_id)

    def _layers_below(self, service: Service) -> List[Service]:
        """Layers under ``service``, ordered top-down (nearest first)."""
        index = self.layers.index(service)
        return list(reversed(self.layers[:index]))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_block(self, service: Service, data: bytes,
                    create_info: bytes = b"") -> BlockAddress:
        """Write a block on behalf of ``service``, through the layers
        below it; returns the block's address."""
        for layer in self._layers_below(service):
            data = layer.transform_block_down(service.service_id, data)
            create_info = layer.transform_create_info_down(
                service.service_id, create_info)
        return self.log.write_block(service.service_id, data, create_info)

    def write_record(self, service: Service, rtype: int,
                     payload: bytes) -> Record:
        """Write a record on behalf of ``service`` through the stack."""
        for layer in self._layers_below(service):
            rtype, payload = layer.transform_record_down(
                service.service_id, rtype, payload)
        return self.log.write_record(service.service_id, rtype, payload)

    def delete_block(self, service: Service, addr: BlockAddress,
                     create_info: bytes = b"") -> None:
        """Delete a block owned by ``service``.

        The DELETE record's info passes through the same lower-layer
        transforms as CREATE info, so e.g. the ARU service can withhold
        an uncommitted transaction's deletions at replay just like its
        creations — without this, a crashed transaction could destroy
        the old value while its replacement is filtered out.
        """
        for layer in self.layers:
            layer.cache_invalidate(addr)
        for layer in self._layers_below(service):
            create_info = layer.transform_create_info_down(
                service.service_id, create_info)
        self.log.delete_block(addr, service.service_id, create_info)

    def flush(self) -> FlushTicket:
        """Flush the underlying log."""
        return self.log.flush()

    def checkpoint(self, service: Service) -> FlushTicket:
        """Checkpoint one service's state into a marked fragment."""
        return self.log.checkpoint(service.service_id,
                                   service.checkpoint_state())

    def checkpoint_all(self) -> None:
        """Checkpoint every service, bottom-up, and wait for durability."""
        for service in self.layers:
            self.checkpoint(service).wait()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_block(self, service: Service, addr: BlockAddress) -> bytes:
        """Read a block for ``service``, undoing lower-layer transforms.

        Consults each lower layer's cache top-down before touching the
        network; a miss populates the caches on the way out.
        """
        below = self._layers_below(service)
        for layer in below:
            cached = layer.cache_lookup(addr)
            if cached is not None:
                data = cached
                break
        else:
            data = self.log.read(addr)
            for layer in below:
                layer.cache_insert(addr, data)
        # Caches may serve zero-copy views of a fragment image; service
        # transforms own the block data, so hand them bytes.
        if not isinstance(data, bytes):
            data = bytes(data)
        for layer in reversed(below):
            data = layer.transform_block_up(service.service_id, data)
        return data

    def read_blocks(self, service: Service,
                    addrs: List[BlockAddress]) -> List[bytes]:
        """Batched :meth:`read_block`: many addresses, few round trips.

        Cache hits are taken layer by layer as usual; every miss joins
        one batched log read (:meth:`~repro.log.layer.LogLayer.read_ranges`,
        one multi-range retrieve per server) instead of one synchronous
        round trip per block. Results come back in request order, each
        passed up through the lower layers' transforms; a block that
        cannot be read even through reconstruction raises
        ``BlockNotFoundError`` just like the single-block path.
        """
        below = self._layers_below(service)
        staged: List = [None] * len(addrs)
        missing: List[int] = []
        for index, addr in enumerate(addrs):
            for layer in below:
                cached = layer.cache_lookup(addr)
                if cached is not None:
                    staged[index] = cached
                    break
            else:
                missing.append(index)
        if missing:
            fetched = self.log.read_ranges(
                [(addrs[index].fid, addrs[index].offset, addrs[index].length)
                 for index in missing])
            for index, data in zip(missing, fetched):
                if data is None:
                    raise BlockNotFoundError("no data at %s" % (addrs[index],))
                for layer in below:
                    layer.cache_insert(addrs[index], data)
                staged[index] = data
        results: List[bytes] = []
        for data in staged:
            if not isinstance(data, bytes):
                data = bytes(data)
            for layer in reversed(below):
                data = layer.transform_block_up(service.service_id, data)
            results.append(data)
        return results

    # ------------------------------------------------------------------
    # Cleaner integration
    # ------------------------------------------------------------------

    def notify_block_moved(self, owner_id: int, old_addr: BlockAddress,
                           new_addr: BlockAddress, create_info: bytes) -> None:
        """Route a cleaner move notification to the owning service."""
        for layer in self.layers:
            layer.cache_invalidate(old_addr)
        owner = self._by_id.get(owner_id)
        if owner is not None:
            owner.on_block_moved(old_addr, new_addr, create_info)

    def demand_checkpoints(self) -> None:
        """Ask every service for a fresh checkpoint (cleaner pressure)."""
        for service in list(self.layers):
            service.on_checkpoint_demand()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover_all(self, transport=None) -> None:
        """Recover every service, bottom-up, after a client crash.

        Each service's record stream is passed through the replay
        filters of the layers below it (already recovered), then handed
        to its :meth:`~repro.services.base.Service.restore`. Finally the
        log layer's FID/LSN counters are fast-forwarded past everything
        found in the log.
        """
        transport = transport or self.log.transport
        client_id = self.log.config.client_id
        # Rollforward shares one reader so every service's scan reuses
        # the placement cache and the configured read-ahead window;
        # prefetch failures feed the client's health monitor.
        reader = LogReader(transport, self.log.config.principal,
                           max_inflight=self.log.config.max_inflight_reads,
                           monitor=self.log.monitor)
        highest_fid = 0
        highest_lsn = 0
        table = {}
        view_payload = None
        view_lsn = 0
        for service in self.layers:
            recovered = recover_service_state(
                transport, client_id, service.service_id,
                principal=self.log.config.principal,
                include_all_block_records=getattr(
                    service, "needs_all_block_records", False),
                reader=reader)
            records = recovered.records
            for layer in self._layers_below(service):
                records = layer.filter_replay_up(records)
            service.restore(recovered.checkpoint_state, records)
            highest_fid = max(highest_fid, recovered.highest_fid)
            highest_lsn = max(highest_lsn, recovered.highest_lsn)
            if recovered.checkpoint_table:
                table = recovered.checkpoint_table
            if (recovered.view_payload is not None
                    and recovered.view_lsn > view_lsn):
                view_lsn = recovered.view_lsn
                view_payload = recovered.view_payload
        self.log.adopt_recovered_state(highest_fid, highest_lsn, table,
                                       view_payload=view_payload)
