"""Cooperative caching using hints (§2.3's last example service).

The paper names "distributed cooperative caching" — citing Sarkar &
Hartman's hint-based design — as a service layerable on Swarm. The
idea: clients' caches together form one large cache. On a local miss,
a client consults its *hints* about which peer probably caches the
block and fetches it from that peer's memory — cheaper than a server
disk access — falling back to the servers when the hint is wrong.

Hints are deliberately allowed to go stale (that is what makes them
cheap): they are updated opportunistically on successful and failed
probes rather than kept coherent. The implementation mirrors that
design:

* a shared :class:`HintDirectory` maps block addresses to the client
  believed to be the *master* copy holder (last known cacher);
* each :class:`CooperativeCacheService` is a normal LRU block cache
  that additionally (a) registers itself as the master for blocks it
  caches, and (b) on miss, probes the hinted peer before touching the
  log;
* wrong hints are corrected on the spot; peer probes answer from cache
  only (a peer never does IO on another client's behalf).

Statistics expose the hit classes the original paper evaluates: local
hits, peer hits, wrong hints, and server fetches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.log.address import BlockAddress
from repro.services.cache import CacheService


class HintDirectory:
    """Loose, shared address→probable-holder map.

    One instance is shared by all cooperating clients. Nothing here is
    authoritative; every entry is a hint that may be stale.
    """

    def __init__(self) -> None:
        self._hints: Dict[BlockAddress, "CooperativeCacheService"] = {}
        self.updates = 0

    def suggest(self, addr: BlockAddress,
                holder: "CooperativeCacheService") -> None:
        """Record that ``holder`` probably caches ``addr``."""
        self._hints[addr] = holder
        self.updates += 1

    def lookup(self, addr: BlockAddress,
               asker: "CooperativeCacheService"
               ) -> Optional["CooperativeCacheService"]:
        """Best guess at who holds ``addr`` (never the asker itself)."""
        holder = self._hints.get(addr)
        return None if holder is asker else holder

    def forget(self, addr: BlockAddress,
               holder: "CooperativeCacheService") -> None:
        """Invalidate a hint we just found to be wrong/stale."""
        if self._hints.get(addr) is holder:
            del self._hints[addr]


class CooperativeCacheService(CacheService):
    """An LRU block cache that borrows from its peers before the log."""

    def __init__(self, service_id: int, hints: HintDirectory,
                 capacity_bytes: int = 16 << 20) -> None:
        super().__init__(service_id, capacity_bytes=capacity_bytes)
        self.name = "coop-cache"
        self.hints = hints
        self.peer_hits = 0
        self.wrong_hints = 0
        self.peer_probes_served = 0

    # -- peer protocol ------------------------------------------------------

    def probe(self, addr: BlockAddress) -> Optional[bytes]:
        """Answer a peer's probe from this cache (memory only)."""
        data = self._entries.get(addr)
        if data is not None:
            self._entries.move_to_end(addr)
            self.peer_probes_served += 1
        return data

    # -- cache hooks ----------------------------------------------------------

    def cache_lookup(self, addr: BlockAddress) -> Optional[bytes]:
        local = super().cache_lookup(addr)
        if local is not None:
            return local
        holder = self.hints.lookup(addr, self)
        if holder is not None:
            data = holder.probe(addr)
            if data is not None:
                self.peer_hits += 1
                self._insert(addr, data)
                self.hints.suggest(addr, self)
                return data
            self.wrong_hints += 1
            self.hints.forget(addr, holder)
        return None

    def cache_insert(self, addr: BlockAddress, data: bytes) -> None:
        super().cache_insert(addr, data)
        self.hints.suggest(addr, self)

    def cache_invalidate(self, addr: BlockAddress) -> None:
        super().cache_invalidate(addr)
        self.hints.forget(addr, self)
