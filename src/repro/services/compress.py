"""Compression service — an example transform layer (§2.3).

Demonstrates the interception model: blocks written by services above
are compressed on the way down and decompressed on the way up. The
stored block (and therefore its address's ``length``) is the compressed
image; layers above never notice. A one-byte header distinguishes
compressed from stored-raw payloads so incompressible data costs almost
nothing.
"""

from __future__ import annotations

import zlib

from repro.errors import ServiceError
from repro.services.base import Service

_RAW = b"\x00"
_ZLIB = b"\x01"


class CompressionService(Service):
    """zlib-compresses blocks flowing through it."""

    def __init__(self, service_id: int, level: int = 1) -> None:
        super().__init__(service_id, "compress")
        self.level = level
        self.bytes_in = 0
        self.bytes_out = 0

    def transform_block_down(self, writer_id: int, data: bytes) -> bytes:
        compressed = zlib.compress(data, self.level)
        self.bytes_in += len(data)
        if len(compressed) + 1 < len(data):
            out = _ZLIB + compressed
        else:
            out = _RAW + data
        self.bytes_out += len(out)
        return out

    def transform_block_up(self, reader_id: int, data: bytes) -> bytes:
        if not data:
            raise ServiceError("empty compressed block")
        if data[:1] == _ZLIB:
            return zlib.decompress(data[1:])
        if data[:1] == _RAW:
            return data[1:]
        raise ServiceError("unknown compression header %r" % data[:1])

    @property
    def ratio(self) -> float:
        """Stored bytes / input bytes (lower is better)."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 1.0
