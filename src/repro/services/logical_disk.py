"""Logical disk service.

Provides a conventional, overwritable block address space on top of the
append-only log (after De Jonge et al.'s Logical Disk, which §2.3 lists
as a natural Swarm service). An overwrite appends the new contents to
the log, deletes the old block, and updates an in-memory mapping from
logical block number to log address. The mapping itself is recovered
from the automatic CREATE/DELETE records (whose ``create_info`` carries
the logical block number) plus periodic checkpoints, and is patched in
place when the cleaner relocates blocks.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.log.address import BlockAddress
from repro.log.records import Record, RecordType
from repro.services.base import Service

_INFO = struct.Struct(">Q")
_MAP_ENTRY = struct.Struct(">QQII")


class LogicalDiskService(Service):
    """An overwritable virtual disk of variable-size logical blocks."""

    def __init__(self, service_id: int) -> None:
        super().__init__(service_id, "logical-disk")
        self._map: Dict[int, BlockAddress] = {}

    # ------------------------------------------------------------------
    # Disk interface
    # ------------------------------------------------------------------

    def write(self, block_no: int, data: bytes) -> BlockAddress:
        """Write (or overwrite) logical block ``block_no``."""
        if block_no < 0:
            raise ServiceError("negative logical block number")
        info = _INFO.pack(block_no)
        old = self._map.get(block_no)
        addr = self.stack.write_block(self, data, create_info=info)
        if old is not None:
            self.stack.delete_block(self, old, create_info=info)
        self._map[block_no] = addr
        return addr

    def read(self, block_no: int) -> bytes:
        """Read logical block ``block_no``."""
        addr = self._map.get(block_no)
        if addr is None:
            raise ServiceError("logical block %d not written" % block_no)
        return self.stack.read_block(self, addr)

    def read_many(self, block_nos: List[int]) -> List[bytes]:
        """Read several logical blocks in one batched round of retrieves.

        The scattered-small-read path: the blocks' log addresses are
        handed to the stack as one batch, which groups them into one
        multi-range retrieve per server instead of one round trip per
        block. Results come back in request order.
        """
        addrs = []
        for block_no in block_nos:
            addr = self._map.get(block_no)
            if addr is None:
                raise ServiceError("logical block %d not written" % block_no)
            addrs.append(addr)
        return self.stack.read_blocks(self, addrs)

    def trim(self, block_no: int) -> None:
        """Discard logical block ``block_no``."""
        addr = self._map.pop(block_no, None)
        if addr is not None:
            self.stack.delete_block(self, addr,
                                    create_info=_INFO.pack(block_no))

    def exists(self, block_no: int) -> bool:
        """Whether ``block_no`` currently holds data."""
        return block_no in self._map

    def block_numbers(self) -> List[int]:
        """All live logical block numbers, sorted."""
        return sorted(self._map)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        out = [struct.pack(">I", len(self._map))]
        for block_no in sorted(self._map):
            addr = self._map[block_no]
            out.append(_MAP_ENTRY.pack(block_no, addr.fid, addr.offset,
                                       addr.length))
        return b"".join(out)

    def restore(self, state: Optional[bytes], records: List[Record]) -> None:
        self._map = {}
        if state:
            (count,) = struct.unpack_from(">I", state, 0)
            pos = 4
            for _ in range(count):
                block_no, fid, offset, length = _MAP_ENTRY.unpack_from(state, pos)
                self._map[block_no] = BlockAddress(fid, offset, length)
                pos += _MAP_ENTRY.size
        for record in records:
            if record.rtype not in (RecordType.CREATE, RecordType.DELETE):
                continue
            from repro.log.records import decode_record_payload_block

            addr, owner, info = decode_record_payload_block(record.payload)
            if owner != self.service_id or len(info) != _INFO.size:
                continue
            (block_no,) = _INFO.unpack(info)
            if record.rtype == RecordType.CREATE:
                self._map[block_no] = addr
            elif self._map.get(block_no) == addr:
                del self._map[block_no]

    def on_block_moved(self, old_addr: BlockAddress, new_addr: BlockAddress,
                       create_info: bytes) -> None:
        if len(create_info) == _INFO.size:
            (block_no,) = _INFO.unpack(create_info)
            if self._map.get(block_no) == old_addr:
                self._map[block_no] = new_addr
                return
        # No usable hint: fall back to matching by address (rare —
        # only when the creation record spilled fragments AND the
        # cleaner's lookahead missed it).
        for block_no, addr in self._map.items():
            if addr == old_addr:
                self._map[block_no] = new_addr
                return
