"""Client-side block cache with optional fragment prefetch.

The prototype had neither server-side fragment caching nor client
prefetch, which is why it read uncached 4 KB blocks at only 1.7 MB/s
(§3.4); the paper notes both "would greatly improve" read performance.
This service implements the client half: an LRU block cache keyed by
block address, plus optional whole-fragment prefetch — on a miss, the
client fetches the entire enclosing fragment, parses its items locally,
and caches every block in it, turning a run of sequential 4 KB reads
into one 1 MB transfer. The read-bandwidth ablation benchmark measures
exactly this effect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.log.address import BlockAddress
from repro.log.fragment import Fragment
from repro.services.base import Service


class CacheService(Service):
    """LRU cache of blocks, keyed by :class:`BlockAddress`."""

    def __init__(self, service_id: int, capacity_bytes: int = 16 << 20,
                 prefetch_fragments: bool = False) -> None:
        super().__init__(service_id, "cache")
        self.capacity_bytes = capacity_bytes
        self.prefetch_fragments = prefetch_fragments
        self._entries: "OrderedDict[BlockAddress, bytes]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.prefetched_blocks = 0

    # ------------------------------------------------------------------
    # Cache hooks (called by the stack's read path)
    # ------------------------------------------------------------------

    def cache_lookup(self, addr: BlockAddress) -> Optional[bytes]:
        data = self._entries.get(addr)
        if data is not None:
            self._entries.move_to_end(addr)
            self.hits += 1
            return data
        self.misses += 1
        if self.prefetch_fragments:
            self._prefetch(addr.fid)
            data = self._entries.get(addr)
            if data is not None:
                return data
        return None

    def cache_insert(self, addr: BlockAddress, data: bytes) -> None:
        self._insert(addr, data)

    def cache_invalidate(self, addr: BlockAddress) -> None:
        data = self._entries.pop(addr, None)
        if data is not None:
            self._bytes -= len(data)

    # ------------------------------------------------------------------

    def _insert(self, addr: BlockAddress, data: bytes) -> None:
        if len(data) > self.capacity_bytes:
            return
        existing = self._entries.pop(addr, None)
        if existing is not None:
            self._bytes -= len(existing)
        self._entries[addr] = data
        self._bytes += len(data)
        while self._bytes > self.capacity_bytes:
            _old_addr, old_data = self._entries.popitem(last=False)
            self._bytes -= len(old_data)

    def _prefetch(self, fid: int) -> None:
        """Fetch a whole fragment and cache every block inside it."""
        try:
            image = self.stack.log.read_fragment(fid)
            fragment = Fragment.decode(image)
        except Exception:
            return
        for item in fragment.items():
            if item.record is None:
                block_addr = BlockAddress(fid, item.data_offset,
                                          len(item.data))
                self._insert(block_addr, item.data)
                self.prefetched_blocks += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cached_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses), or 0.0 before any lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Empty the cache (keeps statistics)."""
        self._entries.clear()
        self._bytes = 0
