"""Atomic recovery units (ARUs).

An ARU makes a *group* of log writes atomic with respect to client
crashes: after recovery, either all of the group's records are replayed
or none are. This is the service the paper sketches in §2.3, modelled
on Grimm et al.'s atomic recovery units for logical disks.

Mechanism — pure interception, exactly as §2.3 describes:

* While an ARU is open, every record written by a service *above* this
  layer is wrapped in a small envelope tagging it with the ARU id
  before being passed down.
* ``begin``/``commit`` write the ARU service's own (untagged) records.
* During replay, the ARU service first restores its own state (the set
  of committed ARU ids), then, as higher services' record streams pass
  up through :meth:`filter_replay_up`, unwraps the envelopes and drops
  records whose ARU never committed.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Set, Tuple

from repro.errors import AruError
from repro.log.records import Record, RecordType
from repro.services.base import Service

_ENVELOPE_MAGIC = b"ARU1"
_ENVELOPE = struct.Struct(">4sQ")

RT_ARU_BEGIN = RecordType.USER_BASE + 0
RT_ARU_COMMIT = RecordType.USER_BASE + 1


class AruService(Service):
    """Failure atomicity across multiple log writes."""

    def __init__(self, service_id: int) -> None:
        super().__init__(service_id, "aru")
        self._next_aru = 1
        self._open_aru: Optional[int] = None
        self._committed: Set[int] = set()

    # ------------------------------------------------------------------
    # ARU control
    # ------------------------------------------------------------------

    @property
    def current_aru(self) -> Optional[int]:
        """Id of the open ARU, or None."""
        return self._open_aru

    def begin(self) -> int:
        """Open an ARU; records written above this layer are tagged with
        it until :meth:`commit` or :meth:`abort`."""
        if self._open_aru is not None:
            raise AruError("ARU %d is already open" % self._open_aru)
        aru_id = self._next_aru
        self._next_aru += 1
        self._open_aru = aru_id
        self.stack.write_record(self, RT_ARU_BEGIN,
                                struct.pack(">Q", aru_id))
        return aru_id

    def commit(self) -> None:
        """Commit the open ARU and make its records durable.

        The commit record is flushed synchronously: atomicity would mean
        little if the commit itself could linger in a volatile buffer.
        """
        if self._open_aru is None:
            raise AruError("no open ARU to commit")
        aru_id, self._open_aru = self._open_aru, None
        self._committed.add(aru_id)
        self.stack.write_record(self, RT_ARU_COMMIT,
                                struct.pack(">Q", aru_id))
        self.stack.flush().wait()

    def abort(self) -> None:
        """Abandon the open ARU; its tagged records will be dropped at
        the next replay (nothing needs to be written)."""
        if self._open_aru is None:
            raise AruError("no open ARU to abort")
        self._open_aru = None

    # ------------------------------------------------------------------
    # Interception
    # ------------------------------------------------------------------

    def transform_record_down(self, writer_id: int, rtype: int,
                              payload: bytes) -> Tuple[int, bytes]:
        if self._open_aru is None or writer_id == self.service_id:
            return rtype, payload
        return rtype, _ENVELOPE.pack(_ENVELOPE_MAGIC, self._open_aru) + payload

    def transform_create_info_down(self, writer_id: int, info: bytes) -> bytes:
        if self._open_aru is None or writer_id == self.service_id:
            return info
        return _ENVELOPE.pack(_ENVELOPE_MAGIC, self._open_aru) + info

    @staticmethod
    def _unwrap(data: bytes):
        """Return ``(aru_id, inner)`` if ``data`` is enveloped, else None."""
        if len(data) >= _ENVELOPE.size and data[:4] == _ENVELOPE_MAGIC:
            _magic, aru_id = _ENVELOPE.unpack_from(data, 0)
            return aru_id, data[_ENVELOPE.size:]
        return None

    def filter_replay_up(self, records: List[Record]) -> List[Record]:
        from repro.log.records import (
            SERVICE_LOG_LAYER,
            decode_record_payload_block,
            encode_record_payload_block,
        )

        passed: List[Record] = []
        for record in records:
            if (record.service_id == SERVICE_LOG_LAYER
                    and record.rtype in (RecordType.CREATE, RecordType.DELETE)):
                addr, owner, info = decode_record_payload_block(record.payload)
                unwrapped = self._unwrap(info)
                if unwrapped is not None:
                    aru_id, inner = unwrapped
                    if aru_id not in self._committed:
                        continue
                    record = Record(record.lsn, record.service_id,
                                    record.rtype,
                                    encode_record_payload_block(addr, owner,
                                                                inner))
            else:
                unwrapped = self._unwrap(record.payload)
                if unwrapped is not None:
                    aru_id, inner = unwrapped
                    if aru_id not in self._committed:
                        continue
                    record = Record(record.lsn, record.service_id,
                                    record.rtype, inner)
            passed.append(record)
        return passed

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        ids = sorted(self._committed)
        return struct.pack(">QI", self._next_aru, len(ids)) + b"".join(
            struct.pack(">Q", aru_id) for aru_id in ids)

    def restore(self, state: Optional[bytes], records: List[Record]) -> None:
        self._committed = set()
        self._next_aru = 1
        self._open_aru = None
        if state:
            next_aru, count = struct.unpack_from(">QI", state, 0)
            self._next_aru = next_aru
            pos = 12
            for _ in range(count):
                (aru_id,) = struct.unpack_from(">Q", state, pos)
                self._committed.add(aru_id)
                pos += 8
        for record in records:
            if record.rtype == RT_ARU_BEGIN:
                (aru_id,) = struct.unpack_from(">Q", record.payload, 0)
                self._next_aru = max(self._next_aru, aru_id + 1)
            elif record.rtype == RT_ARU_COMMIT:
                (aru_id,) = struct.unpack_from(">Q", record.payload, 0)
                self._committed.add(aru_id)
