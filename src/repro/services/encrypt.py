"""Encryption service — another of §2.3's example transform layers.

Blocks written by services above are encrypted on the way down and
decrypted on the way up, so storage servers only ever hold ciphertext.
The byte-range ACLs (§2.4.2) control *access*; this layer protects
*contents* even from the servers themselves.

The cipher is a keyed SHA-256 keystream with a per-block random nonce
(CTR-style), plus a truncated keyed digest for integrity. The offline
environment has no real crypto library; this construction demonstrates
the service mechanism faithfully — same data flow, same overhead shape
— and is **not** an audited cipher. Swap ``_keystream`` for AES-CTR in
production.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct

from repro.errors import ServiceError
from repro.services.base import Service

_MAGIC = b"SWE1"
_NONCE_LEN = 16
_TAG_LEN = 16
_HEADER = len(_MAGIC) + _NONCE_LEN

OVERHEAD = _HEADER + _TAG_LEN
"""Bytes added to every stored block."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream: SHA-256(key ‖ nonce ‖ counter) blocks."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(key + nonce
                              + struct.pack(">Q", counter)).digest()
        counter += 1
    return bytes(out[:length])


def _xor(data: bytes, stream: bytes) -> bytes:
    return (int.from_bytes(data, "little")
            ^ int.from_bytes(stream, "little")).to_bytes(
        max(len(data), 1) if data else 0, "little")[:len(data)] \
        if data else b""


class EncryptionService(Service):
    """Encrypts every block flowing through it."""

    def __init__(self, service_id: int, key: bytes,
                 nonce_source=os.urandom) -> None:
        super().__init__(service_id, "encrypt")
        if len(key) < 16:
            raise ServiceError("key must be at least 16 bytes")
        self._key = bytes(key)
        self._nonce_source = nonce_source
        self.blocks_encrypted = 0
        self.blocks_decrypted = 0

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        mac = hmac.new(self._key, nonce + ciphertext, hashlib.sha256)
        return mac.digest()[:_TAG_LEN]

    def transform_block_down(self, writer_id: int, data: bytes) -> bytes:
        nonce = self._nonce_source(_NONCE_LEN)
        ciphertext = _xor(data, _keystream(self._key, nonce, len(data)))
        self.blocks_encrypted += 1
        return _MAGIC + nonce + ciphertext + self._tag(nonce, ciphertext)

    def transform_block_up(self, reader_id: int, data: bytes) -> bytes:
        # The read path may hand us a zero-copy view; the header/tag
        # arithmetic below concatenates, so take ownership here.
        if not isinstance(data, bytes):
            data = bytes(data)
        if len(data) < OVERHEAD or data[:len(_MAGIC)] != _MAGIC:
            raise ServiceError("not an encrypted block")
        nonce = data[len(_MAGIC):_HEADER]
        ciphertext = data[_HEADER:-_TAG_LEN]
        tag = data[-_TAG_LEN:]
        if not hmac.compare_digest(tag, self._tag(nonce, ciphertext)):
            raise ServiceError("encrypted block failed integrity check")
        self.blocks_decrypted += 1
        return _xor(ciphertext, _keystream(self._key, nonce,
                                           len(ciphertext)))
