"""The service interface.

A service is one layer in a client's storage stack. Layers below a
writer may transform what it writes (compression, ARU tagging); layers
below a reader undo those transforms; during replay, each layer filters
the record stream travelling upward (the ARU service drops records of
uncommitted ARUs). The paper places no restriction on inter-layer
interfaces beyond this interception model, and neither do we.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.log.address import BlockAddress
from repro.log.records import Record


class Service:
    """Base class for stackable services.

    Subclasses override only the hooks they care about; the defaults are
    all identity/no-op. ``service_id`` must be unique within one
    client's stack and ≥ 1 (0 is the log layer itself).
    """

    def __init__(self, service_id: int, name: str = "") -> None:
        if service_id < 1:
            raise ValueError("service ids start at 1")
        self.service_id = service_id
        self.name = name or type(self).__name__
        self.stack = None

    def bind(self, stack) -> None:
        """Called when the service is pushed onto a stack."""
        self.stack = stack

    # -- write-path interception (top-down) -------------------------------

    def transform_block_down(self, writer_id: int, data: bytes) -> bytes:
        """Transform a block written by a layer above, on its way down."""
        return data

    def transform_record_down(self, writer_id: int, rtype: int,
                              payload: bytes) -> Tuple[int, bytes]:
        """Transform a record written by a layer above, on its way down."""
        return rtype, payload

    def transform_create_info_down(self, writer_id: int, info: bytes) -> bytes:
        """Transform the ``create_info`` of a block written above.

        The log layer embeds ``create_info`` in the automatic CREATE
        record, so this is how a layer (e.g. the ARU service) extends
        its record interception to block creations.
        """
        return info

    # -- read-path interception (bottom-up) --------------------------------

    def transform_block_up(self, reader_id: int, data: bytes) -> bytes:
        """Undo :meth:`transform_block_down` on a block being read."""
        return data

    def filter_replay_up(self, records: List[Record]) -> List[Record]:
        """Filter/transform the replayed record stream travelling up."""
        return records

    # -- cache hooks ----------------------------------------------------------

    def cache_lookup(self, addr: BlockAddress) -> Optional[bytes]:
        """Return cached (already down-transformed) bytes for ``addr``."""
        return None

    def cache_insert(self, addr: BlockAddress, data: bytes) -> None:
        """Offer freshly read bytes for caching."""

    def cache_invalidate(self, addr: BlockAddress) -> None:
        """Drop any cached copy of ``addr``."""

    # -- lifecycle -----------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        """Serialize a consistent snapshot of this service's state."""
        return b""

    def restore(self, state: Optional[bytes], records: List[Record]) -> None:
        """Rebuild state from the last checkpoint plus replayed records."""

    def on_block_moved(self, old_addr: BlockAddress, new_addr: BlockAddress,
                       create_info: bytes) -> None:
        """The cleaner moved one of this service's blocks."""

    def on_checkpoint_demand(self) -> None:
        """The cleaner needs a fresh checkpoint; write one now.

        Ignoring this is legal but perilous: the cleaner will eventually
        reclaim the service's un-checkpointed records anyway (§2.2).
        """
        if self.stack is not None:
            self.stack.checkpoint(self)
