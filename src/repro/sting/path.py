"""Path manipulation for Sting (UNIX-style, always absolute)."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import FileNotFoundFsError


def normalize(path: str) -> str:
    """Normalize ``path`` to a canonical absolute form.

    Collapses repeated slashes and resolves ``.`` and ``..`` lexically
    (Sting has no symlinks, so lexical resolution is exact).
    """
    if not path.startswith("/"):
        raise FileNotFoundFsError("paths must be absolute: %r" % path)
    parts: List[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


def split_path(path: str) -> List[str]:
    """Component list of a normalized path (empty for the root)."""
    normalized = normalize(path)
    if normalized == "/":
        return []
    return normalized[1:].split("/")


def dirname(path: str) -> str:
    """Parent directory of ``path``."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    """Final component of ``path`` (empty for the root)."""
    parts = split_path(path)
    return parts[-1] if parts else ""


def split_parent(path: str) -> Tuple[str, str]:
    """Return ``(parent, name)``; name is empty for the root."""
    return dirname(path), basename(path)
