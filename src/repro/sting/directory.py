"""Directory content codec.

A directory's entries are ordinary file content of its inode (stored
through the same block machinery as file data), serialized as a sorted
name→inode table. Keeping directories "just files" means the cleaner,
recovery, and parity machinery need no special cases for them.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.errors import FileSystemError
from repro.util.packing import pack_str, unpack_str

_COUNT = struct.Struct(">I")
_INO = struct.Struct(">Q")

MAX_NAME_LEN = 255


def validate_name(name: str) -> None:
    """Reject names that cannot be directory entries."""
    if not name or name in (".", ".."):
        raise FileSystemError("invalid file name %r" % name)
    if "/" in name:
        raise FileSystemError("file name may not contain '/': %r" % name)
    if len(name.encode("utf-8")) > MAX_NAME_LEN:
        raise FileSystemError("file name too long: %r" % name)


def encode_entries(entries: Dict[str, int]) -> bytes:
    """Serialize a directory's name→ino table."""
    out = [_COUNT.pack(len(entries))]
    for name in sorted(entries):
        out.append(pack_str(name))
        out.append(_INO.pack(entries[name]))
    return b"".join(out)


def decode_entries(data: bytes) -> Dict[str, int]:
    """Parse a directory content blob."""
    if not data:
        return {}
    try:
        (count,) = _COUNT.unpack_from(data, 0)
        pos = _COUNT.size
        entries: Dict[str, int] = {}
        for _ in range(count):
            name, pos = unpack_str(data, pos)
            (ino,) = _INO.unpack_from(data, pos)
            pos += _INO.size
            entries[name] = ino
        return entries
    except (struct.error, ValueError) as exc:
        raise FileSystemError("corrupt directory content") from exc
