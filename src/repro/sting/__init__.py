"""Sting: a local file system built on Swarm (§3.1).

Sting provides the standard UNIX file-system interface, but its data
live in the client's Swarm log instead of on a local disk — giving a
single client Swarm's striped performance and parity-protected
reliability for free. Sting "borrows heavily from Sprite LFS" while
being far simpler: log management, storage, cleaning, and
reconstruction are all handled by the layers below it.

Each instance is confined to one client (no file sharing between
clients), exactly like the prototype.
"""

from repro.sting.fs import StingFileSystem
from repro.sting.inode import FileType, Inode
from repro.sting.path import basename, dirname, normalize, split_path

__all__ = [
    "StingFileSystem",
    "FileType",
    "Inode",
    "normalize",
    "split_path",
    "dirname",
    "basename",
]
