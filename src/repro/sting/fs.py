"""The Sting file system service.

Implements the standard UNIX file-system operations — create, open,
read, write, mkdir, unlink, rename, stat, truncate — as a Swarm service
layered on the log. Like Sprite LFS it never overwrites: every change
appends new data blocks and a new inode block, then updates the
in-memory *inode map* (ino → inode-block address). The inode map is the
only root metadata; it is checkpointed periodically and rebuilt after a
crash by replaying the automatic CREATE/DELETE records, whose
``create_info`` carries ``(ino, block-index)``.

What Sting does *not* do is the point of the paper: no log management,
no striping, no parity, no cleaning, no reconstruction — the layers
below provide all of it.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    BadFileDescriptorError,
    DirectoryNotEmptyFsError,
    FileExistsFsError,
    FileNotFoundFsError,
    FileSystemError,
    IsADirectoryFsError,
    NotADirectoryFsError,
)
from repro.log.address import BlockAddress
from repro.log.records import Record, RecordType, decode_record_payload_block
from repro.services.base import Service
from repro.sting import directory as dircodec
from repro.sting.inode import (
    FileType,
    INODE_BLOCK_INDEX,
    Inode,
    decode_create_info,
    encode_create_info,
)
from repro.sting.path import normalize, split_parent, split_path

ROOT_INO = 1

_IMAP_ENTRY = struct.Struct(">QQII")


class OpenFile:
    """One open file description (position + inode reference)."""

    def __init__(self, fd: int, ino: int, append: bool = False) -> None:
        self.fd = fd
        self.ino = ino
        self.pos = 0
        self.append = append
        self.closed = False


class StingFileSystem(Service):
    """A UNIX-like local file system whose disk is a Swarm log."""

    def __init__(self, service_id: int, block_size: int = 8192) -> None:
        super().__init__(service_id, "sting")
        self.block_size = block_size
        self._imap: Dict[int, BlockAddress] = {}
        self._inodes: Dict[int, Inode] = {}
        self._dirty: Set[int] = set()
        self._patches: Dict[Tuple[int, int], BlockAddress] = {}
        self._next_ino = ROOT_INO
        self._next_fd = 3
        self._fds: Dict[int, OpenFile] = {}
        self._clock = 0
        self.formatted = False

    # ------------------------------------------------------------------
    # Mount lifecycle
    # ------------------------------------------------------------------

    def format(self) -> None:
        """Create an empty file system (a fresh root directory)."""
        root = Inode(ino=ROOT_INO, ftype=FileType.DIRECTORY,
                     block_size=self.block_size)
        self._inodes[ROOT_INO] = root
        self._next_ino = ROOT_INO + 1
        self._write_dir_entries(root, {})
        self._flush_inode(root)
        self.formatted = True

    def sync(self) -> None:
        """Flush dirty inodes and force buffered log data to the servers."""
        for ino in sorted(self._dirty):
            inode = self._inodes.get(ino)
            if inode is not None:
                self._flush_inode(inode)
        self._dirty.clear()
        self.stack.flush().wait()

    def unmount(self) -> None:
        """Sync everything and write a checkpoint (clean shutdown)."""
        self.sync()
        self.stack.checkpoint(self).wait()

    # ------------------------------------------------------------------
    # Inode plumbing
    # ------------------------------------------------------------------

    def _now(self) -> int:
        self._clock += 1
        return self._clock

    def _load_inode(self, ino: int) -> Inode:
        inode = self._inodes.get(ino)
        if inode is None:
            addr = self._imap.get(ino)
            if addr is None:
                raise FileNotFoundFsError("no inode %d" % ino)
            inode = Inode.decode(self.stack.read_block(self, addr))
            self._inodes[ino] = inode
        self._apply_patches(inode)
        return inode

    def _apply_patches(self, inode: Inode) -> None:
        """Fold replayed/cleaner block moves into a loaded inode."""
        stale = [key for key in self._patches if key[0] == inode.ino]
        for key in stale:
            _ino, index = key
            addr = self._patches.pop(key)
            if index != INODE_BLOCK_INDEX:
                inode.blocks[index] = addr

    def _flush_inode(self, inode: Inode) -> None:
        """Append the inode's current image and repoint the inode map."""
        old = self._imap.get(inode.ino)
        addr = self.stack.write_block(
            self, inode.encode(),
            create_info=encode_create_info(inode.ino, INODE_BLOCK_INDEX))
        self._imap[inode.ino] = addr
        if old is not None:
            self.stack.delete_block(self, old, create_info=encode_create_info(
                inode.ino, INODE_BLOCK_INDEX))
        self._dirty.discard(inode.ino)

    def _mark_dirty(self, inode: Inode) -> None:
        inode.mtime = self._now()
        self._dirty.add(inode.ino)

    def _allocate_ino(self) -> int:
        self._next_ino += 1
        return self._next_ino - 1

    # ------------------------------------------------------------------
    # Directory plumbing
    # ------------------------------------------------------------------

    def _read_dir_entries(self, inode: Inode) -> Dict[str, int]:
        if not inode.is_dir:
            raise NotADirectoryFsError("inode %d is not a directory" % inode.ino)
        return dircodec.decode_entries(self._read_all(inode))

    def _write_dir_entries(self, inode: Inode, entries: Dict[str, int]) -> None:
        self._write_all(inode, dircodec.encode_entries(entries))

    def _lookup(self, path: str) -> int:
        """Resolve a path to an inode number."""
        ino = ROOT_INO
        for part in split_path(path):
            inode = self._load_inode(ino)
            entries = self._read_dir_entries(inode)
            if part not in entries:
                raise FileNotFoundFsError("no such path: %r" % path)
            ino = entries[part]
        return ino

    def _lookup_parent(self, path: str) -> Tuple[Inode, str]:
        parent_path, name = split_parent(path)
        if not name:
            raise FileSystemError("operation on the root directory")
        dircodec.validate_name(name)
        parent = self._load_inode(self._lookup(parent_path))
        if not parent.is_dir:
            raise NotADirectoryFsError("%r is not a directory" % parent_path)
        return parent, name

    # ------------------------------------------------------------------
    # File content plumbing
    # ------------------------------------------------------------------

    def _read_block(self, inode: Inode, index: int) -> bytes:
        addr = inode.blocks.get(index)
        if addr is None:
            # Sparse hole: zero-filled up to the block the size implies.
            return b""
        return self.stack.read_block(self, addr)

    def _write_block(self, inode: Inode, index: int, data: bytes) -> None:
        info = encode_create_info(inode.ino, index)
        old = inode.blocks.get(index)
        addr = self.stack.write_block(self, data, create_info=info)
        inode.blocks[index] = addr
        if old is not None:
            self.stack.delete_block(self, old, create_info=info)

    def _read_all(self, inode: Inode) -> bytes:
        return self._read_span(inode, 0, inode.size)

    def _read_span(self, inode: Inode, offset: int, length: int) -> bytes:
        length = max(0, min(length, inode.size - offset))
        if length <= 0:
            return b""
        bs = inode.block_size
        out = bytearray()
        index = offset // bs
        pos = offset
        end = offset + length
        while pos < end:
            block = self._read_block(inode, index)
            block_start = index * bs
            want_from = pos - block_start
            want_to = min(end - block_start, bs)
            chunk = block[want_from:want_to]
            # Zero-fill sparse/short blocks.
            if len(chunk) < want_to - want_from:
                chunk = chunk + b"\x00" * (want_to - want_from - len(chunk))
            out += chunk
            index += 1
            pos = block_start + bs
        return bytes(out)

    def _write_span(self, inode: Inode, offset: int, data: bytes) -> None:
        if offset < 0:
            raise FileSystemError("negative write offset")
        if not data:
            return
        bs = inode.block_size
        pos = offset
        remaining = memoryview(bytes(data))
        while remaining.nbytes > 0:
            index = pos // bs
            block_start = index * bs
            in_block_off = pos - block_start
            take = min(bs - in_block_off, remaining.nbytes)
            chunk = bytes(remaining[:take])
            if in_block_off == 0 and take == bs:
                new_block = chunk
            else:
                old = self._read_block(inode, index)
                if len(old) < in_block_off:
                    old = old + b"\x00" * (in_block_off - len(old))
                new_block = old[:in_block_off] + chunk + old[in_block_off + take:]
            self._write_block(inode, index, new_block)
            remaining = remaining[take:]
            pos += take
        inode.size = max(inode.size, offset + len(data))
        self._mark_dirty(inode)

    def _write_all(self, inode: Inode, data: bytes) -> None:
        """Replace a file's entire contents."""
        self._truncate_blocks(inode, 0)
        inode.size = 0
        if data:
            self._write_span(inode, 0, data)
        else:
            self._mark_dirty(inode)

    def _truncate_blocks(self, inode: Inode, keep_blocks: int) -> None:
        for index in [i for i in inode.blocks if i >= keep_blocks]:
            addr = inode.blocks.pop(index)
            self.stack.delete_block(self, addr,
                                    create_info=encode_create_info(
                                        inode.ino, index))

    # ------------------------------------------------------------------
    # Public API: namespace operations
    # ------------------------------------------------------------------

    def mkdir(self, path: str) -> int:
        """Create a directory; returns its inode number."""
        parent, name = self._lookup_parent(path)
        entries = self._read_dir_entries(parent)
        if name in entries:
            raise FileExistsFsError("path exists: %r" % path)
        child = Inode(ino=self._allocate_ino(), ftype=FileType.DIRECTORY,
                      block_size=self.block_size)
        self._inodes[child.ino] = child
        self._write_dir_entries(child, {})
        entries[name] = child.ino
        self._write_dir_entries(parent, entries)
        return child.ino

    def create(self, path: str, data: bytes = b"") -> int:
        """Create a regular file (optionally with contents); returns ino."""
        parent, name = self._lookup_parent(path)
        entries = self._read_dir_entries(parent)
        if name in entries:
            raise FileExistsFsError("path exists: %r" % path)
        child = Inode(ino=self._allocate_ino(), ftype=FileType.FILE,
                      block_size=self.block_size)
        self._inodes[child.ino] = child
        self._mark_dirty(child)
        if data:
            self._write_span(child, 0, data)
        entries[name] = child.ino
        self._write_dir_entries(parent, entries)
        return child.ino

    def unlink(self, path: str) -> None:
        """Remove a regular file and delete its blocks."""
        parent, name = self._lookup_parent(path)
        entries = self._read_dir_entries(parent)
        if name not in entries:
            raise FileNotFoundFsError("no such path: %r" % path)
        inode = self._load_inode(entries[name])
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        self._remove_inode(inode)
        del entries[name]
        self._write_dir_entries(parent, entries)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._lookup_parent(path)
        entries = self._read_dir_entries(parent)
        if name not in entries:
            raise FileNotFoundFsError("no such path: %r" % path)
        inode = self._load_inode(entries[name])
        if not inode.is_dir:
            raise NotADirectoryFsError("%r is not a directory" % path)
        if self._read_dir_entries(inode):
            raise DirectoryNotEmptyFsError("directory not empty: %r" % path)
        self._remove_inode(inode)
        del entries[name]
        self._write_dir_entries(parent, entries)

    def _remove_inode(self, inode: Inode) -> None:
        self._truncate_blocks(inode, 0)
        addr = self._imap.pop(inode.ino, None)
        if addr is not None:
            self.stack.delete_block(self, addr, create_info=encode_create_info(
                inode.ino, INODE_BLOCK_INDEX))
        self._inodes.pop(inode.ino, None)
        self._dirty.discard(inode.ino)

    def rename(self, old_path: str, new_path: str) -> None:
        """Move/rename a file or directory (POSIX rename semantics)."""
        src_parent, src_name = self._lookup_parent(old_path)
        src_entries = self._read_dir_entries(src_parent)
        if src_name not in src_entries:
            raise FileNotFoundFsError("no such path: %r" % old_path)
        moving_ino = src_entries[src_name]
        dst_parent, dst_name = self._lookup_parent(new_path)
        same_dir = dst_parent.ino == src_parent.ino
        dst_entries = src_entries if same_dir else self._read_dir_entries(dst_parent)
        existing = dst_entries.get(dst_name)
        if existing is not None and existing != moving_ino:
            target = self._load_inode(existing)
            if target.is_dir:
                if self._read_dir_entries(target):
                    raise DirectoryNotEmptyFsError(
                        "rename target not empty: %r" % new_path)
            self._remove_inode(target)
        del src_entries[src_name]
        dst_entries[dst_name] = moving_ino
        self._write_dir_entries(src_parent, src_entries)
        if not same_dir:
            self._write_dir_entries(dst_parent, dst_entries)

    def listdir(self, path: str) -> List[str]:
        """Sorted names in a directory."""
        inode = self._load_inode(self._lookup(path))
        return sorted(self._read_dir_entries(inode))

    def exists(self, path: str) -> bool:
        """Whether ``path`` resolves."""
        try:
            self._lookup(path)
            return True
        except FileNotFoundFsError:
            return False

    def stat(self, path: str) -> Inode:
        """The inode behind ``path`` (callers must not mutate it)."""
        return self._load_inode(self._lookup(path))

    def walk(self, path: str = "/") -> Iterator[Tuple[str, List[str], List[str]]]:
        """os.walk-style traversal: yields (dir, subdirs, files)."""
        inode = self._load_inode(self._lookup(path))
        entries = self._read_dir_entries(inode)
        dirs, files = [], []
        for name, ino in sorted(entries.items()):
            child = self._load_inode(ino)
            (dirs if child.is_dir else files).append(name)
        yield normalize(path), dirs, files
        for name in dirs:
            child_path = normalize(path + "/" + name)
            yield from self.walk(child_path)

    # ------------------------------------------------------------------
    # Public API: file descriptors and I/O
    # ------------------------------------------------------------------

    def open(self, path: str, create: bool = False,
             append: bool = False) -> int:
        """Open a regular file; returns a file descriptor."""
        try:
            ino = self._lookup(path)
        except FileNotFoundFsError:
            if not create:
                raise
            ino = self.create(path)
        inode = self._load_inode(ino)
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        fd = self._next_fd
        self._next_fd += 1
        handle = OpenFile(fd, ino, append=append)
        if append:
            handle.pos = inode.size
        self._fds[fd] = handle
        return fd

    def close(self, fd: int) -> None:
        """Close a file descriptor."""
        handle = self._handle(fd)
        handle.closed = True
        del self._fds[fd]

    def read(self, fd: int, length: int) -> bytes:
        """Read up to ``length`` bytes at the descriptor's position."""
        handle = self._handle(fd)
        inode = self._load_inode(handle.ino)
        data = self._read_span(inode, handle.pos, length)
        handle.pos += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        """Write ``data`` at the descriptor's position; returns count."""
        handle = self._handle(fd)
        inode = self._load_inode(handle.ino)
        if handle.append:
            handle.pos = inode.size
        self._write_span(inode, handle.pos, data)
        handle.pos += len(data)
        return len(data)

    def seek(self, fd: int, pos: int) -> int:
        """Set the descriptor's position."""
        handle = self._handle(fd)
        if pos < 0:
            raise FileSystemError("negative seek position")
        handle.pos = pos
        return pos

    def truncate(self, path: str, size: int) -> None:
        """Shrink or extend a file to ``size`` bytes."""
        inode = self._load_inode(self._lookup(path))
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        if size < inode.size:
            keep = (size + inode.block_size - 1) // inode.block_size
            # Rewrite the boundary block shortened.
            if size % inode.block_size and (keep - 1) in inode.blocks:
                boundary = self._read_block(inode, keep - 1)
                self._write_block(inode, keep - 1,
                                  boundary[:size % inode.block_size])
            self._truncate_blocks(inode, keep)
        inode.size = size
        self._mark_dirty(inode)

    def _handle(self, fd: int) -> OpenFile:
        handle = self._fds.get(fd)
        if handle is None or handle.closed:
            raise BadFileDescriptorError("bad file descriptor %d" % fd)
        return handle

    # -- whole-file conveniences ------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Create or replace ``path`` with ``data``."""
        if self.exists(path):
            inode = self._load_inode(self._lookup(path))
            if inode.is_dir:
                raise IsADirectoryFsError("%r is a directory" % path)
            self._write_all(inode, data)
        else:
            self.create(path, data)

    def read_file(self, path: str) -> bytes:
        """Entire contents of ``path``."""
        inode = self._load_inode(self._lookup(path))
        if inode.is_dir:
            raise IsADirectoryFsError("%r is a directory" % path)
        return self._read_all(inode)

    # ------------------------------------------------------------------
    # Service lifecycle (checkpoints, replay, cleaner moves)
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        """Serialize the inode map (dirty inodes are flushed first)."""
        for ino in sorted(self._dirty):
            inode = self._inodes.get(ino)
            if inode is not None:
                self._flush_inode(inode)
        self._dirty.clear()
        out = [struct.pack(">QQI", self._next_ino, self._clock,
                           len(self._imap))]
        for ino in sorted(self._imap):
            addr = self._imap[ino]
            out.append(_IMAP_ENTRY.pack(ino, addr.fid, addr.offset,
                                        addr.length))
        return b"".join(out)

    def restore(self, state: Optional[bytes], records: List[Record]) -> None:
        """Rebuild the inode map from a checkpoint plus replayed records."""
        self._imap = {}
        self._inodes = {}
        self._dirty = set()
        self._patches = {}
        self._fds = {}
        self._next_ino = ROOT_INO + 1
        if state:
            self._next_ino, self._clock, count = struct.unpack_from(">QQI",
                                                                    state, 0)
            pos = 20
            for _ in range(count):
                ino, fid, offset, length = _IMAP_ENTRY.unpack_from(state, pos)
                self._imap[ino] = BlockAddress(fid, offset, length)
                pos += _IMAP_ENTRY.size
        for record in records:
            if record.rtype not in (RecordType.CREATE, RecordType.DELETE):
                continue
            addr, owner, info = decode_record_payload_block(record.payload)
            if owner != self.service_id:
                continue
            decoded = decode_create_info(info)
            if decoded is None:
                continue
            ino, index = decoded
            if record.rtype == RecordType.CREATE:
                self._next_ino = max(self._next_ino, ino + 1)
                if index == INODE_BLOCK_INDEX:
                    self._imap[ino] = addr
                else:
                    self._patches[(ino, index)] = addr
            else:  # DELETE
                if index == INODE_BLOCK_INDEX and self._imap.get(ino) == addr:
                    del self._imap[ino]
                elif self._patches.get((ino, index)) == addr:
                    del self._patches[(ino, index)]
        self.formatted = ROOT_INO in self._imap

    def on_block_moved(self, old_addr: BlockAddress, new_addr: BlockAddress,
                       create_info: bytes) -> None:
        """Cleaner relocated one of our blocks: repoint metadata."""
        decoded = decode_create_info(create_info)
        if decoded is None:
            return
        ino, index = decoded
        if index == INODE_BLOCK_INDEX:
            if self._imap.get(ino) == old_addr:
                self._imap[ino] = new_addr
        else:
            inode = self._inodes.get(ino)
            if inode is not None and inode.blocks.get(index) == old_addr:
                inode.blocks[index] = new_addr
                self._dirty.add(ino)
            else:
                self._patches[(ino, index)] = new_addr
