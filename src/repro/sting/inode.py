"""Inodes: per-file metadata, stored as blocks in the log.

An inode records a file's type, size, timestamps, and the log address
of every file block. When any of that changes, Sting appends a *new*
inode block (the log is append-only) and updates its in-memory inode
map; the old inode block is deleted so the cleaner can reclaim it —
the same no-overwrite discipline as Sprite LFS.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict

from repro.errors import FileSystemError
from repro.log.address import BlockAddress

INODE_BLOCK_INDEX = 0xFFFFFFFF
"""``create_info`` index value marking an inode block (vs a data block)."""

_INFO = struct.Struct(">QI")


def encode_create_info(ino: int, index: int) -> bytes:
    """The ``create_info`` Sting attaches to every block it writes.

    Carries the inode number and the file block index (or
    ``INODE_BLOCK_INDEX``), so replay and cleaner notifications can find
    the block in Sting's metadata — precisely the paper's example of
    what creation records are for.
    """
    return _INFO.pack(ino, index)


def decode_create_info(info: bytes):
    """Inverse of :func:`encode_create_info`; None if not Sting's."""
    if len(info) != _INFO.size:
        return None
    return _INFO.unpack(info)


class FileType(IntEnum):
    """What an inode describes."""

    FILE = 1
    DIRECTORY = 2


_HEAD = struct.Struct(">QBIQQI")
_BLOCK_PTR = struct.Struct(">IQII")


@dataclass
class Inode:
    """One file or directory."""

    ino: int
    ftype: FileType
    size: int = 0
    mtime: int = 0
    block_size: int = 8192
    blocks: Dict[int, BlockAddress] = field(default_factory=dict)

    def block_count(self) -> int:
        """Number of file blocks the current size implies."""
        if self.size == 0:
            return 0
        return (self.size + self.block_size - 1) // self.block_size

    @property
    def is_dir(self) -> bool:
        """True for directories."""
        return self.ftype == FileType.DIRECTORY

    def encode(self) -> bytes:
        """Serialize for storage as a log block."""
        out = [_HEAD.pack(self.ino, int(self.ftype), self.block_size,
                          self.size, self.mtime, len(self.blocks))]
        for index in sorted(self.blocks):
            addr = self.blocks[index]
            out.append(_BLOCK_PTR.pack(index, addr.fid, addr.offset,
                                       addr.length))
        return b"".join(out)

    @classmethod
    def decode(cls, data: bytes) -> "Inode":
        """Parse an inode block."""
        try:
            ino, ftype, block_size, size, mtime, count = _HEAD.unpack_from(data, 0)
        except struct.error as exc:
            raise FileSystemError("corrupt inode block") from exc
        blocks: Dict[int, BlockAddress] = {}
        pos = _HEAD.size
        for _ in range(count):
            index, fid, offset, length = _BLOCK_PTR.unpack_from(data, pos)
            blocks[index] = BlockAddress(fid, offset, length)
            pos += _BLOCK_PTR.size
        return cls(ino=ino, ftype=FileType(ftype), size=size, mtime=mtime,
                   block_size=block_size, blocks=blocks)
