"""Bounded retries with exponential backoff for transport calls.

The paper's availability story assumes a server failure is *detected*
and routed around; real deployments also see servers that are merely
flaky — a dropped request, a lost reply, a transient refusal. This
module adds the standard remedy: a :class:`RetryPolicy` (bounded
attempts, exponential backoff with seeded jitter, a per-call deadline)
applied by a :class:`RetryingTransport` wrapper that any client-side
component (log layer, reader, reconstructor) can interpose over its
real transport.

Time handling: the functional transports are timeless, so backoff is
*virtual* — it is charged to the wrapped transport's deferred-time
ledger when one exists (:class:`~repro.rpc.transport.SimTransport`),
and merely accounted otherwise. No wall-clock sleeping ever happens,
which keeps tests fast and the simulated figures honest.

At-least-once hazards: a store whose *response* was lost has already
executed, so its retry fails with ``FragmentExistsError``. The wrapper
resolves the ambiguity with a read-repair: fetch the committed bytes,
accept them if they match the intent, otherwise delete the damaged
(torn) fragment and store it again. Deletes are idempotent the same
way — ``FragmentNotFoundError`` on a retried delete means the first
attempt won.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro import errors
from repro.rpc import messages as m
from repro.rpc.transport import CompletedFuture, Transport

TRANSIENT_ERRORS = (errors.ServerUnavailableError,)
"""Errors worth retrying: the server may answer the next attempt.
Everything else (not found, exists, ACL denials, bad requests) is a
definitive answer and is surfaced immediately."""


def wrap_transport(transport, policy: Optional["RetryPolicy"], monitor=None,
                   sleep=None):
    """Interpose a :class:`RetryingTransport` when a policy is given.

    The one canonical way client components (log layer, reader,
    reconstructor) accept an optional retry policy: ``None`` returns
    the transport unchanged, anything else wraps it exactly once.
    ``monitor`` (a :class:`~repro.health.monitor.HealthMonitor`) is fed
    every per-server outcome the wrapper sees; it requires a policy,
    because without the wrapper nothing would feed it. ``sleep`` is the
    wall-clock backoff hook for real-wire transports (see
    :class:`RetryingTransport`).
    """
    if policy is None:
        if monitor is not None:
            raise errors.ConfigError(
                "a health monitor needs a retry policy to feed it")
        if sleep is not None:
            raise errors.ConfigError(
                "a retry sleep hook needs a retry policy to drive it")
        return transport
    return RetryingTransport(transport, policy, monitor=monitor, sleep=sleep)


def charge_delay(transport, seconds: float) -> bool:
    """Charge ``seconds`` of simulated time to ``transport``.

    Walks wrapper chains (``.inner``) looking for a deferred-time
    ledger; returns False when the stack is purely functional (timeless)
    and the delay is accounting-only.
    """
    node = transport
    while node is not None:
        ledger = getattr(node, "deferred_time", None)
        if ledger is not None:
            node.deferred_time = ledger + seconds
            return True
        node = getattr(node, "inner", None)
    return False


class RetryPolicy:
    """How hard to try before declaring a server unreachable.

    Backoff for attempt ``n`` (1-based) is
    ``min(max_backoff_s, base_backoff_s * multiplier**(n-1))`` scaled by
    a seeded jitter factor in ``[1-jitter, 1+jitter]`` — seeded so a
    replayed chaos run makes identical backoff decisions. The running
    sum of backoffs is compared against ``deadline_s``: a call whose
    virtual elapsed time would exceed the deadline stops retrying.
    """

    def __init__(self, max_attempts: int = 5, base_backoff_s: float = 0.002,
                 multiplier: float = 2.0, max_backoff_s: float = 0.25,
                 deadline_s: float = float("inf"), jitter: float = 0.5,
                 seed: int = 0) -> None:
        if max_attempts < 1:
            raise errors.ConfigError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise errors.ConfigError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_backoff_s = base_backoff_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.deadline_s = deadline_s
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def backoff_for(self, attempt: int) -> float:
        """Backoff after failed attempt ``attempt`` (1-based), jittered."""
        base = min(self.max_backoff_s,
                   self.base_backoff_s * self.multiplier ** (attempt - 1))
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return base


class RetryingTransport(Transport):
    """Applies a :class:`RetryPolicy` to every synchronous call.

    Wraps any transport; only transient errors are retried, with the
    at-least-once resolutions described in the module docstring.
    ``submit`` is intercepted (call + retry, wrapped in a completed
    future) whenever the inner transport resolves submissions
    synchronously; the simulator's true-async path passes through
    unretried — its drivers model failure at a different layer.
    """

    def __init__(self, inner, policy: RetryPolicy, monitor=None,
                 sleep=None) -> None:
        self.inner = inner
        self.policy = policy
        self.monitor = monitor
        # Wall-clock backoff: over a real wire (the TCP plane) there is
        # no deferred-time ledger to charge, so the backoff must *be*
        # waited, not merely accounted. ``sleep`` (e.g. ``time.sleep``)
        # is called with the backoff seconds whenever no ledger
        # absorbed them; the default None keeps functional tests
        # timeless exactly as before.
        self.sleep = sleep
        if monitor is not None:
            # Probes go out below the retry layer: one RPC each, not a
            # whole backoff ladder against a server already known sick.
            monitor.attach(inner)
        # Statistics (read by the chaos runner and tests).
        self.retries = 0
        self.backoff_charged_s = 0.0
        self.exhausted = 0
        self.ambiguous_resolutions = 0
        self.per_server: Dict[str, Dict[str, float]] = {}

    def server_ids(self) -> List[str]:
        return self.inner.server_ids()

    # ------------------------------------------------------------------
    # Health accounting
    # ------------------------------------------------------------------

    def _stats(self, server_id: str) -> Dict[str, float]:
        stats = self.per_server.get(server_id)
        if stats is None:
            stats = self.per_server[server_id] = {
                "calls": 0, "successes": 0, "failures": 0,
                "retries": 0, "exhausted": 0, "backoff_s": 0.0,
            }
        return stats

    def _observe(self, server_id: str, ok: bool) -> None:
        """One attempt outcome: count it and feed the failure detector.

        ``ok`` means the server answered — definitive application
        errors (not-found, exists, ACL denials) are proof of life and
        are reported as successes; only transient unreachability counts
        against a server's health.
        """
        stats = self._stats(server_id)
        stats["calls"] += 1
        stats["successes" if ok else "failures"] += 1
        if self.monitor is not None:
            self.monitor.observe(server_id, ok)

    def _note_exhausted(self, server_id: str) -> None:
        self.exhausted += 1
        self._stats(server_id)["exhausted"] += 1
        if self.monitor is not None:
            self.monitor.note_exhausted(server_id)

    def health_report(self) -> Dict[str, object]:
        """Structured per-server outcome counters (one source of truth
        for the monitor, the chaos runner, and the tests)."""
        return {
            "totals": {
                "retries": self.retries,
                "backoff_charged_s": self.backoff_charged_s,
                "exhausted": self.exhausted,
                "ambiguous_resolutions": self.ambiguous_resolutions,
            },
            "servers": {sid: dict(stats)
                        for sid, stats in sorted(self.per_server.items())},
        }

    @property
    def submit_is_synchronous(self) -> bool:
        return self.inner.submit_is_synchronous

    def _wait(self, backoff: float) -> None:
        """Spend one backoff: simulated ledger first, wall clock second."""
        if not charge_delay(self.inner, backoff) and self.sleep is not None:
            self.sleep(backoff)

    # ------------------------------------------------------------------

    def call(self, server_id: str, request, _resolving: bool = False):
        policy = self.policy
        attempt = 1
        elapsed = 0.0
        while True:
            try:
                response = self.inner.call(server_id, request)
            except TRANSIENT_ERRORS as exc:
                failure: errors.SwarmError = exc
                self._observe(server_id, ok=False)
            except errors.FragmentExistsError:
                self._observe(server_id, ok=True)
                if attempt > 1 and not _resolving:
                    resolved = self._resolve_already_exists(server_id, request)
                    if resolved is not None:
                        self.ambiguous_resolutions += 1
                        return resolved
                raise
            except errors.FragmentNotFoundError:
                self._observe(server_id, ok=True)
                if attempt > 1 and isinstance(request, m.DeleteRequest):
                    # The earlier attempt deleted it; only the reply
                    # was lost. Deletion is idempotent.
                    self.ambiguous_resolutions += 1
                    return m.Response()
                raise
            except errors.SwarmError:
                # A definitive application error: the server answered.
                self._observe(server_id, ok=True)
                raise
            else:
                self._observe(server_id, ok=True)
                return response
            if attempt >= policy.max_attempts:
                self._note_exhausted(server_id)
                raise failure
            backoff = policy.backoff_for(attempt)
            if elapsed + backoff > policy.deadline_s:
                self._note_exhausted(server_id)
                raise failure
            elapsed += backoff
            self.retries += 1
            stats = self._stats(server_id)
            stats["retries"] += 1
            stats["backoff_s"] += backoff
            self.backoff_charged_s += backoff
            self._wait(backoff)
            attempt += 1

    def submit(self, server_id: str, request):
        if not self.submit_is_synchronous:
            return self.inner.submit(server_id, request)
        try:
            return CompletedFuture(value=self.call(server_id, request))
        except errors.SwarmError as exc:
            return CompletedFuture(exception=exc)

    def submit_many(self, plan):
        """Fan out with per-operation retries, keeping the overlap.

        The whole plan goes to the inner transport in one scatter;
        only the operations that failed transiently are re-scattered,
        in rounds, with the round's backoffs overlapping each other the
        same way the operations do (the ledger is charged the round's
        *maximum* backoff, not the sum). A retried operation that
        collides with its own earlier, reply-lost attempt is resolved
        per operation exactly like the synchronous path: an existing
        fragment on a retried preallocate/store, or a missing fragment
        on a retried delete, means the first attempt won.

        The simulator's true-async path passes through unretried, like
        :meth:`submit` — its drivers model failure at a different
        layer.
        """
        plan = list(plan)
        if not self.submit_is_synchronous:
            return self.inner.submit_many(plan)
        policy = self.policy
        futures = list(self.inner.submit_many(plan))
        self._observe_scatter(plan, futures)
        elapsed = [0.0] * len(plan)
        for attempt in range(1, policy.max_attempts):
            retry_indices = []
            for index, future in enumerate(futures):
                if future.triggered and isinstance(future.exception,
                                                   TRANSIENT_ERRORS):
                    backoff = policy.backoff_for(attempt)
                    if elapsed[index] + backoff > policy.deadline_s:
                        continue  # over deadline: counted exhausted below
                    elapsed[index] += backoff
                    retry_indices.append((index, backoff))
            if not retry_indices:
                break
            # The operations back off concurrently: charge the slowest.
            round_backoff = max(backoff for _i, backoff in retry_indices)
            self.retries += len(retry_indices)
            for index, backoff in retry_indices:
                stats = self._stats(plan[index][0])
                stats["retries"] += 1
                stats["backoff_s"] += backoff
            self.backoff_charged_s += round_backoff
            self._wait(round_backoff)
            retry_plan = [plan[index] for index, _backoff in retry_indices]
            retried = self.inner.submit_many(retry_plan)
            self._observe_scatter(retry_plan, retried)
            for (index, _backoff), future in zip(retry_indices, retried):
                futures[index] = self._disambiguated(plan[index], future)
        for index, future in enumerate(futures):
            if future.triggered and isinstance(future.exception,
                                               TRANSIENT_ERRORS):
                self._note_exhausted(plan[index][0])
        return futures

    def _observe_scatter(self, plan, futures) -> None:
        """Feed one scatter round's per-operation outcomes."""
        for (server_id, _request), future in zip(plan, futures):
            if future.triggered:
                self._observe(server_id, not isinstance(
                    future.exception, TRANSIENT_ERRORS))

    def _disambiguated(self, operation, future):
        """Resolve a retried operation's at-least-once ambiguity."""
        server_id, request = operation
        if future.ok:
            return future
        if isinstance(future.exception, errors.FragmentExistsError):
            resolved = self._resolve_already_exists(server_id, request)
            if resolved is not None:
                self.ambiguous_resolutions += 1
                return CompletedFuture(value=resolved)
        if (isinstance(future.exception, errors.FragmentNotFoundError)
                and isinstance(request, m.DeleteRequest)):
            # The earlier attempt deleted it; only the reply was lost.
            self.ambiguous_resolutions += 1
            return CompletedFuture(value=m.Response())
        return future

    # ------------------------------------------------------------------

    def _resolve_already_exists(self, server_id: str,
                                request) -> Optional[m.Response]:
        """Disambiguate ``FragmentExistsError`` on a retried write.

        For a preallocate, existing *is* success. For a store, compare
        the committed bytes against the intent: equal means the earlier
        attempt committed and only its reply was lost; different means
        the fragment is torn (a partial store was made durable), so
        delete and write it whole again. Returns None when the
        resolution itself fails — the caller then reports the original
        error and the stripe stays degraded-but-recoverable.
        """
        if isinstance(request, m.PreallocateRequest):
            return m.Response()
        if not isinstance(request, m.StoreRequest):
            return None
        try:
            probe = self.call(server_id, m.RetrieveRequest(
                fid=request.fid, principal=request.principal),
                _resolving=True)
        except errors.SwarmError:
            return None
        if bytes(probe.payload) == bytes(request.data):
            return m.Response()
        try:
            self.call(server_id, m.DeleteRequest(
                fid=request.fid, principal=request.principal),
                _resolving=True)
            return self.call(server_id, request, _resolving=True)
        except errors.SwarmError:
            return None
