"""Client↔server communication.

Requests and responses are plain dataclasses with a compact binary
codec. Two transports carry them:

* :class:`~repro.rpc.transport.LocalTransport` — direct in-process
  calls; used by correctness tests, examples, and anything that does not
  need timing.
* :class:`~repro.rpc.transport.SimTransport` — routes each operation
  through the discrete-event testbed (client CPU → network → server CPU
  → server disk → reply), so benchmarks measure contention the way the
  real cluster would experience it. Functional effects are the same.
"""

from repro.rpc.messages import (
    CreateAclRequest,
    DeleteRequest,
    ErrorResponse,
    EvalScriptRequest,
    HoldsRequest,
    LastMarkedRequest,
    ModifyAclRequest,
    PreallocateRequest,
    Response,
    RetrieveRequest,
    StoreRequest,
)
from repro.rpc.codec import decode_message, encode_message, wire_size
from repro.rpc.completion import (
    CompletedFuture,
    first_of,
    gather,
    results,
    scatter_call,
)
from repro.rpc.retry import RetryPolicy, RetryingTransport, wrap_transport
from repro.rpc.transport import (
    LocalTransport,
    SimTransport,
    Transport,
)

__all__ = [
    "CompletedFuture",
    "first_of",
    "gather",
    "results",
    "scatter_call",
    "wrap_transport",
    "CreateAclRequest",
    "DeleteRequest",
    "ErrorResponse",
    "EvalScriptRequest",
    "HoldsRequest",
    "LastMarkedRequest",
    "ModifyAclRequest",
    "PreallocateRequest",
    "Response",
    "RetrieveRequest",
    "StoreRequest",
    "decode_message",
    "encode_message",
    "wire_size",
    "LocalTransport",
    "RetryPolicy",
    "RetryingTransport",
    "SimTransport",
    "Transport",
]
