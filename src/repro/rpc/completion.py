"""First-class completions: the future shape every transport speaks.

Swarm's pipelining argument (§2.1.2) is about *overlap*: a client that
talks to W servers should pay one overlapped round trip, not W serial
ones. The write path has always been asynchronous; this module gives
the read side the same vocabulary. A *completion* is any object with
the four attributes the transports and the simulator already share:

``triggered``
    True once the operation has finished (successfully or not).
``ok``
    True when it finished without an exception.
``value``
    The result (a :class:`~repro.rpc.messages.Response` for RPCs).
``exception``
    The failure, or None.

:class:`CompletedFuture` (an already-resolved completion) and the
simulator's :class:`~repro.sim.core.Process`/:class:`~repro.sim.core.Event`
both satisfy the protocol, so the combinators below work identically
over the local transport, the simulated testbed, and any wrapper
(retry, fault injection) around either.

Combinators
-----------
:func:`gather`
    Resolve a whole fan-out, driving the owning simulator when needed;
    per-operation failures stay *inside* their futures, so one dead
    server never wedges a scatter.
:func:`first_of`
    The first (in submission order) successful completion, optionally
    filtered by a predicate — deterministic racing for paths like the
    stripe-descriptor probe that can be satisfied by either neighbor.
:func:`scatter_call`
    Fan a plan of ``(server_id, request)`` operations out through
    ``transport.submit_many`` and gather the results, falling back to
    sequential calls only when the futures cannot be driven (a
    simulator that is already running under our feet).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError, SwarmError


class CompletedFuture:
    """A completion that resolved at creation time (local transport)."""

    __slots__ = ("value", "exception", "triggered")

    def __init__(self, value: Any = None,
                 exception: Optional[BaseException] = None) -> None:
        self.value = value
        self.exception = exception
        self.triggered = True

    @property
    def ok(self) -> bool:
        """True when the operation succeeded."""
        return self.exception is None

    def result(self) -> Any:
        """Return the value or raise the stored exception."""
        if self.exception is not None:
            raise self.exception
        return self.value


def call_completed(transport, server_id: str, request) -> CompletedFuture:
    """One synchronous call, outcome captured as a completion."""
    try:
        return CompletedFuture(value=transport.call(server_id, request))
    except SwarmError as exc:
        return CompletedFuture(exception=exc)


def _owning_sim(future):
    return getattr(future, "sim", None)


def gather(futures: Sequence) -> List:
    """Resolve every future in ``futures``; returns them, in order.

    Already-resolved completions pass straight through. Simulator
    events are driven to completion by running their owning simulator
    (all pending futures share one clock, so a single run resolves the
    whole fan-out). Per-operation failures are left inside their
    futures — inspect ``ok`` / ``exception`` per element; nothing is
    raised here for an RPC-level error.

    Raises :class:`~repro.errors.SimulationError` when an unresolved
    future has no simulator to drive, or its simulator is already
    running (gathering from inside a simulated process must use
    ``yield sim.all_of(...)`` instead — see :func:`can_gather`).
    """
    futures = list(futures)
    pending = [f for f in futures if not f.triggered]
    for future in pending:
        sim = _owning_sim(future)
        if sim is None:
            raise SimulationError(
                "cannot gather an unresolved future with no simulator")
        if getattr(sim, "_running", False):
            raise SimulationError(
                "cannot gather inside a running simulation; "
                "yield sim.all_of(...) from the process instead")
        # A process failure with no waiters is re-raised by sim.run();
        # registering a waiter keeps the failure inside the future,
        # where the caller inspects it per operation.
        future.add_callback(lambda _event: None)
    for future in pending:
        if not future.triggered:
            _owning_sim(future).run()
        if not future.triggered:
            raise SimulationError(
                "future never resolved (simulation deadlock?)")
    return futures


def results(futures: Sequence) -> List[Any]:
    """Values of a gathered fan-out; raises the first failure."""
    values = []
    for future in gather(futures):
        if future.exception is not None:
            raise future.exception
        values.append(future.value)
    return values


def first_of(futures: Sequence,
             predicate: Optional[Callable[[Any], bool]] = None):
    """First successful future, in submission order; None when all failed.

    With ``predicate``, the first successful future whose *value*
    satisfies it. Order is submission order, not arrival order, so the
    choice is deterministic — what a replayed chaos schedule needs —
    while the operations themselves still overlap.
    """
    for future in gather(futures):
        if not future.ok:
            continue
        if predicate is None or predicate(future.value):
            return future
    return None


def can_gather(transport) -> bool:
    """Whether a fan-out through ``transport`` can be gathered here.

    True for every transport whose submissions resolve synchronously,
    and for simulated transports whose simulator is idle (we can drive
    it). False only when called from *inside* a running simulation —
    simulated drivers overlap by yielding ``sim.all_of`` themselves.
    """
    if transport.submit_is_synchronous:
        return True
    node = transport
    while node is not None:
        sim = getattr(node, "sim", None)
        if sim is not None:
            return not getattr(sim, "_running", False)
        node = getattr(node, "inner", None)
    return False


def scatter_call(transport, plan: Sequence[Tuple[str, Any]]) -> List:
    """Fan ``plan`` out through ``transport`` and gather the outcomes.

    ``plan`` is a sequence of ``(server_id, request)`` pairs; the
    result is one resolved completion per operation, in plan order.
    This is the safe entry point for synchronous client code: when the
    futures cannot be driven (a simulator already mid-run), it degrades
    to sequential calls rather than deadlocking, so callers never need
    to know which plane they run on.
    """
    plan = list(plan)
    if not plan:
        return []
    if can_gather(transport):
        return gather(transport.submit_many(plan))
    return [call_completed(transport, server_id, request)
            for server_id, request in plan]
