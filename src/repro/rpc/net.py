"""Asyncio TCP transport: the real network plane.

The third transport, next to :class:`~repro.rpc.transport.LocalTransport`
(plain function calls) and :class:`~repro.rpc.transport.SimTransport`
(discrete-event testbed). Here every ``StorageServer`` sits behind an
``asyncio.start_server`` host and clients speak to it over genuine
sockets — in-process over loopback for tests (:class:`InProcessHost`),
or across processes/machines via ``python -m repro.server.netd``.

Wire protocol (§2.1.2 flow control over Swarm's striped verbs):

* **Framing** — each message is one frame: a 12-byte header
  ``(payload_length: u32, request_id: u64)`` followed by the payload,
  which is exactly the :mod:`repro.rpc.codec` image of one message.
  The header's length field is written from :func:`wire_size` *before*
  the message is serialized, which is why the codec property test pins
  ``wire_size`` to the real encoding.
* **Multiplexing** — many requests are in flight per connection;
  responses carry the request id they answer and may arrive in any
  order. ``submit_many`` therefore becomes genuinely concurrent socket
  I/O: completions resolve out of order and are consumed in plan order.
* **Flow control** — a per-connection semaphore bounds in-flight
  requests (the §2.1.2 window), so a fast client cannot bury a slow
  server in unacknowledged frames.
* **Zero copy** — frames are written with ``writer.writelines`` over
  :func:`~repro.rpc.codec.encode_message_parts`, so a fragment payload
  crosses from the caller's buffer to the socket without being copied
  into an intermediate wire image. ``writelines`` buffers the whole
  list before the coroutine can be suspended, so concurrent writers on
  one connection cannot interleave frame bytes.

The synchronous :class:`~repro.rpc.transport.Transport` API is bridged
onto a background event-loop thread with
``asyncio.run_coroutine_threadsafe`` — client code (the log layer, the
chaos engine, the retry stack) is oblivious to which plane it runs on.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from struct import Struct
from typing import Dict, List, Optional, Tuple

from repro import errors
from repro.rpc import messages as m
from repro.rpc.codec import (
    decode_message,
    encode_message_parts,
    wire_size,
)
from repro.rpc.completion import CompletedFuture
from repro.rpc.transport import Plan, Transport, dispatch, raise_error_response

__all__ = [
    "FRAME_HEADER",
    "InProcessHost",
    "TcpTransport",
    "frame_parts",
    "read_frame",
    "serve_connection",
    "serve_server",
]

#: Frame header: payload length, then the request id the payload answers.
FRAME_HEADER = Struct(">IQ")

#: Hard ceiling on one frame's payload; anything larger is a corrupt or
#: hostile stream, not a legitimate fragment (fragments are <= 1 MiB
#: plus small headers by configuration).
MAX_FRAME = 1 << 28


def frame_parts(request_id: int, msg) -> List:
    """One wire frame as a buffer list ready for ``writer.writelines``.

    The header is filled from :func:`wire_size`, so bulk payloads stay
    as ``memoryview`` parts all the way to the socket.
    """
    parts = [FRAME_HEADER.pack(wire_size(msg), request_id)]
    parts.extend(encode_message_parts(msg))
    return parts


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one ``(request_id, payload)`` frame; raises at EOF."""
    header = await reader.readexactly(FRAME_HEADER.size)
    length, request_id = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise errors.BadRequestError("frame length %d exceeds cap" % length)
    payload = await reader.readexactly(length)
    return request_id, payload


async def serve_connection(server, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
    """Serve one client connection against one ``StorageServer``.

    Requests on a connection are dispatched serially —
    :func:`~repro.rpc.transport.dispatch` is synchronous CPU/disk work,
    so there is nothing to overlap *within* one connection; overlap
    comes from concurrent connections and concurrent servers.
    Responses still carry the request id, so a pipelining client may
    have many frames in flight and match answers out of order.
    """
    try:
        while True:
            try:
                request_id, payload = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away; nothing to answer
            response = dispatch(server, decode_message(payload))
            writer.writelines(frame_parts(request_id, response))
            await writer.drain()
    except (ConnectionError, OSError):
        return  # mid-write disconnect: the client's retry layer handles it
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_server(server, host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.AbstractServer:
    """Bind one ``StorageServer`` behind an asyncio TCP listener."""

    async def _handle(reader, writer):
        await serve_connection(server, reader, writer)

    return await asyncio.start_server(_handle, host=host, port=port)


class _LoopThread:
    """A daemon thread running an asyncio event loop forever."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name=name, daemon=True)
        self._thread.start()

    def run(self, coro):
        """Run ``coro`` on the loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        if not self.loop.is_running():
            self.loop.close()


class InProcessHost:
    """Host a set of ``StorageServer`` objects on loopback sockets.

    The event loop runs on a background thread, so synchronous test and
    bench code can talk to the servers through a :class:`TcpTransport`
    over real TCP while still holding direct Python references to the
    server objects (for crash injection, opcount assertions, damage).
    """

    def __init__(self, servers: Dict[str, object]) -> None:
        self.servers = dict(servers)
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self._listeners: Dict[str, asyncio.AbstractServer] = {}
        self._loop_thread: Optional[_LoopThread] = None

    def start(self) -> "InProcessHost":
        self._loop_thread = _LoopThread("swarm-host")
        for server_id, server in self.servers.items():
            listener = self._loop_thread.run(serve_server(server))
            self._listeners[server_id] = listener
            sockname = listener.sockets[0].getsockname()
            self.addresses[server_id] = (sockname[0], sockname[1])
        return self

    def add_server(self, server) -> Tuple[str, int]:
        """Host one more server (grown cluster, spares)."""
        listener = self._loop_thread.run(serve_server(server))
        self.servers[server.server_id] = server
        self._listeners[server.server_id] = listener
        sockname = listener.sockets[0].getsockname()
        self.addresses[server.server_id] = (sockname[0], sockname[1])
        return self.addresses[server.server_id]

    def close(self) -> None:
        if self._loop_thread is None:
            return

        async def _shutdown():
            for listener in self._listeners.values():
                listener.close()
                await listener.wait_closed()

        self._loop_thread.run(_shutdown())
        self._loop_thread.stop()
        self._loop_thread = None

    def __enter__(self) -> "InProcessHost":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()


class _Connection:
    """One multiplexed client connection with a bounded in-flight window."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, window: int) -> None:
        self.reader = reader
        self.writer = writer
        self.window = asyncio.Semaphore(window)
        self.pending: Dict[int, asyncio.Future] = {}
        self.next_id = 0
        self.dead = False
        self.reader_task: Optional[asyncio.Task] = None

    def start(self) -> None:
        self.reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                request_id, payload = await read_frame(self.reader)
                future = self.pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            self._fail_all(exc)
        except asyncio.CancelledError:
            self._fail_all(ConnectionResetError("connection closed"))
            raise

    def _fail_all(self, exc: BaseException) -> None:
        self.dead = True
        pending, self.pending = self.pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    errors.ServerUnavailableError("connection lost: %s" % exc))

    async def request(self, msg) -> bytes:
        """Send one message, await its matching response payload."""
        async with self.window:
            if self.dead:
                raise errors.ServerUnavailableError("connection lost")
            request_id = self.next_id
            self.next_id += 1
            future = asyncio.get_running_loop().create_future()
            self.pending[request_id] = future
            try:
                # writelines buffers every part before this coroutine can
                # be suspended, so concurrent requests on this connection
                # cannot interleave frame bytes.
                self.writer.writelines(frame_parts(request_id, msg))
                await self.writer.drain()
            except (ConnectionError, OSError) as exc:
                self.pending.pop(request_id, None)
                self._fail_all(exc)
                raise errors.ServerUnavailableError(
                    "send failed: %s" % exc) from exc
            return await future

    async def close(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


class TcpTransport(Transport):
    """Client transport speaking the frame protocol over real sockets.

    ``addresses`` maps server ids to ``(host, port)``. Each server gets
    a small connection pool (``pool_size``); requests round-robin over
    the pool and multiplex within each connection, bounded by ``window``
    in-flight frames per connection. The transport owns a background
    event-loop thread; all socket I/O happens there, and the synchronous
    :class:`Transport` API bridges onto it, so every existing wrapper —
    retry, fault injection, health probes — layers on top unchanged.
    """

    def __init__(self, addresses: Dict[str, Tuple[str, int]],
                 pool_size: int = 2, window: int = 32,
                 connect_timeout: float = 5.0) -> None:
        if pool_size < 1:
            raise errors.ConfigError("pool_size must be >= 1")
        if window < 1:
            raise errors.ConfigError("window must be >= 1")
        self.addresses = dict(addresses)
        self.pool_size = pool_size
        self.window = window
        self.connect_timeout = connect_timeout
        self._pools: Dict[str, List[_Connection]] = {}
        self._rr: Dict[str, int] = {}
        self._loop_thread = _LoopThread("swarm-client")
        self._closed = False

    def add_server(self, server_id: str, address: Tuple[str, int]) -> None:
        """Register one more reachable server (reform spares)."""
        self.addresses[server_id] = address

    def server_ids(self) -> List[str]:
        return list(self.addresses)

    # -- connection management (event-loop thread only) ---------------------

    async def _connect(self, server_id: str) -> _Connection:
        address = self.addresses.get(server_id)
        if address is None:
            raise errors.ServerUnavailableError("no server %r" % server_id)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(address[0], address[1]),
                timeout=self.connect_timeout)
        except (ConnectionError, OSError, asyncio.TimeoutError, socket.gaierror) as exc:
            raise errors.ServerUnavailableError(
                "cannot reach %s at %s: %s" % (server_id, address, exc)) from exc
        connection = _Connection(reader, writer, self.window)
        connection.start()
        return connection

    async def _checkout(self, server_id: str) -> _Connection:
        pool = self._pools.setdefault(server_id, [])
        pool[:] = [conn for conn in pool if not conn.dead]
        if len(pool) < self.pool_size:
            pool.append(await self._connect(server_id))
        index = self._rr.get(server_id, 0) % len(pool)
        self._rr[server_id] = index + 1
        return pool[index]

    async def _request(self, server_id: str, request) -> m.Response:
        connection = await self._checkout(server_id)
        payload = await connection.request(request)
        response = decode_message(payload)
        if isinstance(response, m.ErrorResponse):
            raise_error_response(response)
        return response

    async def _submit_one(self, server_id: str, request) -> CompletedFuture:
        try:
            return CompletedFuture(value=await self._request(server_id, request))
        except errors.SwarmError as exc:
            return CompletedFuture(exception=exc)

    # -- synchronous Transport API ------------------------------------------

    def call(self, server_id: str, request) -> m.Response:
        return self._loop_thread.run(self._request(server_id, request))

    def submit(self, server_id: str, request) -> CompletedFuture:
        return self._loop_thread.run(self._submit_one(server_id, request))

    def submit_many(self, plan: Plan) -> List[CompletedFuture]:
        """Launch the whole plan as concurrent socket I/O.

        Every operation is written to its server's connection without
        waiting for earlier answers; responses resolve out of order on
        the event loop and are returned as already-completed futures in
        plan order. Per-operation failures stay inside their futures.
        """
        plan = list(plan)
        if not plan:
            return []

        async def _gather():
            return await asyncio.gather(
                *(self._submit_one(server_id, request)
                  for server_id, request in plan))

        return list(self._loop_thread.run(_gather()))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def _shutdown():
            for pool in self._pools.values():
                for connection in pool:
                    await connection.close()

        self._loop_thread.run(_shutdown())
        self._loop_thread.stop()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
