"""Binary codec for the RPC message types.

The simulated testbed charges network and CPU time by message size, so
the codec must produce realistic wire images. It is also used by
round-trip tests to keep the protocol honest: every message type must
survive encode→decode unchanged. Since the TCP plane landed it is a
*real* wire format too: :mod:`repro.rpc.net` frames these images over
sockets, and trusts :func:`wire_size` to write length prefixes without
materializing the message first.

Wire format: 1-byte message tag, then tag-specific fields using
big-endian fixed-width integers and 4-byte-length-prefixed byte/string
fields.

Hot path: encoding and decoding dispatch through per-type tables (no
``isinstance`` ladder), every fixed-width layout is a precompiled
module-level :class:`struct.Struct` — ``struct.pack(">Qqq", ...)``
re-parses its format string on every call — and the per-type workers
fold the tag byte into their leading pack so a request head is one
``Struct.pack`` plus one concatenation. The codec moves hundreds of
thousands of messages per second (the ``codec_msgs_s`` floor in
``BENCH_PERF.json`` gates it).
"""

from __future__ import annotations

from struct import Struct, error as _StructError
from typing import Dict, List, Tuple, Union

from repro.rpc import messages as m
from repro.util.packing import pack_str, unpack_str

_TAGS = {
    m.StoreRequest: 1,
    m.RetrieveRequest: 2,
    m.DeleteRequest: 3,
    m.PreallocateRequest: 4,
    m.LastMarkedRequest: 5,
    m.HoldsRequest: 6,
    m.CreateAclRequest: 7,
    m.ModifyAclRequest: 8,
    m.DeleteAclRequest: 9,
    m.EvalScriptRequest: 10,
    m.ListFidsRequest: 11,
    m.MultiRetrieveRequest: 12,
    m.Response: 20,
    m.ErrorResponse: 21,
}
_BY_TAG = {tag: cls for cls, tag in _TAGS.items()}
_HEADS = {cls: Struct(">B").pack(tag) for cls, tag in _TAGS.items()}

Message = Union[tuple(_TAGS)]

# Precompiled fixed-width layouts (the codec hot path).
_U32 = Struct(">I")
_I64 = Struct(">q")
_U64 = Struct(">Q")
_FID_FLAG = Struct(">QB")      # ModifyAcl aid+flags
_RANGE = Struct(">IIQ")        # ACL range (start, end, aid)
_MULTI_RANGE = Struct(">QII")  # MultiRetrieve range (fid, offset, length)
# Request/response heads with the tag byte folded in: one pack call
# emits the tag, the fixed fields, and the next field's length prefix.
_STORE_HEAD = Struct(">BQBI")      # tag, fid, marked, len(principal)
_RETRIEVE_HEAD = Struct(">BQqqI")  # tag, fid, offset, length, len(p)
_FID_HEAD = Struct(">BQI")         # tag, fid/aid, len(principal)
_I64_HEAD = Struct(">BqI")         # tag, client_id/value, len(next)
_STORE_BODY = Struct(">QBI")       # decode: fid, marked, len(principal)
_RETRIEVE_BODY = Struct(">QqqI")
_FID_BODY = Struct(">QI")
_I64_BODY = Struct(">qI")
_EMPTY4 = _U32.pack(0)

#: ``">%dQ"`` structs for fid lists, cached by count — a new Struct per
#: call would re-parse the format string on the ``holds`` hot path.
_FIDS: Dict[int, Struct] = {}


def _fids_struct(count: int) -> Struct:
    packer = _FIDS.get(count)
    if packer is None:
        packer = _FIDS[count] = Struct(">%dQ" % count)
    return packer


def _pack_str_tuple(items) -> bytes:
    out = [_U32.pack(len(items))]
    out.extend(pack_str(item) for item in items)
    return b"".join(out)


def _unpack_str_tuple(buf: bytes, pos: int) -> Tuple[tuple, int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    items = []
    for _ in range(count):
        item, pos = unpack_str(buf, pos)
        items.append(item)
    return tuple(items), pos


def _pack_ranges(ranges) -> bytes:
    if not ranges:
        return _EMPTY4
    out = [_U32.pack(len(ranges))]
    out.extend(_RANGE.pack(start, end, aid) for start, end, aid in ranges)
    return b"".join(out)


def _unpack_ranges(buf: bytes, pos: int) -> Tuple[tuple, int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    ranges = []
    for _ in range(count):
        ranges.append(_RANGE.unpack_from(buf, pos))
        pos += 16
    return tuple(ranges), pos


# ----------------------------------------------------------------------
# Encoders — one worker per type, dispatched by exact class
# ----------------------------------------------------------------------

def _encode_store(msg, _pack=_STORE_HEAD.pack, _u32=_U32.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(1, msg.fid, msg.marked, len(principal)) + principal
            + _pack_ranges(msg.acl_ranges) + _u32(len(msg.data)),
            memoryview(msg.data)]


def _encode_retrieve(msg, _pack=_RETRIEVE_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(2, msg.fid, msg.offset, msg.length, len(principal))
            + principal]


def _encode_multi_retrieve(msg, _u32=_U32.pack,
                           _rpack=_MULTI_RANGE.pack) -> List:
    principal = msg.principal.encode("utf-8")
    body = [_HEADS[m.MultiRetrieveRequest], _u32(len(msg.ranges))]
    body.extend(_rpack(fid, offset, length)
                for fid, offset, length in msg.ranges)
    body.append(_u32(len(principal)) + principal)
    return [b"".join(body)]


def _encode_delete(msg, _pack=_FID_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(3, msg.fid, len(principal)) + principal]


def _encode_preallocate(msg, _pack=_FID_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(4, msg.fid, len(principal)) + principal]


def _encode_last_marked(msg, _pack=_I64_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(5, msg.client_id, len(principal)) + principal]


def _encode_holds(msg, _u32=_U32.pack) -> List:
    principal = msg.principal.encode("utf-8")
    fids = msg.fids
    count = len(fids)
    return [b"\x06" + _u32(count) + _fids_struct(count).pack(*fids)
            + _u32(len(principal)) + principal]


def _encode_create_acl(msg) -> List:
    return [_HEADS[m.CreateAclRequest] + _pack_str_tuple(msg.readers)
            + _pack_str_tuple(msg.writers) + pack_str(msg.principal)]


def _encode_modify_acl(msg) -> List:
    flags = (1 if msg.readers is not None else 0) | \
            (2 if msg.writers is not None else 0)
    body = _HEADS[m.ModifyAclRequest] + _FID_FLAG.pack(msg.aid, flags)
    if msg.readers is not None:
        body += _pack_str_tuple(msg.readers)
    if msg.writers is not None:
        body += _pack_str_tuple(msg.writers)
    return [body + pack_str(msg.principal)]


def _encode_delete_acl(msg, _pack=_FID_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(9, msg.aid, len(principal)) + principal]


def _encode_eval_script(msg) -> List:
    return [_HEADS[m.EvalScriptRequest] + pack_str(msg.script)
            + pack_str(msg.principal)]


def _encode_list_fids(msg, _pack=_I64_HEAD.pack) -> List:
    principal = msg.principal.encode("utf-8")
    return [_pack(11, msg.client_id, len(principal)) + principal]


def _encode_response(msg, _pack=_I64_HEAD.pack, _u32=_U32.pack) -> List:
    text = msg.text
    if text:
        raw = text.encode("utf-8")
        tail = _u32(len(raw)) + raw
    else:
        tail = _EMPTY4
    return [_pack(20, msg.value, len(msg.payload)),
            memoryview(msg.payload), tail]


def _encode_error(msg) -> List:
    return [_HEADS[m.ErrorResponse] + pack_str(msg.error_class)
            + pack_str(msg.message)]


_ENCODERS = {
    m.StoreRequest: _encode_store,
    m.RetrieveRequest: _encode_retrieve,
    m.DeleteRequest: _encode_delete,
    m.PreallocateRequest: _encode_preallocate,
    m.LastMarkedRequest: _encode_last_marked,
    m.HoldsRequest: _encode_holds,
    m.CreateAclRequest: _encode_create_acl,
    m.ModifyAclRequest: _encode_modify_acl,
    m.DeleteAclRequest: _encode_delete_acl,
    m.EvalScriptRequest: _encode_eval_script,
    m.ListFidsRequest: _encode_list_fids,
    m.MultiRetrieveRequest: _encode_multi_retrieve,
    m.Response: _encode_response,
    m.ErrorResponse: _encode_error,
}


def encode_message(msg: Message) -> bytes:
    """Serialize any protocol message to its wire image."""
    return b"".join(encode_message_parts(msg))


def encode_message_parts(msg: Message) -> List:
    """Wire image of ``msg`` as an ordered list of buffers.

    The concatenation of the parts is exactly :func:`encode_message`'s
    output, but bulk payloads (a ``StoreRequest``'s fragment image, a
    ``Response``'s retrieved bytes) are returned as ``memoryview``s of
    the caller's buffer instead of being copied into one big image —
    the TCP framer hands the list straight to ``writer.writelines`` so
    a megabyte fragment crosses the socket without an intermediate
    copy.
    """
    encoder = _ENCODERS.get(msg.__class__)
    if encoder is None:
        # Subclasses of a protocol message encode as their base type.
        for klass in type(msg).__mro__[1:]:
            encoder = _ENCODERS.get(klass)
            if encoder is not None:
                break
        else:
            raise TypeError("not a protocol message: %r" % (msg,))
    return encoder(msg)


# ----------------------------------------------------------------------
# Decoders — one worker per tag; field parsing inlined
# ----------------------------------------------------------------------

def _take_str(buf: bytes, pos: int, length: int) -> str:
    raw = buf[pos:pos + length]
    if len(raw) != length:
        raise ValueError("truncated message field")
    return raw.decode("utf-8")


def _decode_store(buf, _body=_STORE_BODY.unpack_from,
                  _u32=_U32.unpack_from):
    fid, marked, plen = _body(buf, 1)
    pos = 14 + plen
    principal = _take_str(buf, 14, plen)
    ranges, pos = _unpack_ranges(buf, pos)
    (dlen,) = _u32(buf, pos)
    pos += 4
    data = buf[pos:pos + dlen]
    if len(data) != dlen:
        raise ValueError("truncated message field")
    return m.StoreRequest(fid, data, principal, bool(marked), ranges)


def _decode_retrieve(buf, _body=_RETRIEVE_BODY.unpack_from):
    fid, offset, length, plen = _body(buf, 1)
    return m.RetrieveRequest(fid, offset, length, _take_str(buf, 29, plen))


def _decode_multi_retrieve(buf, _u32=_U32.unpack_from,
                           _range=_MULTI_RANGE.unpack_from):
    (count,) = _u32(buf, 1)
    pos = 5
    ranges = tuple(_range(buf, pos + 16 * index) for index in range(count))
    pos += 16 * count
    (plen,) = _u32(buf, pos)
    return m.MultiRetrieveRequest(ranges, _take_str(buf, pos + 4, plen))


def _decode_delete(buf, _body=_FID_BODY.unpack_from):
    fid, plen = _body(buf, 1)
    return m.DeleteRequest(fid, _take_str(buf, 13, plen))


def _decode_preallocate(buf, _body=_FID_BODY.unpack_from):
    fid, plen = _body(buf, 1)
    return m.PreallocateRequest(fid, _take_str(buf, 13, plen))


def _decode_last_marked(buf, _body=_I64_BODY.unpack_from):
    client_id, plen = _body(buf, 1)
    return m.LastMarkedRequest(client_id, _take_str(buf, 13, plen))


def _decode_holds(buf, _u32=_U32.unpack_from):
    (count,) = _u32(buf, 1)
    end = 5 + 8 * count
    fids = _fids_struct(count).unpack_from(buf, 5)
    (plen,) = _u32(buf, end)
    return m.HoldsRequest(fids, _take_str(buf, end + 4, plen))


def _decode_create_acl(buf):
    readers, pos = _unpack_str_tuple(buf, 1)
    writers, pos = _unpack_str_tuple(buf, pos)
    principal, pos = unpack_str(buf, pos)
    return m.CreateAclRequest(readers, writers, principal)


def _decode_modify_acl(buf):
    aid, flags = _FID_FLAG.unpack_from(buf, 1)
    pos = 10
    readers = writers = None
    if flags & 1:
        readers, pos = _unpack_str_tuple(buf, pos)
    if flags & 2:
        writers, pos = _unpack_str_tuple(buf, pos)
    principal, pos = unpack_str(buf, pos)
    return m.ModifyAclRequest(aid, readers, writers, principal)


def _decode_delete_acl(buf, _body=_FID_BODY.unpack_from):
    aid, plen = _body(buf, 1)
    return m.DeleteAclRequest(aid, _take_str(buf, 13, plen))


def _decode_eval_script(buf):
    script, pos = unpack_str(buf, 1)
    principal, pos = unpack_str(buf, pos)
    return m.EvalScriptRequest(script, principal)


def _decode_list_fids(buf, _body=_I64_BODY.unpack_from):
    client_id, plen = _body(buf, 1)
    return m.ListFidsRequest(client_id, _take_str(buf, 13, plen))


def _decode_response(buf, _body=_I64_BODY.unpack_from,
                     _u32=_U32.unpack_from):
    value, dlen = _body(buf, 1)
    pos = 13 + dlen
    payload = buf[13:pos]
    if len(payload) != dlen:
        raise ValueError("truncated message field")
    (tlen,) = _u32(buf, pos)
    text = _take_str(buf, pos + 4, tlen) if tlen else ""
    return m.Response(value, payload, text)


def _decode_error(buf):
    error_class, pos = unpack_str(buf, 1)
    message, pos = unpack_str(buf, pos)
    return m.ErrorResponse(error_class, message)


_DECODERS = {
    1: _decode_store,
    2: _decode_retrieve,
    3: _decode_delete,
    4: _decode_preallocate,
    5: _decode_last_marked,
    6: _decode_holds,
    7: _decode_create_acl,
    8: _decode_modify_acl,
    9: _decode_delete_acl,
    10: _decode_eval_script,
    11: _decode_list_fids,
    12: _decode_multi_retrieve,
    20: _decode_response,
    21: _decode_error,
}


def decode_message(buf: bytes) -> Message:
    """Parse a wire image produced by :func:`encode_message`."""
    if type(buf) is not bytes:
        buf = bytes(buf)
    if not buf:
        raise ValueError("empty message")
    decoder = _DECODERS.get(buf[0])
    if decoder is None:
        raise ValueError("unknown message tag %d" % buf[0])
    try:
        return decoder(buf)
    except _StructError as exc:
        raise ValueError("truncated message: %s" % exc)


def wire_size(msg: Message) -> int:
    """Wire bytes of ``msg`` — exactly ``len(encode_message(msg))``.

    Computed arithmetically (not by encoding) so the hot path never
    copies megabyte payloads just to measure it. The TCP framer writes
    this number as the frame's length prefix *before* the message is
    serialized, so any drift from the real encoding corrupts the
    stream — a property test holds every message type to equality.
    """
    if isinstance(msg, m.StoreRequest):
        return (22 + _str_len(msg.principal) + 16 * len(msg.acl_ranges)
                + len(msg.data))
    if isinstance(msg, m.RetrieveRequest):
        return 29 + _str_len(msg.principal)
    if isinstance(msg, m.MultiRetrieveRequest):
        return 9 + 16 * len(msg.ranges) + _str_len(msg.principal)
    if isinstance(msg, (m.DeleteRequest, m.PreallocateRequest)):
        return 13 + _str_len(msg.principal)
    if isinstance(msg, m.HoldsRequest):
        return 9 + 8 * len(msg.fids) + _str_len(msg.principal)
    if isinstance(msg, m.LastMarkedRequest):
        return 13 + _str_len(msg.principal)
    if isinstance(msg, m.Response):
        return 17 + len(msg.payload) + _str_len(msg.text)
    if isinstance(msg, m.ErrorResponse):
        return 9 + _str_len(msg.error_class) + _str_len(msg.message)
    return len(encode_message(msg))


def _str_len(text: str) -> int:
    """UTF-8 byte length of ``text`` (== ``len(text)`` only for ASCII)."""
    if text.isascii():
        return len(text)
    return len(text.encode("utf-8"))
