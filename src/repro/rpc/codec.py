"""Binary codec for the RPC message types.

The simulated testbed charges network and CPU time by message size, so
the codec must produce realistic wire images. It is also used by
round-trip tests to keep the protocol honest: every message type must
survive encode→decode unchanged.

Wire format: 1-byte message tag, then tag-specific fields using
big-endian fixed-width integers and 4-byte-length-prefixed byte/string
fields.
"""

from __future__ import annotations

import struct
from typing import Tuple, Union

from repro.rpc import messages as m
from repro.util.packing import (
    pack_bytes,
    pack_fids,
    pack_str,
    unpack_bytes,
    unpack_fids,
    unpack_str,
)

_TAGS = {
    m.StoreRequest: 1,
    m.RetrieveRequest: 2,
    m.DeleteRequest: 3,
    m.PreallocateRequest: 4,
    m.LastMarkedRequest: 5,
    m.HoldsRequest: 6,
    m.CreateAclRequest: 7,
    m.ModifyAclRequest: 8,
    m.DeleteAclRequest: 9,
    m.EvalScriptRequest: 10,
    m.ListFidsRequest: 11,
    m.MultiRetrieveRequest: 12,
    m.Response: 20,
    m.ErrorResponse: 21,
}
_BY_TAG = {tag: cls for cls, tag in _TAGS.items()}

Message = Union[tuple(_TAGS)]


def _pack_str_tuple(items) -> bytes:
    out = [struct.pack(">I", len(items))]
    out.extend(pack_str(item) for item in items)
    return b"".join(out)


def _unpack_str_tuple(buf: bytes, pos: int) -> Tuple[tuple, int]:
    (count,) = struct.unpack_from(">I", buf, pos)
    pos += 4
    items = []
    for _ in range(count):
        item, pos = unpack_str(buf, pos)
        items.append(item)
    return tuple(items), pos


def _pack_ranges(ranges) -> bytes:
    out = [struct.pack(">I", len(ranges))]
    out.extend(struct.pack(">IIQ", start, end, aid)
               for start, end, aid in ranges)
    return b"".join(out)


def _unpack_ranges(buf: bytes, pos: int) -> Tuple[tuple, int]:
    (count,) = struct.unpack_from(">I", buf, pos)
    pos += 4
    ranges = []
    for _ in range(count):
        start, end, aid = struct.unpack_from(">IIQ", buf, pos)
        ranges.append((start, end, aid))
        pos += 16
    return tuple(ranges), pos


def encode_message(msg: Message) -> bytes:
    """Serialize any protocol message to its wire image."""
    tag = _TAGS.get(type(msg))
    if tag is None:
        raise TypeError("not a protocol message: %r" % (msg,))
    head = struct.pack(">B", tag)
    if isinstance(msg, m.StoreRequest):
        return (head + struct.pack(">QB", msg.fid, int(msg.marked))
                + pack_str(msg.principal) + _pack_ranges(msg.acl_ranges)
                + pack_bytes(msg.data))
    if isinstance(msg, m.RetrieveRequest):
        return (head + struct.pack(">Qqq", msg.fid, msg.offset, msg.length)
                + pack_str(msg.principal))
    if isinstance(msg, m.MultiRetrieveRequest):
        body = [head, struct.pack(">I", len(msg.ranges))]
        body.extend(struct.pack(">QII", fid, offset, length)
                    for fid, offset, length in msg.ranges)
        body.append(pack_str(msg.principal))
        return b"".join(body)
    if isinstance(msg, (m.DeleteRequest, m.PreallocateRequest)):
        return head + struct.pack(">Q", msg.fid) + pack_str(msg.principal)
    if isinstance(msg, m.HoldsRequest):
        return head + pack_fids(msg.fids) + pack_str(msg.principal)
    if isinstance(msg, m.LastMarkedRequest):
        return head + struct.pack(">q", msg.client_id) + pack_str(msg.principal)
    if isinstance(msg, m.CreateAclRequest):
        return (head + _pack_str_tuple(msg.readers)
                + _pack_str_tuple(msg.writers) + pack_str(msg.principal))
    if isinstance(msg, m.ModifyAclRequest):
        flags = (1 if msg.readers is not None else 0) | \
                (2 if msg.writers is not None else 0)
        body = head + struct.pack(">QB", msg.aid, flags)
        if msg.readers is not None:
            body += _pack_str_tuple(msg.readers)
        if msg.writers is not None:
            body += _pack_str_tuple(msg.writers)
        return body + pack_str(msg.principal)
    if isinstance(msg, m.DeleteAclRequest):
        return head + struct.pack(">Q", msg.aid) + pack_str(msg.principal)
    if isinstance(msg, m.EvalScriptRequest):
        return head + pack_str(msg.script) + pack_str(msg.principal)
    if isinstance(msg, m.ListFidsRequest):
        return head + struct.pack(">q", msg.client_id) + pack_str(msg.principal)
    if isinstance(msg, m.Response):
        return (head + struct.pack(">q", msg.value) + pack_bytes(msg.payload)
                + pack_str(msg.text))
    if isinstance(msg, m.ErrorResponse):
        return head + pack_str(msg.error_class) + pack_str(msg.message)
    raise TypeError("unhandled message type %r" % type(msg))  # pragma: no cover


def decode_message(buf: bytes) -> Message:
    """Parse a wire image produced by :func:`encode_message`."""
    (tag,) = struct.unpack_from(">B", buf, 0)
    cls = _BY_TAG.get(tag)
    if cls is None:
        raise ValueError("unknown message tag %d" % tag)
    pos = 1
    if cls is m.StoreRequest:
        fid, marked = struct.unpack_from(">QB", buf, pos)
        pos += 9
        principal, pos = unpack_str(buf, pos)
        ranges, pos = _unpack_ranges(buf, pos)
        data, pos = unpack_bytes(buf, pos)
        return m.StoreRequest(fid=fid, data=data, principal=principal,
                              marked=bool(marked), acl_ranges=ranges)
    if cls is m.RetrieveRequest:
        fid, offset, length = struct.unpack_from(">Qqq", buf, pos)
        pos += 24
        principal, pos = unpack_str(buf, pos)
        return m.RetrieveRequest(fid=fid, offset=offset, length=length,
                                 principal=principal)
    if cls is m.MultiRetrieveRequest:
        (count,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        ranges = []
        for _ in range(count):
            fid, offset, length = struct.unpack_from(">QII", buf, pos)
            ranges.append((fid, offset, length))
            pos += 16
        principal, pos = unpack_str(buf, pos)
        return m.MultiRetrieveRequest(ranges=tuple(ranges),
                                      principal=principal)
    if cls in (m.DeleteRequest, m.PreallocateRequest):
        (fid,) = struct.unpack_from(">Q", buf, pos)
        pos += 8
        principal, pos = unpack_str(buf, pos)
        return cls(fid=fid, principal=principal)
    if cls is m.HoldsRequest:
        fids, pos = unpack_fids(buf, pos)
        principal, pos = unpack_str(buf, pos)
        return m.HoldsRequest(fids=fids, principal=principal)
    if cls is m.LastMarkedRequest:
        (client_id,) = struct.unpack_from(">q", buf, pos)
        pos += 8
        principal, pos = unpack_str(buf, pos)
        return m.LastMarkedRequest(client_id=client_id, principal=principal)
    if cls is m.CreateAclRequest:
        readers, pos = _unpack_str_tuple(buf, pos)
        writers, pos = _unpack_str_tuple(buf, pos)
        principal, pos = unpack_str(buf, pos)
        return m.CreateAclRequest(readers=readers, writers=writers,
                                  principal=principal)
    if cls is m.ModifyAclRequest:
        aid, flags = struct.unpack_from(">QB", buf, pos)
        pos += 9
        readers = writers = None
        if flags & 1:
            readers, pos = _unpack_str_tuple(buf, pos)
        if flags & 2:
            writers, pos = _unpack_str_tuple(buf, pos)
        principal, pos = unpack_str(buf, pos)
        return m.ModifyAclRequest(aid=aid, readers=readers, writers=writers,
                                  principal=principal)
    if cls is m.DeleteAclRequest:
        (aid,) = struct.unpack_from(">Q", buf, pos)
        pos += 8
        principal, pos = unpack_str(buf, pos)
        return m.DeleteAclRequest(aid=aid, principal=principal)
    if cls is m.EvalScriptRequest:
        script, pos = unpack_str(buf, pos)
        principal, pos = unpack_str(buf, pos)
        return m.EvalScriptRequest(script=script, principal=principal)
    if cls is m.ListFidsRequest:
        (client_id,) = struct.unpack_from(">q", buf, pos)
        pos += 8
        principal, pos = unpack_str(buf, pos)
        return m.ListFidsRequest(client_id=client_id, principal=principal)
    if cls is m.Response:
        (value,) = struct.unpack_from(">q", buf, pos)
        pos += 8
        payload, pos = unpack_bytes(buf, pos)
        text, pos = unpack_str(buf, pos)
        return m.Response(value=value, payload=payload, text=text)
    if cls is m.ErrorResponse:
        error_class, pos = unpack_str(buf, pos)
        message, pos = unpack_str(buf, pos)
        return m.ErrorResponse(error_class=error_class, message=message)
    raise ValueError("unhandled tag %d" % tag)  # pragma: no cover


def wire_size(msg: Message) -> int:
    """Wire bytes of ``msg`` — what the network model charges for.

    Computed arithmetically (not by encoding) so the hot path never
    copies megabyte payloads just to measure them.
    """
    if isinstance(msg, m.StoreRequest):
        return 30 + len(msg.principal) + 16 * len(msg.acl_ranges) + len(msg.data)
    if isinstance(msg, m.RetrieveRequest):
        return 29 + len(msg.principal)
    if isinstance(msg, m.MultiRetrieveRequest):
        return 9 + 16 * len(msg.ranges) + len(msg.principal)
    if isinstance(msg, (m.DeleteRequest, m.PreallocateRequest)):
        return 13 + len(msg.principal)
    if isinstance(msg, m.HoldsRequest):
        return 9 + 8 * len(msg.fids) + len(msg.principal)
    if isinstance(msg, m.LastMarkedRequest):
        return 13 + len(msg.principal)
    if isinstance(msg, m.Response):
        return 17 + len(msg.payload) + len(msg.text)
    if isinstance(msg, m.ErrorResponse):
        return 9 + len(msg.error_class) + len(msg.message)
    return len(encode_message(msg))
