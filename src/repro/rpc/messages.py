"""Request/response message types for the storage-server protocol.

One dataclass per server operation. Every request carries the calling
``principal`` for ACL checks. Responses use a single generic
:class:`Response` (a value plus optional payload bytes) or
:class:`ErrorResponse` (an error class name plus message), which the
transports convert back into the library's exception hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class StoreRequest:
    """Store a complete fragment (atomically)."""

    fid: int
    data: bytes
    principal: str = ""
    marked: bool = False
    acl_ranges: Tuple[Tuple[int, int, int], ...] = ()


@dataclass(frozen=True)
class RetrieveRequest:
    """Read ``length`` bytes at ``offset`` within fragment ``fid``."""

    fid: int
    offset: int = 0
    length: int = -1
    principal: str = ""


@dataclass(frozen=True)
class MultiRetrieveRequest:
    """Read many ``(fid, offset, length)`` ranges in one round trip.

    Batched like :class:`HoldsRequest`: the cleaner harvesting a
    stripe's live blocks or a service gathering scattered small reads
    pays one request per *server*, not one per range. Lengths must be
    explicit (no ``-1`` tail reads) so the reply needs no framing: the
    payload is the ranges' bytes concatenated in request order and
    ``value`` is the range count.
    """

    ranges: Tuple[Tuple[int, int, int], ...]
    principal: str = ""


@dataclass(frozen=True)
class DeleteRequest:
    """Delete fragment ``fid``."""

    fid: int
    principal: str = ""


@dataclass(frozen=True)
class PreallocateRequest:
    """Reserve a slot for fragment ``fid``."""

    fid: int
    principal: str = ""


@dataclass(frozen=True)
class LastMarkedRequest:
    """Ask for the newest marked fragment's FID (0 if none).

    ``client_id`` >= 0 restricts the answer to fragments written by that
    client (FIDs embed the writer's id), so clients sharing servers each
    find their *own* newest checkpoint.
    """

    client_id: int = -1
    principal: str = ""


@dataclass(frozen=True)
class HoldsRequest:
    """Ask which of ``fids`` the server stores (broadcast probe).

    Batched: one request carries every fragment the client is looking
    for, so locating F fragments across S servers costs at most S round
    trips, not F×S. The reply's payload lists the held fids
    (count-prefixed, 8 bytes each) and its ``value`` is their number.
    """

    fids: Tuple[int, ...]
    principal: str = ""


@dataclass(frozen=True)
class CreateAclRequest:
    """Create an ACL with the given reader/writer principals."""

    readers: Tuple[str, ...]
    writers: Tuple[str, ...]
    principal: str = ""


@dataclass(frozen=True)
class ModifyAclRequest:
    """Replace an ACL's membership sets (None leaves a set unchanged)."""

    aid: int
    readers: Optional[Tuple[str, ...]] = None
    writers: Optional[Tuple[str, ...]] = None
    principal: str = ""


@dataclass(frozen=True)
class DeleteAclRequest:
    """Delete an ACL."""

    aid: int
    principal: str = ""


@dataclass(frozen=True)
class ListFidsRequest:
    """Ask for every stored FID (optionally one client's): a diagnostic
    operation used by the fsck tool, not part of the paper's op set."""

    client_id: int = -1
    principal: str = ""


@dataclass(frozen=True)
class EvalScriptRequest:
    """Run a SwarmScript program on the server (the active-disk hook)."""

    script: str
    principal: str = ""


@dataclass(frozen=True)
class Response:
    """Successful reply: a small scalar ``value`` plus optional bytes."""

    value: int = 0
    payload: bytes = b""
    text: str = ""


@dataclass(frozen=True)
class ErrorResponse:
    """Failed reply; transports re-raise the named exception class."""

    error_class: str
    message: str


REQUEST_TYPES = (
    StoreRequest, RetrieveRequest, DeleteRequest, PreallocateRequest,
    LastMarkedRequest, HoldsRequest, CreateAclRequest, ModifyAclRequest,
    DeleteAclRequest, EvalScriptRequest, ListFidsRequest,
    MultiRetrieveRequest,
)
