"""Transports: how client code reaches storage servers.

Both transports expose the same interface, so the log layer and every
service above it are oblivious to whether they run in plain Python
(correctness tests, examples) or inside the discrete-event testbed
(benchmarks). Asynchronous operations return *future-like* objects with
``triggered`` / ``ok`` / ``value`` / ``exception`` attributes — the same
shape as simulator events, so simulated drivers can ``yield`` them
directly while synchronous callers just read the result.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import errors
from repro.rpc import messages as m
from repro.rpc.codec import decode_message, encode_message, wire_size
from repro.rpc.completion import CompletedFuture, scatter_call
from repro.util.packing import pack_fids, unpack_fids

__all__ = [
    "CompletedFuture",
    "LocalTransport",
    "SimTransport",
    "Transport",
    "dispatch",
    "raise_error_response",
]

#: One fan-out operation: where to send it and what to send.
Plan = Sequence[Tuple[str, Any]]


def dispatch(server, request) -> Any:
    """Apply one request to a :class:`~repro.server.server.StorageServer`.

    Returns a :class:`~repro.rpc.messages.Response`; converts library
    exceptions into :class:`~repro.rpc.messages.ErrorResponse` so the
    failure crosses the "network" as data, exactly as a real wire
    protocol would carry it.
    """
    try:
        if isinstance(request, m.StoreRequest):
            slot = server.store(request.fid, request.data,
                                principal=request.principal,
                                marked=request.marked,
                                acl_ranges=list(request.acl_ranges))
            return m.Response(value=slot)
        if isinstance(request, m.RetrieveRequest):
            data = server.retrieve(request.fid, request.offset, request.length,
                                   principal=request.principal)
            return m.Response(value=len(data), payload=data)
        if isinstance(request, m.MultiRetrieveRequest):
            parts = server.retrieve_many(request.ranges,
                                         principal=request.principal)
            # Lengths are explicit in the request, so the concatenated
            # payload needs no framing; value is the range count.
            return m.Response(value=len(parts),
                              payload=b"".join(bytes(part) for part in parts))
        if isinstance(request, m.DeleteRequest):
            server.delete(request.fid, principal=request.principal)
            return m.Response()
        if isinstance(request, m.PreallocateRequest):
            slot = server.preallocate(request.fid)
            return m.Response(value=slot)
        if isinstance(request, m.LastMarkedRequest):
            return m.Response(value=server.last_marked(request.client_id))
        if isinstance(request, m.HoldsRequest):
            held = server.holds_many(request.fids)
            return m.Response(value=len(held), payload=pack_fids(held))
        if isinstance(request, m.CreateAclRequest):
            aid = server.create_acl(set(request.readers), set(request.writers))
            return m.Response(value=aid)
        if isinstance(request, m.ModifyAclRequest):
            readers = set(request.readers) if request.readers is not None else None
            writers = set(request.writers) if request.writers is not None else None
            server.modify_acl(request.aid, readers, writers)
            return m.Response()
        if isinstance(request, m.DeleteAclRequest):
            server.delete_acl(request.aid)
            return m.Response()
        if isinstance(request, m.ListFidsRequest):
            fids = server.list_fids()
            if request.client_id >= 0:
                from repro.util.fids import fid_client

                fids = [fid for fid in fids
                        if fid_client(fid) == request.client_id]
            return m.Response(value=len(fids), payload=pack_fids(fids))
        if isinstance(request, m.EvalScriptRequest):
            from repro.server.script import SwarmScriptInterpreter

            interp = SwarmScriptInterpreter(server, principal=request.principal)
            result = interp.run(request.script)
            return m.Response(text=result)
        raise errors.BadRequestError("unknown request %r" % (request,))
    except errors.SwarmError as exc:
        return m.ErrorResponse(error_class=type(exc).__name__, message=str(exc))


def raise_error_response(response: m.ErrorResponse) -> None:
    """Re-raise the library exception an :class:`ErrorResponse` names."""
    cls = getattr(errors, response.error_class, errors.ServerError)
    if not (isinstance(cls, type) and issubclass(cls, errors.SwarmError)):
        cls = errors.ServerError
    raise cls(response.message)


class Transport(ABC):
    """Abstract client-side channel to a set of storage servers."""

    @abstractmethod
    def call(self, server_id: str, request) -> m.Response:
        """Perform one operation synchronously; raises on error."""

    @abstractmethod
    def submit(self, server_id: str, request):
        """Start one operation; returns a future-like object."""

    @abstractmethod
    def server_ids(self) -> List[str]:
        """Names of all reachable servers."""

    def probe(self, server_id: str) -> None:
        """One idempotent liveness probe; raises when unreachable.

        An empty ``HoldsRequest`` — the cheapest operation a server
        answers, with no side effects and no payload, so the failure
        detector can test a suspect server without perturbing its
        state or charging meaningful disk/NIC time. Wrapper transports
        inherit this, so a probe issued below the retry layer still
        passes through fault injection (a chaos run can fault probes
        like any other RPC).
        """
        self.call(server_id, m.HoldsRequest(fids=()))

    @property
    def submit_is_synchronous(self) -> bool:
        """Whether :meth:`submit` returns already-resolved futures.

        True for every transport except the simulated one in
        process (non-deferred) mode. Wrapper transports (retry, fault
        injection) use this to decide whether they can intercept the
        synchronous path.
        """
        return True

    def submit_many(self, plan: Plan) -> List:
        """Start every operation of ``plan``; returns futures in order.

        ``plan`` is a sequence of ``(server_id, request)`` pairs. The
        default implementation simply submits each operation — already
        overlapped on the simulator's true-async path, where every
        submission is a concurrent process contending for NICs, CPUs,
        and disk arms. Transports with a cheaper batched shape (and
        wrappers that must decide per operation) override this.

        Per-operation failures are captured inside the returned
        futures; ``submit_many`` itself never raises for an RPC error,
        so one dead server cannot wedge a fan-out.
        """
        return [self.submit(server_id, request)
                for server_id, request in plan]

    def broadcast_holds(self, fids: Iterable[int],
                        on_unreachable: Optional[Callable[[str], None]] = None,
                        ) -> Dict[int, str]:
        """Ask every server which of ``fids`` it stores.

        Returns ``{fid: server_id}`` for each fragment found. This is
        the self-hosting lookup used by reconstruction: no directory
        service exists, the cluster itself answers.

        Batched *and* overlapped: every server is asked about all
        missing fids in a single RPC, and all servers are asked
        concurrently — the whole broadcast costs one overlapped round
        trip (one RPC per server), the way Lustre fans out over its
        OSTs, instead of a sequential sweep of the stripe group.

        A server that cannot answer (crashed, partitioned, erroring)
        never wedges the broadcast: its failure stays inside its own
        future, fragments held by live servers are still located, and
        ``on_unreachable`` — when given — is told its id so callers can
        invalidate placements that point at it. A fragment reported by
        several servers resolves to the first in ``server_ids`` order,
        keeping the answer deterministic.
        """
        found: Dict[int, str] = {}
        pending = tuple(dict.fromkeys(fids))  # de-dup, keep caller order
        if not pending:
            return found
        server_ids = self.server_ids()
        futures = scatter_call(
            self, [(server_id, m.HoldsRequest(fids=pending))
                   for server_id in server_ids])
        for server_id, future in zip(server_ids, futures):
            if not future.ok:
                if not isinstance(future.exception, errors.ServerError):
                    raise future.exception
                if on_unreachable is not None:
                    on_unreachable(server_id)
                continue
            held, _end = unpack_fids(future.value.payload)
            for fid in held:
                found.setdefault(fid, server_id)
        return found


class LocalTransport(Transport):
    """Direct, synchronous, in-process transport.

    With ``verify_codec=True`` every message and reply is round-tripped
    through the binary codec, keeping the wire format honest even in
    pure-functional tests.
    """

    def __init__(self, servers: Dict[str, Any], verify_codec: bool = False) -> None:
        self.servers = dict(servers)
        self.verify_codec = verify_codec

    def add_server(self, server) -> None:
        """Register another server (e.g. grown cluster in examples)."""
        self.servers[server.server_id] = server

    def server_ids(self) -> List[str]:
        return list(self.servers)

    def _dispatch(self, server_id: str, request):
        server = self.servers.get(server_id)
        if server is None:
            raise errors.ServerUnavailableError("no server %r" % server_id)
        if self.verify_codec:
            request = decode_message(encode_message(request))
        response = dispatch(server, request)
        if self.verify_codec:
            response = decode_message(encode_message(response))
        return response

    def call(self, server_id: str, request) -> m.Response:
        response = self._dispatch(server_id, request)
        if isinstance(response, m.ErrorResponse):
            raise_error_response(response)
        return response

    def submit(self, server_id: str, request) -> CompletedFuture:
        try:
            return CompletedFuture(value=self.call(server_id, request))
        except errors.SwarmError as exc:
            return CompletedFuture(exception=exc)


class SimTransport(Transport):
    """Transport that routes operations through the simulated testbed.

    Each :meth:`submit` becomes a simulator process walking the real
    pipeline — client CPU (protocol send cost), client NIC, switch
    fabric, server NIC, server CPU, server disk, and the reply path —
    while the *functional* effect is applied to the in-process server at
    the disk stage. Because NICs, CPUs, and disk arms are simulator
    resources, overlapping operations contend exactly where real ones
    would: a fragment can be crossing the wire while the server's disk
    writes its predecessor, which is the pipelining §2.2 describes.

    :meth:`call` applies the functional effect immediately and adds the
    operation's modeled service time to a *deferred-time ledger* that
    single-threaded simulated drivers (e.g. the Andrew-benchmark runner)
    fold into their timeline.
    """

    def __init__(self, sim, switch, client_node, server_nodes: Dict[str, Any],
                 cpu_model, deferred_mode: bool = False) -> None:
        self.sim = sim
        self.switch = switch
        self.client_node = client_node
        self.server_nodes = dict(server_nodes)
        self.cpu_model = cpu_model
        self.deferred_mode = deferred_mode
        self.deferred_time = 0.0

    def server_ids(self) -> List[str]:
        return list(self.server_nodes)

    @property
    def submit_is_synchronous(self) -> bool:
        return self.deferred_mode

    # -- synchronous path ---------------------------------------------------

    def call(self, server_id: str, request) -> m.Response:
        node = self._node(server_id)
        response = dispatch(node.server, request)
        self.deferred_time += self._estimate_round_trip(node, request, response)
        if isinstance(response, m.ErrorResponse):
            raise_error_response(response)
        return response

    def take_deferred_time(self) -> float:
        """Return and clear the accumulated synchronous service time."""
        elapsed, self.deferred_time = self.deferred_time, 0.0
        return elapsed

    def _estimate_round_trip(self, node, request, response) -> float:
        params = self.switch.params
        out = wire_size(request)
        back = wire_size(response)
        time = self.cpu_model.send_cost(out) + self.cpu_model.receive_cost(back)
        time += params.wire_time(out) + params.wire_time(back)
        time += 2 * params.per_message_latency_s
        time += self.cpu_model.server_request_cost(out + back)
        time += self._disk_time(node, request)
        return time

    def _disk_time(self, node, request) -> float:
        model = node.disk.model
        if isinstance(request, m.StoreRequest):
            # Fragment write plus the fragment-map commit (small, seeks).
            return (model.access_time(len(request.data), sequential=False,
                                      nearby=True)
                    + model.access_time(4096, sequential=False))
        if isinstance(request, m.RetrieveRequest):
            if node.server.last_retrieve_was_cached:
                return 0.0
            length = (request.length if request.length >= 0
                      else node.server.config.fragment_size)
            return model.access_time(length, sequential=False)
        if isinstance(request, m.MultiRetrieveRequest):
            # One positioned access per uncached fragment the batch
            # touched (the server coalesced each fragment's ranges into
            # a span); cached fragments cost no disk time.
            return sum(model.access_time(max(span_len, 1), sequential=False)
                       for _fid, _offset, span_len
                       in node.server.last_multi_disk_spans)
        if isinstance(request, m.DeleteRequest):
            return model.access_time(4096, sequential=False)
        return 0.0

    # -- asynchronous path ----------------------------------------------------

    def submit(self, server_id: str, request):
        if self.deferred_mode:
            # Deferred mode: apply the functional effect now and fold the
            # modeled service time into the ledger. Used by sequential
            # single-client workloads (e.g. the Andrew benchmark), whose
            # drivers cannot yield from inside synchronous FS code.
            try:
                return CompletedFuture(value=self.call(server_id, request))
            except errors.SwarmError as exc:
                return CompletedFuture(exception=exc)
        return self.sim.process(self._operation(server_id, request),
                                name="rpc %s" % type(request).__name__)

    def submit_many(self, plan):
        """Launch every operation of ``plan`` as a concurrent process.

        On the true-async path this is the default behavior (each
        submission already runs concurrently). In *deferred* mode the
        override is where read-side pipelining happens: instead of
        charging each call's full estimated round trip serially, all
        operations are launched as simultaneous simulator processes and
        the *elapsed simulated time of the overlapped batch* is charged
        to the ledger — so a width-W scatter costs roughly one round
        trip plus whatever NIC/fabric/disk contention the resource
        model produces, not W serial round trips. Contention emerges
        from the model; nothing here guesses at it.
        """
        plan = list(plan)
        if not self.deferred_mode or len(plan) <= 1:
            return [self.submit(server_id, request)
                    for server_id, request in plan]
        if self.sim._running:
            # Re-entrant batch from inside a driven simulation: fall
            # back to the serial deferred estimate rather than nesting.
            return [self.submit(server_id, request)
                    for server_id, request in plan]
        started = self.sim.now
        processes = []
        for server_id, request in plan:
            process = self.sim.process(
                self._operation(server_id, request),
                name="rpc %s" % type(request).__name__)
            # A waiter keeps per-operation failures inside the process
            # instead of sim.run() re-raising the first one.
            process.add_callback(lambda _event: None)
            processes.append(process)
        self.sim.run()
        self.deferred_time += self.sim.now - started
        futures = []
        for process in processes:
            if process.exception is not None:
                futures.append(CompletedFuture(exception=process.exception))
            else:
                futures.append(CompletedFuture(value=process.value))
        return futures

    def _operation(self, server_id: str, request):
        node = self._node(server_id)
        client = self.client_node
        out_size = wire_size(request)
        # Client-side protocol processing.
        yield from client.cpu.compute(self.cpu_model.send_cost(out_size))
        # Network: client NIC -> fabric -> server NIC.
        yield from self._transfer(client.nic, node.nic, out_size)
        # Server-side protocol processing.
        yield from node.cpu.compute(self.cpu_model.server_request_cost(out_size))
        # Functional effect, then the disk work it implies.
        response = dispatch(node.server, request)
        yield from self._disk_work(node, request, response)
        # Reply.
        back_size = wire_size(response)
        yield from self._transfer(node.nic, client.nic, back_size)
        yield from client.cpu.compute(self.cpu_model.receive_cost(back_size))
        if isinstance(response, m.ErrorResponse):
            raise_error_response(response)
        return response

    _MAP_REGION = -64.0  # disk position of the fragment map, far from slots

    def _disk_work(self, node, request, response):
        """Charge the disk operations one request implies."""
        if isinstance(request, m.StoreRequest) and isinstance(response, m.Response):
            yield from node.disk.positioned_access(len(request.data),
                                                   float(response.value))
            yield from node.disk.positioned_access(4096, self._MAP_REGION)
        elif isinstance(request, m.RetrieveRequest) and isinstance(response, m.Response):
            if node.server.last_retrieve_was_cached:
                return  # served from server memory: no disk time
            slot = node.server.slots.slot_of(request.fid) or 0
            # Position includes the intra-fragment offset so consecutive
            # block reads from one fragment are sequential on the platter.
            position = float(slot) + max(0, request.offset) / float(1 << 20)
            yield from node.disk.positioned_access(
                max(len(response.payload), 1), position, write=False)
        elif isinstance(request, m.MultiRetrieveRequest) and isinstance(
                response, m.Response):
            for fid, offset, span_len in node.server.last_multi_disk_spans:
                slot = node.server.slots.slot_of(fid) or 0
                position = float(slot) + max(0, offset) / float(1 << 20)
                yield from node.disk.positioned_access(
                    max(span_len, 1), position, write=False)
        elif isinstance(request, m.DeleteRequest):
            yield from node.disk.positioned_access(4096, self._MAP_REGION)

    def _transfer(self, src_nic, dst_nic, size: int):
        params = self.switch.params
        wire = params.wire_time(size)
        yield src_nic.tx.request()
        try:
            yield self.sim.timeout(wire)
        finally:
            src_nic.tx.release()
        fabric = getattr(self.switch, "fabric", None)
        if fabric is not None:
            yield from fabric.use(size / params.fabric_bandwidth_bytes_per_s)
        yield self.sim.timeout(params.per_message_latency_s)
        yield dst_nic.rx.request()
        try:
            yield self.sim.timeout(wire)
        finally:
            dst_nic.rx.release()

    def _node(self, server_id: str):
        node = self.server_nodes.get(server_id)
        if node is None:
            raise errors.ServerUnavailableError("no server %r" % server_id)
        return node
