"""Per-path write leases.

High-level synchronization for clients that share files — exactly where
the paper says synchronization belongs ("two applications running on
different clients must synchronize their accesses to shared data ...
even if the storage system enforces consistency"). One writer per path
at a time; readers need no lease (they get snapshot consistency from
the manager's versioned block maps).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ServiceError


class LeaseManager:
    """Grants exclusive per-path write leases to named clients."""

    def __init__(self) -> None:
        self._holders: Dict[str, str] = {}
        self.grants = 0
        self.contentions = 0

    def acquire(self, path: str, client: str) -> None:
        """Take the write lease on ``path``; raises if someone else
        holds it (callers retry/queue at their level)."""
        holder = self._holders.get(path)
        if holder is not None and holder != client:
            self.contentions += 1
            raise ServiceError(
                "lease on %r held by %r, wanted by %r"
                % (path, holder, client))
        self._holders[path] = client
        self.grants += 1

    def release(self, path: str, client: str) -> None:
        """Give the lease back (idempotent for the holder)."""
        holder = self._holders.get(path)
        if holder is None:
            return
        if holder != client:
            raise ServiceError(
                "client %r releasing %r's lease on %r"
                % (client, holder, path))
        del self._holders[path]

    def holder(self, path: str) -> Optional[str]:
        """Current lease holder, if any."""
        return self._holders.get(path)

    def revoke_client(self, client: str) -> int:
        """Drop every lease a (crashed) client held; returns the count."""
        stale = [path for path, holder in self._holders.items()
                 if holder == client]
        for path in stale:
            del self._holders[path]
        return len(stale)
