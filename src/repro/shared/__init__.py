"""A distributed file service layered on Swarm (§2.3, §4).

The paper: "Distributed services, such as distributed file systems and
distributed cooperative caching, can also be layered on the base Swarm
functionality", with synchronization needed *only* among the clients
that share — and notes that a Frangipani-style file system "could be
implemented as a Swarm service".

This package is that service, in the xFS/Zebra mold the authors came
from:

* every client writes file **data** into its *own* striped log — the
  Swarm way, no write-sharing of logs, full parity protection;
* one client acts as the **namespace manager**: it owns directories and
  per-file block maps (client-id + block address per file block), and
  serializes metadata operations. The manager's state is itself an
  ordinary Swarm service — checkpointed to its log, rebuilt by record
  replay after a crash;
* readers fetch the block map from the manager and then read the
  owning clients' fragments directly from the storage servers (located
  by broadcast if needed, reconstructed through parity if a server is
  down) — data never flows through the manager;
* a small **lease manager** serializes whole-file writes; version
  numbers keep client caches honest.

Cross-client calls are direct method invocations on shared objects
(this is a single-process reproduction); the interfaces are RPC-shaped
so the substitution is confined to the transport.
"""

from repro.shared.lease import LeaseManager
from repro.shared.manager import FileMap, NamespaceManager
from repro.shared.client import SharedSwarmClient

__all__ = ["LeaseManager", "FileMap", "NamespaceManager",
           "SharedSwarmClient"]
