"""The shared-file-system client.

Each participating client owns (a) a Swarm stack with a
:class:`SharedDataService` — a thin owner for the file blocks it writes
into its own log — and (b) handles to the shared
:class:`~repro.shared.manager.NamespaceManager` and
:class:`~repro.shared.lease.LeaseManager`.

Write path: take the path's write lease, append the file's blocks to
the *local* log, flush (durable, parity-protected), publish the block
map to the manager, release the lease. Read path: fetch the block map,
then read each block straight from the storage servers — the client's
log layer locates foreign fragments by broadcast and reconstructs them
through parity if a server is down. Data never touches the manager.

Consistency: whole-file writes are atomic at the manager (one
``publish``), and version numbers validate client caches — readers see
either the old or the new file, never a mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.log.address import BlockAddress
from repro.services.base import Service
from repro.services.stack import ServiceStack
from repro.shared.lease import LeaseManager
from repro.shared.manager import FileMap, NamespaceManager
from repro.sting.path import normalize


class SharedDataService(Service):
    """Owns the shared-file blocks this client contributes."""

    def __init__(self, service_id: int) -> None:
        super().__init__(service_id, "shared-data")
        # Block moves matter here too: the cleaner may relocate our
        # published blocks; we forward the new address to the manager
        # through the client (wired in SharedSwarmClient).
        self.move_listener = None

    def on_block_moved(self, old_addr, new_addr, create_info) -> None:
        if self.move_listener is not None:
            self.move_listener(old_addr, new_addr, create_info)


class SharedSwarmClient:
    """One participant in the shared namespace."""

    def __init__(self, client_id: int, stack: ServiceStack,
                 data_service: SharedDataService,
                 manager: NamespaceManager, leases: LeaseManager,
                 block_size: int = 8192) -> None:
        self.client_id = client_id
        self.name = "client-%d" % client_id
        self.stack = stack
        self.data = data_service
        self.manager = manager
        self.leases = leases
        self.block_size = block_size
        self._cache: Dict[str, Tuple[int, bytes]] = {}
        data_service.move_listener = self._on_block_moved
        self.cache_hits = 0
        self.remote_block_reads = 0

    # ------------------------------------------------------------------
    # Namespace pass-throughs
    # ------------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a shared directory."""
        self.manager.mkdir(path)

    def listdir(self, path: str) -> List[str]:
        """List a shared directory."""
        return self.manager.listdir(path)

    def exists(self, path: str) -> bool:
        """Whether a shared path exists."""
        return self.manager.exists(path)

    def unlink(self, path: str) -> None:
        """Remove a shared file (under its lease)."""
        path = normalize(path)
        self.leases.acquire(path, self.name)
        try:
            self.manager.unlink(path)
            self._cache.pop(path, None)
        finally:
            self.leases.release(path, self.name)

    def rmdir(self, path: str) -> None:
        """Remove an empty shared directory."""
        self.manager.rmdir(path)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> int:
        """Create/replace a shared file; returns the new version.

        The data becomes durable in *this client's* log before the
        manager learns the new map, so a manager that acknowledges a
        version can always serve it.
        """
        path = normalize(path)
        self.leases.acquire(path, self.name)
        try:
            if not self.manager.exists(path):
                self.manager.create(path)
            file_map = FileMap(size=len(data), block_size=self.block_size)
            for index in range(0, max(1, -(-len(data) // self.block_size))):
                chunk = data[index * self.block_size:
                             (index + 1) * self.block_size]
                if not chunk and index > 0:
                    break
                addr = self.stack.write_block(
                    self.data, chunk,
                    create_info=("%s#%d" % (path, index)).encode("utf-8"))
                file_map.blocks[index] = (self.client_id, addr.fid,
                                          addr.offset, addr.length)
            self.stack.flush().wait()
            version = self.manager.publish(path, file_map)
            self._cache[path] = (version, data)
            return version
        finally:
            self.leases.release(path, self.name)

    def read_file(self, path: str) -> bytes:
        """Read a shared file, wherever its blocks live."""
        path = normalize(path)
        file_map = self.manager.file_map(path)
        cached = self._cache.get(path)
        if cached is not None and cached[0] == file_map.version:
            self.cache_hits += 1
            return cached[1]
        out = bytearray()
        for index in sorted(file_map.blocks):
            owner, fid, offset, length = file_map.blocks[index]
            addr = BlockAddress(fid, offset, length)
            if owner != self.client_id:
                self.remote_block_reads += 1
            # Through the stack, so caching layers (including the
            # cooperative cache) intercept the block.
            out += self.stack.read_block(self.data, addr)
        data = bytes(out[:file_map.size])
        self._cache[path] = (file_map.version, data)
        return data

    def version(self, path: str) -> int:
        """Manager's current version of ``path``."""
        return self.manager.version(path)

    # ------------------------------------------------------------------
    # Cleaner integration
    # ------------------------------------------------------------------

    def _on_block_moved(self, old_addr, new_addr, create_info) -> None:
        """One of our published blocks moved: re-publish its address."""
        try:
            tag = create_info.decode("utf-8")
            path, index_text = tag.rsplit("#", 1)
            index = int(index_text)
        except (UnicodeDecodeError, ValueError):
            return
        try:
            file_map = self.manager.file_map(path)
        except ServiceError:
            return
        except Exception:
            return
        current = file_map.blocks.get(index)
        if current is None:
            return
        owner, fid, offset, length = current
        if (owner == self.client_id and fid == old_addr.fid
                and offset == old_addr.offset):
            file_map.blocks[index] = (owner, new_addr.fid, new_addr.offset,
                                      new_addr.length)
            self.manager.publish(path, file_map)


def build_shared_client(cluster, client_id: int,
                        manager: NamespaceManager, leases: LeaseManager,
                        manager_stack: Optional[ServiceStack] = None,
                        block_size: int = 8192) -> SharedSwarmClient:
    """Assemble one shared-FS participant over a cluster.

    The manager service must already be pushed on *some* client's stack
    (``manager_stack``); if this client is the manager's host, pass that
    stack so the data service shares it.
    """
    if manager_stack is not None and manager.stack is manager_stack:
        stack = manager_stack
        data = stack.push(SharedDataService(manager.service_id + 1))
    else:
        stack = cluster.make_stack(client_id)
        data = stack.push(SharedDataService(1))
    return SharedSwarmClient(client_id, stack, data, manager, leases,
                             block_size=block_size)
