"""The namespace manager: shared metadata as a Swarm service.

The manager owns the shared namespace (directories) and, per file, a
versioned *block map*: which client's log holds each file block, at
which address. It runs as an ordinary stacked service on the manager
client's own log, so its state enjoys everything Swarm provides —
striping, parity, checkpoints, and record-replay crash recovery.

Every mutating operation appends one manager record (a compact JSON
payload; metadata is small and rare relative to data), so a manager
that crashes between checkpoints rebuilds exactly the operations it
acknowledged and flushed. Data blocks are *not* the manager's problem:
clients write them to their own logs and only publish addresses here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DirectoryNotEmptyFsError,
    FileExistsFsError,
    FileNotFoundFsError,
    NotADirectoryFsError,
    ServiceError,
)
from repro.log.records import Record, RecordType
from repro.services.base import Service
from repro.sting.path import normalize, split_parent

RT_SHARED_OP = RecordType.USER_BASE + 20

BlockRef = Tuple[int, int, int, int]
"""(owner_client_id, fid, offset, length) — one published file block."""


@dataclass
class FileMap:
    """Versioned location map of one shared file."""

    version: int = 0
    size: int = 0
    block_size: int = 8192
    blocks: Dict[int, BlockRef] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"v": self.version, "s": self.size, "bs": self.block_size,
                "b": {str(i): list(ref) for i, ref in self.blocks.items()}}

    @classmethod
    def from_json(cls, raw: dict) -> "FileMap":
        return cls(version=raw["v"], size=raw["s"], block_size=raw["bs"],
                   blocks={int(i): tuple(ref)
                           for i, ref in raw["b"].items()})


class NamespaceManager(Service):
    """Serializes shared-namespace metadata operations."""

    def __init__(self, service_id: int) -> None:
        super().__init__(service_id, "ns-manager")
        self._dirs: Dict[str, set] = {"/": set()}
        self._files: Dict[str, FileMap] = {}

    # ------------------------------------------------------------------
    # Logging of operations
    # ------------------------------------------------------------------

    def _log_op(self, op: str, **args) -> None:
        payload = json.dumps({"op": op, **args},
                             sort_keys=True).encode("utf-8")
        self.stack.write_record(self, RT_SHARED_OP, payload)

    def _apply(self, op: str, args: dict) -> None:
        if op == "mkdir":
            self._do_mkdir(args["path"])
        elif op == "create":
            self._do_create(args["path"])
        elif op == "unlink":
            self._do_unlink(args["path"])
        elif op == "rmdir":
            self._do_rmdir(args["path"])
        elif op == "publish":
            self._do_publish(args["path"],
                             FileMap.from_json(args["map"]))

    # ------------------------------------------------------------------
    # Namespace operations (called by clients)
    # ------------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a shared directory."""
        self._do_mkdir(path)
        self._log_op("mkdir", path=normalize(path))

    def _do_mkdir(self, path: str) -> None:
        path = normalize(path)
        parent, name = split_parent(path)
        self._require_dir(parent)
        if path in self._dirs or path in self._files:
            raise FileExistsFsError("path exists: %r" % path)
        self._dirs[path] = set()
        self._dirs[parent].add(name)

    def create(self, path: str) -> None:
        """Create an empty shared file."""
        self._do_create(path)
        self._log_op("create", path=normalize(path))

    def _do_create(self, path: str) -> None:
        path = normalize(path)
        parent, name = split_parent(path)
        self._require_dir(parent)
        if path in self._files or path in self._dirs:
            raise FileExistsFsError("path exists: %r" % path)
        self._files[path] = FileMap()
        self._dirs[parent].add(name)

    def unlink(self, path: str) -> None:
        """Remove a shared file (its blocks stay in the owner's log
        until that owner deletes them; see SharedSwarmClient)."""
        self._do_unlink(path)
        self._log_op("unlink", path=normalize(path))

    def _do_unlink(self, path: str) -> None:
        path = normalize(path)
        if path not in self._files:
            raise FileNotFoundFsError("no shared file %r" % path)
        parent, name = split_parent(path)
        del self._files[path]
        self._dirs[parent].discard(name)

    def rmdir(self, path: str) -> None:
        """Remove an empty shared directory."""
        self._do_rmdir(path)
        self._log_op("rmdir", path=normalize(path))

    def _do_rmdir(self, path: str) -> None:
        path = normalize(path)
        if path == "/":
            raise ServiceError("cannot remove the root")
        if path not in self._dirs:
            raise NotADirectoryFsError("no shared directory %r" % path)
        if self._dirs[path]:
            raise DirectoryNotEmptyFsError("directory not empty: %r" % path)
        parent, name = split_parent(path)
        del self._dirs[path]
        self._dirs[parent].discard(name)

    def publish(self, path: str, file_map: FileMap) -> int:
        """Install a new block map for ``path``; returns the version.

        The writer must already have made the data durable in its own
        log (flushed) — the manager only records locations.
        """
        file_map.version = self._files[normalize(path)].version + 1 \
            if normalize(path) in self._files else 1
        self._do_publish(path, file_map)
        self._log_op("publish", path=normalize(path),
                     map=file_map.to_json())
        return file_map.version

    def _do_publish(self, path: str, file_map: FileMap) -> None:
        path = normalize(path)
        if path not in self._files:
            raise FileNotFoundFsError("no shared file %r" % path)
        self._files[path] = file_map

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def listdir(self, path: str) -> List[str]:
        """Sorted entries of a shared directory."""
        path = normalize(path)
        self._require_dir(path)
        return sorted(self._dirs[path])

    def exists(self, path: str) -> bool:
        """Whether a shared path resolves."""
        path = normalize(path)
        return path in self._files or path in self._dirs

    def file_map(self, path: str) -> FileMap:
        """Current versioned block map of a shared file."""
        path = normalize(path)
        file_map = self._files.get(path)
        if file_map is None:
            raise FileNotFoundFsError("no shared file %r" % path)
        return file_map

    def version(self, path: str) -> int:
        """Current version of a shared file (cache validation)."""
        return self.file_map(path).version

    def _require_dir(self, path: str) -> None:
        if path not in self._dirs:
            if path in self._files:
                raise NotADirectoryFsError("%r is a file" % path)
            raise FileNotFoundFsError("no shared directory %r" % path)

    # ------------------------------------------------------------------
    # Service lifecycle
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> bytes:
        state = {
            "dirs": {path: sorted(names)
                     for path, names in self._dirs.items()},
            "files": {path: fm.to_json()
                      for path, fm in self._files.items()},
        }
        return json.dumps(state, sort_keys=True).encode("utf-8")

    def restore(self, state: Optional[bytes],
                records: List[Record]) -> None:
        self._dirs = {"/": set()}
        self._files = {}
        if state:
            raw = json.loads(state.decode("utf-8"))
            self._dirs = {path: set(names)
                          for path, names in raw["dirs"].items()}
            self._files = {path: FileMap.from_json(fm)
                           for path, fm in raw["files"].items()}
        for record in records:
            if record.rtype != RT_SHARED_OP:
                continue
            raw = json.loads(record.payload.decode("utf-8"))
            op = raw.pop("op")
            try:
                self._apply(op, raw)
            except Exception:
                # Replay is best-effort idempotent: an op that lost a
                # race with the checkpoint state is already applied.
                pass
