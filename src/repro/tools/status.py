"""swarmctl-style cluster status reporting.

Collects per-server and per-client statistics from a running cluster
and renders them as a compact text dashboard — the operator's view of
the system the paper describes: slot occupancy, bytes moved, marked
fragments (checkpoint freshness), and which clients own how much of
each server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.util.fids import fid_client


@dataclass
class ServerStatus:
    """One server's snapshot."""

    server_id: str
    available: bool
    slots_used: int
    slots_total: int
    bytes_stored: int
    bytes_retrieved: int
    store_ops: int
    retrieve_ops: int
    newest_marked_fid: int
    fragments_by_client: Dict[int, int] = field(default_factory=dict)

    @property
    def fill_fraction(self) -> float:
        """Occupied slot fraction."""
        if self.slots_total <= 0:
            return 0.0
        return self.slots_used / self.slots_total


@dataclass
class ClusterStatus:
    """Snapshot of a whole cluster."""

    servers: List[ServerStatus] = field(default_factory=list)

    @property
    def total_fragments(self) -> int:
        """Fragments stored across all servers."""
        return sum(server.slots_used for server in self.servers)

    @property
    def client_ids(self) -> List[int]:
        """Every client with at least one stored fragment."""
        ids = set()
        for server in self.servers:
            ids.update(server.fragments_by_client)
        return sorted(ids)

    def imbalance(self) -> float:
        """Max/min fragment count across live servers (1.0 = perfect).

        Rotated parity placement should keep this near 1; a hot spot
        shows up immediately.
        """
        counts = [server.slots_used for server in self.servers
                  if server.available and server.slots_used > 0]
        if len(counts) < 2:
            return 1.0
        return max(counts) / min(counts)


def collect_status(cluster) -> ClusterStatus:
    """Snapshot a :class:`LocalCluster` or :class:`SimCluster`."""
    if hasattr(cluster, "server_nodes"):
        servers = {sid: node.server
                   for sid, node in cluster.server_nodes.items()}
    else:
        servers = cluster.servers
    status = ClusterStatus()
    for server_id in sorted(servers):
        server = servers[server_id]
        if server.available:
            fids = server.list_fids()
            by_client: Dict[int, int] = {}
            for fid in fids:
                client = fid_client(fid)
                by_client[client] = by_client.get(client, 0) + 1
            entry = ServerStatus(
                server_id=server_id, available=True,
                slots_used=len(fids),
                slots_total=server.config.total_slots,
                bytes_stored=server.bytes_stored,
                bytes_retrieved=server.bytes_retrieved,
                store_ops=server.store_ops,
                retrieve_ops=server.retrieve_ops,
                newest_marked_fid=server.last_marked(),
                fragments_by_client=by_client)
        else:
            entry = ServerStatus(
                server_id=server_id, available=False, slots_used=0,
                slots_total=server.config.total_slots, bytes_stored=0,
                bytes_retrieved=0, store_ops=0, retrieve_ops=0,
                newest_marked_fid=0)
        status.servers.append(entry)
    return status


def format_status(status: ClusterStatus) -> str:
    """Render a :class:`ClusterStatus` as a text dashboard."""
    lines = [
        "server  state  slots        stored      retrieved  ops(s/r)   clients",
        "------  -----  -----------  ----------  ---------  ---------  -------",
    ]
    for server in status.servers:
        if not server.available:
            lines.append("%-6s  DOWN" % server.server_id)
            continue
        clients = ",".join("c%d:%d" % (client, count)
                           for client, count in
                           sorted(server.fragments_by_client.items()))
        lines.append(
            "%-6s  up     %4d/%-6d  %7.1f MB  %6.1f MB  %4d/%-4d  %s"
            % (server.server_id, server.slots_used, server.slots_total,
               server.bytes_stored / 1e6, server.bytes_retrieved / 1e6,
               server.store_ops, server.retrieve_ops, clients))
    lines.append("")
    lines.append("fragments: %d   clients: %s   balance(max/min): %.2f"
                 % (status.total_fragments,
                    status.client_ids or "-", status.imbalance()))
    return "\n".join(lines)
