"""Operational tools: log verification (fsck) and cluster repair.

Not described in the paper, but what an operator of the paper's system
would need on day two: a scrubber that walks a client's log verifying
fragment checksums and stripe-parity consistency, reports damage, and
re-materializes missing fragments onto replacement servers.
"""

from repro.tools.fsck import FsckReport, StripeFinding, check_client_log, repair_client_log
from repro.tools.status import ClusterStatus, ServerStatus, collect_status, format_status

__all__ = ["FsckReport", "StripeFinding", "check_client_log",
           "repair_client_log", "ClusterStatus", "ServerStatus",
           "collect_status", "format_status"]
