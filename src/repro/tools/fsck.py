"""swarm-fsck: verify and repair one client's striped log.

The scrubber asks every reachable server for the client's FIDs
(a diagnostic ``ListFids`` operation), fetches each fragment, and
checks three invariant families:

* **Integrity** — every fragment image parses and its header checksum
  matches (payload structure is walked item by item).
* **Stripe consistency** — every member of a stripe agrees on the
  stripe descriptor, and every parity member's payload equals the
  coding engine's encode of its data siblings' images (XOR for single
  parity, Reed–Solomon slots for ``m ≥ 2``).
* **Availability** — stripes missing at most ``m`` members (``m`` =
  the stripe's parity count) are *degraded* (still recoverable); with
  more missing — or any member missing from a replication-free
  ``m=0`` stripe — they are *lost*.

``repair_client_log`` re-materializes missing-but-recoverable fragments
onto a designated server, returning the log to full redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SwarmError
from repro.log.coding import engine_for_stripe
from repro.log.fragment import (
    Fragment,
    FragmentBuilder,
    FragmentHeader,
    HEADER_SIZE,
    NO_PARITY,
    make_parity_fragment,
)
from repro.log.location import LocationCache
from repro.log.reconstruct import Reconstructor
from repro.rpc import messages as m
from repro.rpc.completion import scatter_call
from repro.util.packing import unpack_fids


@dataclass
class StripeFinding:
    """Health of one stripe."""

    base_fid: int
    width: int
    present: List[int] = field(default_factory=list)
    missing: List[int] = field(default_factory=list)
    corrupt: List[int] = field(default_factory=list)
    parity_valid: Optional[bool] = None
    parity_count: int = 1
    """Parity members this stripe carries (``m`` of its k-of-n code);
    bounds how many bad members stay recoverable. 0 for
    replication-free stripes, whose every loss is final."""
    torn_tail: bool = False
    """The present members form an exact prefix of the stripe (all of
    them intact) and everything after — more than parity could rebuild —
    is missing: the signature of a client that died mid-scatter. The
    landed prefix is a consistent log tail (stores dispatch in stripe
    order), so the stripe is *torn*, not lost: nothing in the missing
    suffix was ever durable, and repair can complete the stripe with
    empty sealed members plus recomputed parity."""

    @property
    def status(self) -> str:
        """``healthy`` / ``degraded`` (recoverable) / ``torn`` /
        ``lost``."""
        bad = len(self.missing) + len(self.corrupt)
        if bad == 0 and self.parity_valid is not False:
            return "healthy"
        if self.parity_count and bad <= self.parity_count:
            return "degraded"
        if self.torn_tail:
            return "torn"
        return "lost"


@dataclass
class FsckReport:
    """Everything the scrubber found for one client log."""

    client_id: int
    fragments_checked: int = 0
    stripes: List[StripeFinding] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when every stripe is fully intact."""
        return all(s.status == "healthy" for s in self.stripes)

    @property
    def repairable(self) -> bool:
        """True when every stripe is healthy, degraded, or torn —
        i.e. :func:`repair_client_log` can return the log to full
        health without losing anything that was ever durable."""
        return all(s.status != "lost" for s in self.stripes)

    def by_status(self, status: str) -> List[StripeFinding]:
        """Stripes with the given status."""
        return [s for s in self.stripes if s.status == status]

    def summary(self) -> str:
        """One-line human summary."""
        return ("client %d: %d fragments, %d stripes "
                "(%d healthy, %d degraded, %d torn, %d lost)"
                % (self.client_id, self.fragments_checked,
                   len(self.stripes), len(self.by_status("healthy")),
                   len(self.by_status("degraded")),
                   len(self.by_status("torn")),
                   len(self.by_status("lost"))))


def _list_client_fids(transport, client_id: int,
                      principal: str) -> Dict[int, str]:
    """All of the client's FIDs, mapped to a server that holds each.

    The listing scatters to every server at once — a full-cluster
    inventory sweep for the cost of one overlapped round trip.
    Unreachable servers are skipped (their fragments then show up as
    missing stripe members downstream, which is the truth).
    """
    request = m.ListFidsRequest(client_id=client_id, principal=principal)
    server_ids = transport.server_ids()
    futures = scatter_call(
        transport, [(server_id, request) for server_id in server_ids])
    locations: Dict[int, str] = {}
    for server_id, future in zip(server_ids, futures):
        if not future.ok:
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            continue
        fids, _end = unpack_fids(future.value.payload)
        for fid in fids:
            locations[fid] = server_id
    return locations


def _fetch_all(transport, targets: Dict[int, str],
               principal: str) -> Dict[int, bytes]:
    """Fetch many fragments concurrently; failures are simply absent."""
    plan = sorted(targets.items())
    futures = scatter_call(
        transport,
        [(server_id, m.RetrieveRequest(fid=fid, principal=principal))
         for fid, server_id in plan])
    images: Dict[int, bytes] = {}
    for (fid, _server_id), future in zip(plan, futures):
        if not future.ok:
            if not isinstance(future.exception, SwarmError):
                raise future.exception
            continue
        images[fid] = bytes(future.value.payload)
    return images


def check_client_log(transport, client_id: int,
                     principal: str = "") -> FsckReport:
    """Scrub every stripe of one client's log."""
    report = FsckReport(client_id=client_id)
    locations = _list_client_fids(transport, client_id, principal)
    fetched = _fetch_all(transport, locations, principal)
    # Parse what is present; learn stripe shapes from headers.
    images: Dict[int, bytes] = {}
    headers: Dict[int, FragmentHeader] = {}
    corrupt: Set[int] = set()
    for fid, image in sorted(fetched.items()):
        report.fragments_checked += 1
        try:
            fragment = Fragment.decode(image, verify_payload=True)
        except SwarmError:
            corrupt.add(fid)
            continue
        images[fid] = image
        headers[fid] = fragment.header

    # Group into stripes by descriptor. A corrupt fragment cannot name
    # its own stripe, but a surviving sibling's descriptor covers it
    # (consecutive FIDs), so known stripes absorb corrupt members below.
    stripe_shapes: Dict[int, Tuple[int, int]] = {}
    for header in headers.values():
        stripe_shapes[header.stripe_base_fid] = (header.stripe_width,
                                                 header.parity_index)

    for base, (width, parity_index) in sorted(stripe_shapes.items()):
        if parity_index == NO_PARITY or parity_index >= width:
            nparity = 0
        else:
            nparity = width - parity_index
        finding = StripeFinding(base_fid=base, width=width,
                                parity_count=nparity)
        member_images: Dict[int, bytes] = {}
        for offset in range(width):
            fid = base + offset
            if fid in corrupt:
                finding.corrupt.append(fid)
            elif fid in images:
                finding.present.append(fid)
                member_images[offset] = images[fid]
            else:
                finding.missing.append(fid)
        if not finding.missing and not finding.corrupt and nparity:
            ndata = width - nparity
            data_images = [member_images[off] for off in range(ndata)]
            engine = engine_for_stripe(width, ndata)
            expected = engine.encode(data_images)
            finding.parity_valid = all(
                bytes(Fragment.decode(member_images[ndata + slot]).payload)
                == expected[slot]
                for slot in range(nparity))
        if finding.missing and not finding.corrupt:
            # Torn-tail signature: intact prefix, missing suffix. Stores
            # dispatch in stripe order, so a client dying mid-scatter
            # leaves exactly this shape — the suffix was never durable.
            npresent = len(finding.present)
            prefix = [base + off for off in range(npresent)]
            suffix = [base + off for off in range(npresent, width)]
            finding.torn_tail = (finding.present == prefix
                                 and finding.missing == suffix)
        report.stripes.append(finding)
    return report


def repair_client_log(transport, client_id: int,
                      target_server: Union[str, Sequence[str]],
                      principal: str = "") -> int:
    """Re-materialize every recoverable missing/corrupt fragment.

    Returns the number of fragments restored. Corrupt fragments are
    deleted from their servers first, then rebuilt like missing ones.

    ``target_server`` may be one server name or a sequence of them;
    with several targets, a stripe's lost members are spread
    round-robin in stripe order, so a double-erasure stripe's two
    rebuilt fragments land on *distinct* servers (two members of one
    stripe on one server would turn that server back into a
    double-loss single point of failure).
    """
    targets = ([target_server] if isinstance(target_server, str)
               else list(target_server))
    if not targets:
        raise ValueError("repair needs at least one target server")
    report = check_client_log(transport, client_id, principal)
    # Seed a shared location cache from one listing sweep so the
    # reconstructions below need no further broadcasts, and look up
    # every corrupt fragment's holder in a single batch.
    locations = LocationCache(transport, principal)
    for fid, server_id in _list_client_fids(transport, client_id,
                                            principal).items():
        locations.record(fid, server_id)
    rebuilder = Reconstructor(transport, principal, locations=locations)
    restored = 0
    degraded = report.by_status("degraded")
    corrupt_holders = locations.locate_many(
        [fid for finding in degraded for fid in finding.corrupt])
    # Purge every corrupt fragment in one scatter before rebuilding: a
    # rebuilt image must never race its damaged predecessor.
    purge = sorted(corrupt_holders.items())
    purge_futures = scatter_call(
        transport,
        [(server_id, m.DeleteRequest(fid=fid, principal=principal))
         for fid, server_id in purge])
    for (fid, _server_id), future in zip(purge, purge_futures):
        if not future.ok and not isinstance(future.exception, SwarmError):
            raise future.exception
        locations.evict(fid)
    for finding in degraded:
        for position, fid in enumerate(sorted(finding.corrupt
                                              + finding.missing)):
            # rebuild_to_server takes the atomic preallocate+store
            # path, carries the marked flag from the rebuilt image's
            # own header, verifies the rewrite with a CRC read-back,
            # and records the new placement in the shared cache.
            rebuilder.rebuild_to_server(fid, targets[position % len(targets)])
            restored += 1
    for finding in report.by_status("torn"):
        restored += _complete_torn_stripe(transport, finding, locations,
                                          principal)
    return restored


def _complete_torn_stripe(transport, finding: StripeFinding,
                          locations: LocationCache,
                          principal: str) -> int:
    """Seal-complete a torn-tail stripe back to full health.

    The missing suffix was never durable (stores dispatch in stripe
    order), so nothing is reconstructed: each missing *data* slot gets
    an empty sealed fragment carrying the stripe's own descriptor, and
    each parity slot is recomputed over the real prefix plus those
    empties. Returns the number of fragments stored; a store failure
    leaves the stripe torn (never half-wrong — parity goes last, and
    readers treat a missing member as torn exactly as before).
    """
    held = {fid: locations.get(fid) for fid in finding.present}
    images = _fetch_all(transport,
                        {fid: sid for fid, sid in held.items()
                         if sid is not None}, principal)
    if sorted(images) != finding.present:
        return 0  # a prefix member vanished since the scan; re-run fsck
    sample = Fragment.decode(images[finding.present[0]]).header
    base, width = finding.base_fid, finding.width
    servers = sample.servers
    parity_index = sample.parity_index
    ndata = width if parity_index == NO_PARITY else parity_index
    if len(servers) < width:
        return 0  # descriptor predates full-width server lists
    data_images: List[bytes] = []
    fills: List[Tuple[int, bytes]] = []  # (fid, image) to store, in order
    for offset in range(ndata):
        fid = base + offset
        if fid in images:
            data_images.append(images[fid])
            continue
        builder = FragmentBuilder(fid, sample.client_id, HEADER_SIZE + 1)
        fragment = builder.seal(base, width, offset, parity_index, servers)
        image = fragment.encode()
        data_images.append(image)
        fills.append((fid, image))
    if parity_index != NO_PARITY:
        engine = engine_for_stripe(width, ndata)
        payloads = engine.encode(data_images)
        for slot, payload in enumerate(payloads):
            fid = base + ndata + slot
            if fid in images:
                continue
            parity = make_parity_fragment(
                fid, sample.client_id, data_images, base, width,
                ndata + slot, servers, payload=payload,
                parity_index=parity_index)
            fills.append((fid, parity.encode()))
    stored = 0
    for fid, image in fills:
        server_id = servers[fid - base]
        try:
            transport.call(server_id, m.StoreRequest(
                fid=fid, data=image, principal=principal))
        except SwarmError:
            return stored
        locations.record(fid, server_id)
        stored += 1
    return stored
