"""Fault-injecting transport wrapper.

:class:`FaultyTransport` sits between client components and a real
transport (:class:`~repro.rpc.transport.LocalTransport` or
:class:`~repro.rpc.transport.SimTransport`) and applies the per-call
decisions of a :class:`~repro.chaos.plan.FaultPlan`:

``drop_request``
    The call never reaches the server; the client sees
    :class:`~repro.errors.ServerUnavailableError`.
``drop_response``
    The server *executes* the call but the reply is lost — the
    at-least-once hazard that makes retried stores ambiguous.
``delay``
    The reply arrives, late: the delay is charged to the simulated
    clock when the wrapped transport keeps one (never a real sleep).
``duplicate``
    The request is delivered twice; the second delivery's outcome is
    discarded, exactly like a duplicated packet.
``torn_store``
    A store is durably committed *as a prefix of itself*, then reported
    failed — the classic torn write. The client's retry collides with
    the damaged fragment and must detect and repair it.
``bit_flip``
    A retrieve succeeds but one payload bit is silently flipped; only
    end-to-end checksum verification can notice.

The wrapper sees the synchronous path (``call``) and the scatter path
(``submit_many``, where every operation of a fan-out gets its own
fault decision and a faulted operation fails only its own future);
single asynchronous ``submit`` is intercepted through ``call`` whenever
the wrapped transport resolves submissions synchronously, and passed
through untouched on the simulator's true-async path.
"""

from __future__ import annotations

from typing import List

from repro import errors
from repro.chaos.plan import FaultPlan
from repro.rpc import messages as m
from repro.rpc.retry import charge_delay
from repro.rpc.transport import CompletedFuture, Transport


class FaultyTransport(Transport):
    """Applies a :class:`FaultPlan` to every call on ``inner``."""

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        plan.attach(inner.server_ids())
        # Statistics (read by the chaos runner and tests).
        self.faults_applied = 0
        self.delay_charged_s = 0.0

    def server_ids(self) -> List[str]:
        return self.inner.server_ids()

    @property
    def submit_is_synchronous(self) -> bool:
        return self.inner.submit_is_synchronous

    # ------------------------------------------------------------------

    def call(self, server_id: str, request) -> m.Response:
        event = self.plan.decide(server_id, request)
        if event is None:
            return self.inner.call(server_id, request)
        return self._apply_fault(event, server_id, request)

    def _apply_fault(self, event, server_id: str, request) -> m.Response:
        """Execute one call under one fault decision."""
        self.faults_applied += 1
        kind = event.kind
        if kind == "drop_request":
            raise errors.ServerUnavailableError(
                "chaos: request to %s dropped" % server_id)
        if kind == "drop_response":
            self._deliver_silently(server_id, request)
            raise errors.ServerUnavailableError(
                "chaos: reply from %s lost" % server_id)
        if kind == "torn_store":
            self._deliver_silently(server_id, self._torn_copy(request))
            raise errors.ServerUnavailableError(
                "chaos: store to %s torn mid-write" % server_id)
        if kind == "delay":
            response = self.inner.call(server_id, request)
            self.delay_charged_s += self.plan.spec.delay_s
            charge_delay(self.inner, self.plan.spec.delay_s)
            return response
        if kind == "duplicate":
            response = self.inner.call(server_id, request)
            self._deliver_silently(server_id, request)
            return response
        if kind == "bit_flip":
            response = self.inner.call(server_id, request)
            return self._flipped(response, event.arg)
        raise errors.ConfigError("unknown fault kind %r" % kind)

    def submit(self, server_id: str, request):
        if not self.submit_is_synchronous:
            return self.inner.submit(server_id, request)
        try:
            return CompletedFuture(value=self.call(server_id, request))
        except errors.SwarmError as exc:
            return CompletedFuture(exception=exc)

    def submit_many(self, plan):
        """Fault each operation of a fan-out independently.

        Decisions are drawn in plan order (so a seed replays the same
        schedule), then the clean operations proceed as one overlapped
        batch on the inner transport while each faulted operation takes
        its fault path alone — a mid-scatter drop fails exactly one
        future instead of wedging, or escaping, the whole scatter.
        """
        plan = list(plan)
        futures = [None] * len(plan)
        clean_indices = []
        for index, (server_id, request) in enumerate(plan):
            event = self.plan.decide(server_id, request)
            if event is None:
                clean_indices.append(index)
                continue
            try:
                futures[index] = CompletedFuture(
                    value=self._apply_fault(event, server_id, request))
            except errors.SwarmError as exc:
                futures[index] = CompletedFuture(exception=exc)
        clean_futures = self.inner.submit_many(
            [plan[index] for index in clean_indices])
        for index, future in zip(clean_indices, clean_futures):
            futures[index] = future
        return futures

    # ------------------------------------------------------------------

    def _deliver_silently(self, server_id: str, request) -> None:
        """Execute a call whose outcome the client never sees."""
        try:
            self.inner.call(server_id, request)
        except errors.SwarmError:
            pass

    @staticmethod
    def _torn_copy(request: m.StoreRequest) -> m.StoreRequest:
        """The durable prefix a torn store leaves behind.

        Keeps half of the image (sectors commit in order), with no ACL
        ranges — they would not validate against the shorter data, and
        a torn fragment's metadata is garbage anyway.
        """
        data = bytes(request.data)
        keep = len(data) // 2
        return m.StoreRequest(fid=request.fid, data=data[:keep],
                              principal=request.principal,
                              marked=request.marked)

    @staticmethod
    def _flipped(response: m.Response, arg: int) -> m.Response:
        payload = bytes(response.payload)
        if not payload:
            return response
        bit = arg % (len(payload) * 8)
        damaged = bytearray(payload)
        damaged[bit // 8] ^= 1 << (bit % 8)
        return m.Response(value=response.value, payload=bytes(damaged),
                          text=response.text)
