"""CLI for chaos runs: ``python -m repro.chaos --seed N``.

Runs one seeded chaos workload and prints the report; ``--replay`` runs
the seed twice and additionally checks that the fault schedule and the
recovered-state digest replayed identically. Exit status is non-zero on
any violated invariant, with the seed in the output so the failure can
be reproduced with the same command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.chaos.crashpoints import CRASH_POINTS
from repro.chaos.runner import (
    generate_ops,
    replay_check,
    replay_cleaner_check,
    replay_crash_sweep,
    replay_kill_check,
    run_chaos,
    run_cleaner_churn,
    run_crash_sweep,
    run_kill_server,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run a deterministic chaos workload against a local "
                    "cluster and check zero-data-loss invariants.")
    parser.add_argument("--seed", type=int, required=True,
                        help="fault-schedule seed (reuse to reproduce a run)")
    parser.add_argument("--ops", type=int, default=None,
                        help="number of workload operations "
                             "(default 48; 64 with --kill-server)")
    parser.add_argument("--servers", type=int, default=None,
                        help="storage servers in the cluster "
                             "(default 4; 5 with --kill-server)")
    parser.add_argument("--kill-server", action="store_true",
                        help="self-healing scenario: crash stripe-group "
                             "members permanently; require automatic reform "
                             "onto the spares, full background repair, and "
                             "zero data loss with the victims still down")
    parser.add_argument("--victims", type=int, default=1,
                        help="servers to kill in --kill-server (default 1; "
                             "2+ switches the log to Reed-Solomon coding "
                             "with m = victims parity members per stripe)")
    parser.add_argument("--clients", type=int, default=1,
                        help="independent clients sharing the faulty wire "
                             "(default 1); the seeded op stream is dealt "
                             "round-robin and every client is checked "
                             "against its own oracle")
    parser.add_argument("--cleaner", action="store_true",
                        help="cleaner-under-churn scenario: overwrite-heavy "
                             "workload with periodic cleaning passes under "
                             "wire faults; require zero data loss across "
                             "the cleaner's batched moves")
    parser.add_argument("--crash-sweep", action="store_true",
                        help="client-kill sweep: run a scripted write-path "
                             "episode, kill the client at every instrumented "
                             "crash point in turn, and require recovery to "
                             "satisfy the durability oracle each time")
    parser.add_argument("--crash-point", default=None, metavar="NAME",
                        choices=list(CRASH_POINTS),
                        help="restrict --crash-sweep to one named crash "
                             "point (one of: %s)" % ", ".join(CRASH_POINTS))
    parser.add_argument("--occurrence", type=int, default=None, metavar="K",
                        help="with --crash-point, arm exactly the K-th hit "
                             "of that point (the single-triple replay knob)")
    parser.add_argument("--restart", action="store_true",
                        help="with --kill-server: bring the victims back "
                             "with their pre-crash state after repair; "
                             "require probation-path readmission and stale "
                             "copies losing to checksum verification")
    parser.add_argument("--net", action="store_true",
                        help="run the plain chaos scenario over the real "
                             "wire: the same servers hosted on loopback TCP "
                             "sockets, faults injected above the "
                             "TcpTransport; the seed must produce the same "
                             "digest as the local wire")
    parser.add_argument("--replay", action="store_true",
                        help="run twice and verify the schedule replays "
                             "identically")
    args = parser.parse_args(argv)

    if args.victims != 1 and not args.kill_server:
        parser.error("--victims only applies to --kill-server")
    if args.restart and not args.kill_server:
        parser.error("--restart only applies to --kill-server")
    if (args.crash_point or args.occurrence) and not args.crash_sweep:
        parser.error("--crash-point/--occurrence only apply to --crash-sweep")
    if args.occurrence is not None and args.crash_point is None:
        parser.error("--occurrence requires --crash-point")
    if args.occurrence is not None and args.occurrence < 1:
        parser.error("--occurrence must be >= 1")
    if args.clients < 1:
        parser.error("--clients must be >= 1")
    if args.clients != 1 and (args.cleaner or args.crash_sweep):
        parser.error("--cleaner and --crash-sweep are single-client "
                     "scenarios")
    if args.net and (args.cleaner or args.crash_sweep or args.kill_server):
        parser.error("--net applies to the plain chaos scenario only")
    if args.crash_sweep:
        n_ops = args.ops if args.ops is not None else 36
        servers = args.servers if args.servers is not None else 6
        run_one, run_two = run_crash_sweep, replay_crash_sweep
    elif args.kill_server:
        n_ops = args.ops if args.ops is not None else 64
        # Default server count is scenario-derived (5 for one victim,
        # enough group + spares for more); an explicit --servers wins.
        servers = args.servers
        run_one, run_two = run_kill_server, replay_kill_check
    elif args.cleaner:
        n_ops = args.ops if args.ops is not None else 64
        servers = args.servers if args.servers is not None else 4
        run_one, run_two = run_cleaner_churn, replay_cleaner_check
    else:
        n_ops = args.ops if args.ops is not None else 48
        servers = args.servers if args.servers is not None else 4
        run_one, run_two = run_chaos, replay_check

    # The cleaner and crash-sweep scenarios churn a small block space so
    # early stripes actually die; the others use the default spread.
    max_blocks = 12 if (args.cleaner or args.crash_sweep) else 24
    ops = generate_ops(args.seed, n_ops=n_ops, max_blocks=max_blocks)
    kwargs = {"ops": ops, "num_servers": servers}
    if args.kill_server:
        kwargs["victims"] = args.victims
        kwargs["restart"] = args.restart
    if args.crash_sweep:
        kwargs["point"] = args.crash_point
        kwargs["occurrence"] = args.occurrence
    elif not args.cleaner:
        kwargs["num_clients"] = args.clients
        if not args.kill_server and args.net:
            kwargs["wire"] = "tcp"
    if args.replay:
        first, second, identical = run_two(args.seed, **kwargs)
        print(first.summary())
        print(second.summary())
        for problem in first.problems + second.problems:
            print("  problem: %s" % problem)
        if not identical:
            print("REPLAY DIVERGED for seed %d" % args.seed)
        status = 0 if (first.ok and second.ok and identical) else 1
    else:
        report = run_one(args.seed, **kwargs)
        print(report.summary())
        for problem in report.problems:
            print("  problem: %s" % problem)
        status = 0 if report.ok else 1
    return status


if __name__ == "__main__":
    sys.exit(main())
