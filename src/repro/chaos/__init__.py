"""Deterministic, seed-driven chaos engine.

Everything here exists to answer one question reproducibly: *does the
client survive a hostile cluster without losing data?* A
:class:`~repro.chaos.plan.FaultPlan` turns one integer seed into a
complete fault schedule; a :class:`~repro.chaos.transport.FaultyTransport`
wraps any real transport and applies that schedule per call (dropped
requests, lost replies, delays, duplicates, torn stores, silent payload
bit flips); :mod:`repro.chaos.runner` drives a whole workload under a
plan and diffs the outcome against a fault-free oracle.

Replaying the same seed replays the identical fault schedule, so a
failure found in CI is reproduced locally with one number.
"""

from repro.chaos.crashpoints import CRASH_POINTS, ClientCrash, CrashInjector
from repro.chaos.plan import DEFAULT_SPEC, FaultEvent, FaultPlan, FaultSpec
from repro.chaos.transport import FaultyTransport
from repro.chaos.runner import (
    ChaosReport,
    CrashSweepReport,
    generate_ops,
    run_chaos,
    run_crash_sweep,
)

__all__ = [
    "CRASH_POINTS",
    "ChaosReport",
    "ClientCrash",
    "CrashInjector",
    "CrashSweepReport",
    "DEFAULT_SPEC",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultyTransport",
    "generate_ops",
    "run_chaos",
    "run_crash_sweep",
]
