"""Named crash points and a deterministic client-crash injector.

The chaos engine so far kills *servers* and perturbs the *wire*; every
client it builds runs to completion and recovery is always exercised at
a quiet moment.  This module instruments the client write path itself
with a registry of named **crash points** — the instants the paper's
durability argument (§2.1.3) actually has to survive: mid-seal,
mid-scatter, between a store landing and the client accounting it,
between the checkpoint record and the checkpoint-table record, between
the cleaner's re-append and its delete fence.

A :class:`CrashInjector` is armed with a ``(point, occurrence)`` pair
and raises :class:`ClientCrash` at exactly the k-th hit of that point.
Unarmed, it runs in *census* mode: it counts hits without raising, so a
sweep can first learn how many opportunities each point offers and then
enumerate every one.  Both modes observe identical traffic — the hook
sites fire unconditionally once an injector is attached — so a census
run and an armed run of the same workload agree on hit numbering.

``ClientCrash`` deliberately subclasses :class:`BaseException`: the
write path catches ``SwarmError`` (and occasionally ``Exception``) in
several places to keep degraded runs alive, and a simulated crash must
never be swallowed by that machinery — a real ``kill -9`` isn't.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "CRASH_POINTS",
    "ClientCrash",
    "CrashInjector",
]


#: Every named crash point, in write-path order.  The sweep requires at
#: least eight; keep this tuple in sync with the hook sites in
#: ``log/layer.py`` and ``services/cleaner.py``.
CRASH_POINTS: Tuple[str, ...] = (
    # LogLayer._close_stripe: after the stripe is sealed (builders and
    # parity images exist only in memory) but before any store leaves.
    "stripe_seal",
    # LogLayer._close_stripe: before each individual fragment store in
    # the scatter.  Crashing at hit k leaves the first k-1 members of
    # the dispatch order durable and everything after torn off.
    "scatter_dispatch",
    # LogLayer._close_stripe: before dispatching a store whose fragment
    # carries the MARKED flag — the checkpoint-discovery anchor.
    "marked_fragment_store",
    # LogLayer._close_stripe: every store dispatched, none yet
    # accounted — the stripe is durable but the client dies believing
    # nothing was acked.
    "post_store_pre_ack",
    # LogLayer._drain_records: a non-empty group-commit batch is about
    # to be folded into fragments; crashing here drops the whole batch.
    "group_commit_flush",
    # LogLayer.checkpoint: the CHECKPOINT record is appended and the
    # in-memory table updated, but the CHECKPOINT_TABLE record that
    # makes it discoverable has not been written yet.
    "checkpoint_table_append",
    # LogLayer: a VIEW_CHANGE record is about to be staged or re-embedded
    # (placement view history must survive losing it).
    "view_change_append",
    # CleanerService._clean_batch: live blocks harvested, about to be
    # re-appended to the log head.
    "cleaner_reappend",
    # CleanerService._clean_batch: re-appends flushed durable, but the
    # doomed originals have not been deleted — both copies coexist and
    # rollforward must not be confused by the duplicates.
    "cleaner_fence",
)


class ClientCrash(BaseException):
    """Simulated process death at a named crash point.

    BaseException on purpose: recovery code that swallows ``SwarmError``
    (or even ``Exception``) to survive degraded reads must not be able
    to "survive" its own process dying.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__("client crashed at %s (occurrence %d)"
                         % (point, occurrence))
        self.point = point
        self.occurrence = occurrence


class CrashInjector:
    """Counts crash-point hits; armed, dies at the k-th hit of one point.

    Parameters
    ----------
    point:
        The crash point to arm, or ``None`` for census mode (count
        everything, never raise).
    occurrence:
        1-based hit index at which to raise.  ``occurrence=3`` means the
        third time the armed point is reached.
    """

    def __init__(self, point: Optional[str] = None,
                 occurrence: int = 1) -> None:
        if point is not None and point not in CRASH_POINTS:
            raise ValueError("unknown crash point: %r" % (point,))
        if occurrence < 1:
            raise ValueError("occurrence is 1-based, got %d" % occurrence)
        self.point = point
        self.occurrence = occurrence
        self.hits: Dict[str, int] = {}
        self.trace: List[Tuple[str, int]] = []
        """Every ``(point, hit_index)`` in arrival order."""
        self.crashed_at: Optional[Tuple[str, int]] = None

    @property
    def armed(self) -> bool:
        return self.point is not None

    def hit(self, point: str) -> None:
        """Record one arrival at ``point``; raise if this is the armed hit."""
        if point not in CRASH_POINTS:
            raise ValueError("unknown crash point: %r" % (point,))
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        self.trace.append((point, count))
        if (self.point == point and count == self.occurrence
                and self.crashed_at is None):
            self.crashed_at = (point, count)
            raise ClientCrash(point, count)

    def census(self) -> Dict[str, int]:
        """Hit totals for every registered point (0 for never-reached)."""
        return {point: self.hits.get(point, 0) for point in CRASH_POINTS}
