"""Chaos-run harness: one seed, one hostile workload, hard invariants.

:func:`run_chaos` drives a logical-disk workload against a cluster whose
transport is wrapped in a :class:`~repro.chaos.transport.FaultyTransport`,
with the client stack configured the way a production deployment would
be: a retry policy over the transport and checksum-verified reads that
fall back to parity reconstruction. Mid-run it also damages committed
fragments durably (a bit flip and a torn image, via the failure
injector) and crashes/restarts the damaged server.

The run then asserts end-to-end invariants:

1. every read issued *during* the chaos matches a fault-free oracle
   (the same seeded op sequence applied to an in-memory model);
2. after the faults stop, ``swarm-fsck`` can bring the log back to
   fully healthy (no stripe is *lost* — zero data loss);
3. a fresh client recovering from the log alone reproduces exactly the
   oracle's final state;
4. the run is deterministic: the same seed yields the identical fault
   schedule and the identical recovered-state digest, so every failure
   is reproducible from one integer.

Violations are reported, not raised, so a test can print the seed with
the failure — rerunning with that seed replays the exact schedule.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import dataclasses

from repro.chaos.plan import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    choose_kill_victims,
)
from repro.chaos.transport import FaultyTransport
from repro.cluster.cluster import build_local_cluster
from repro.cluster.failures import FailureInjector
from repro.health import HealthMonitor, RepairDaemon
from repro.log.config import LogConfig
from repro.log.fragment import HEADER_SIZE
from repro.log.layer import LogLayer
from repro.rpc.retry import RetryPolicy
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService
from repro.services.stack import ServiceStack
from repro.tools.fsck import check_client_log, repair_client_log

SERVICE_CLEANER = 9
SERVICE_DISK = 17
CLIENT_ID = 1

Op = Tuple[str, int, int, int]  # (kind, block_no, payload_seed, size)


def generate_ops(seed: int, n_ops: int = 48, max_blocks: int = 24,
                 max_size: int = 2048) -> List[Op]:
    """A seeded logical-disk op sequence (writes, overwrites, trims,
    reads). Same seed, same sequence."""
    rng = random.Random(seed ^ 0x5EED)
    ops: List[Op] = []
    for _ in range(n_ops):
        roll = rng.random()
        block_no = rng.randrange(max_blocks)
        if roll < 0.65:
            ops.append(("write", block_no, rng.randrange(1 << 30),
                        rng.randrange(16, max_size)))
        elif roll < 0.80:
            ops.append(("trim", block_no, 0, 0))
        else:
            ops.append(("read", block_no, 0, 0))
    return ops


def _payload(payload_seed: int, size: int) -> bytes:
    return random.Random(payload_seed).randbytes(size)


def oracle_state(ops: Sequence[Op]) -> Dict[int, bytes]:
    """Final logical-disk state of a fault-free run: the oracle."""
    state: Dict[int, bytes] = {}
    for kind, block_no, payload_seed, size in ops:
        if kind == "write":
            state[block_no] = _payload(payload_seed, size)
        elif kind == "trim":
            state.pop(block_no, None)
    return state


def _digest(state: Dict[int, bytes]) -> str:
    acc = hashlib.sha256()
    for block_no in sorted(state):
        acc.update(b"%d:%d:" % (block_no, len(state[block_no])))
        acc.update(state[block_no])
    return acc.hexdigest()


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    problems: List[str] = field(default_factory=list)
    fault_history: Tuple[FaultEvent, ...] = ()
    state_digest: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.problems

    def summary(self) -> str:
        """One-line human summary (always names the seed)."""
        status = "OK" if self.ok else "FAILED (%d problems)" % len(self.problems)
        return ("chaos seed=%d: %s — %d faults, %d retries, "
                "%d ambiguous stores resolved, digest %s"
                % (self.seed, status, len(self.fault_history),
                   int(self.stats.get("retries", 0)),
                   int(self.stats.get("ambiguous_resolutions", 0)),
                   self.state_digest[:12]))


def run_chaos(seed: int, ops: Optional[Sequence[Op]] = None,
              spec: Optional[FaultSpec] = None, num_servers: int = 4,
              fragment_size: int = 1 << 12,
              damage_fragments: int = 2,
              log_overrides: Optional[Dict[str, object]] = None,
              ) -> ChaosReport:
    """Execute one seeded chaos run; see the module docstring.

    ``log_overrides`` merges extra :class:`LogConfig` fields into the
    chaos client's configuration (e.g. a wider ``max_inflight_stripes``
    window, or group commit off) so the determinism and oracle
    invariants can be asserted across write-path configurations.
    """
    ops = list(ops) if ops is not None else generate_ops(seed)
    expected = oracle_state(ops)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    injector = FailureInjector(cluster)
    plan = FaultPlan(seed, spec)
    faulty = FaultyTransport(cluster.transport, plan)
    log = LogLayer(faulty, cluster.stripe_group(),
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size,
                             **(log_overrides or {})),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True)
    stack = ServiceStack(log)
    disk = stack.push(LogicalDiskService(SERVICE_DISK))
    victim = plan.durable_victim

    model: Dict[int, bytes] = {}
    flush_failures = 0
    reads_checked = 0

    def apply_op(op: Op) -> None:
        nonlocal reads_checked
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            disk.write(block_no, data)
            model[block_no] = data
        elif kind == "trim":
            disk.trim(block_no)
            model.pop(block_no, None)
        else:
            reads_checked += 1
            if disk.exists(block_no) != (block_no in model):
                report.problems.append(
                    "block %d existence diverged mid-run" % block_no)
            elif block_no in model and disk.read(block_no) != model[block_no]:
                report.problems.append(
                    "read of block %d diverged mid-run" % block_no)

    # Phase 1: first half of the workload under wire faults.
    half = len(ops) // 2
    for op in ops[:half]:
        apply_op(op)
    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())

    # Phase 2: durable damage on the durable victim's committed
    # fragments — one silent payload bit flip, one torn image.
    victim_server = (cluster.servers[victim] if victim in cluster.servers
                     else None)
    damaged: List[int] = []
    if victim_server is not None:
        committed = [fid for fid in sorted(victim_server.slots.fids())
                     if not (victim_server.slots.info_of(fid) or {})
                     .get("preallocated")]
        damaged = committed[:damage_fragments]
        for index, fid in enumerate(damaged):
            if index % 2 == 0:
                injector.corrupt_fragment(victim, fid,
                                          bit_index=8 * HEADER_SIZE + 5)
            else:
                injector.tear_fragment(victim, fid, keep_fraction=0.5)

    # Phase 3: rest of the workload — reads of damaged fragments must
    # come back correct through verification + reconstruction.
    for op in ops[half:]:
        apply_op(op)
    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())
    ticket = stack.checkpoint(disk)
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())

    # Phase 4: crash the damaged server outright; every live block must
    # still read back correctly (degraded reads). Then bring it back.
    injector.crash_server(victim)
    for block_no in sorted(model):
        if disk.read(block_no) != model[block_no]:
            report.problems.append(
                "read of block %d diverged with %s down" % (block_no, victim))
    injector.restart_server(victim)

    # Phase 5: faults off; fsck must be able to restore full health.
    plan.stop()
    fsck = check_client_log(cluster.transport, CLIENT_ID)
    restored = 0
    if not fsck.healthy:
        if fsck.by_status("lost"):
            report.problems.append("data loss before repair: %s"
                                   % fsck.summary())
        restored = repair_client_log(cluster.transport, CLIENT_ID,
                                     target_server=victim)
        fsck = check_client_log(cluster.transport, CLIENT_ID)
    if not fsck.healthy:
        report.problems.append("fsck unhealthy after repair: %s"
                               % fsck.summary())

    # Phase 6: a fresh client (simulated client crash — all in-memory
    # state lost) recovers from the log alone and must reproduce the
    # oracle exactly.
    fresh_log = LogLayer(cluster.transport, cluster.stripe_group(),
                         LogConfig(client_id=CLIENT_ID,
                                   fragment_size=fragment_size,
                                   **(log_overrides or {})))
    fresh_stack = ServiceStack(fresh_log)
    fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
    fresh_stack.recover_all()

    recovered: Dict[int, bytes] = {}
    for block_no in fresh_disk.block_numbers():
        recovered[block_no] = fresh_disk.read(block_no)
    if set(recovered) != set(expected):
        report.problems.append(
            "recovered block set %r != oracle %r"
            % (sorted(recovered), sorted(expected)))
    else:
        for block_no in sorted(expected):
            if recovered[block_no] != expected[block_no]:
                report.problems.append(
                    "recovered block %d differs from oracle" % block_no)

    retrying = log.transport  # the RetryingTransport the layer installed
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest(recovered)
    report.stats = {
        "ops": len(ops),
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": retrying.retries,
        "backoff_charged_s": retrying.backoff_charged_s,
        "exhausted": retrying.exhausted,
        "ambiguous_resolutions": retrying.ambiguous_resolutions,
        "flush_failures": flush_failures,
        "damaged_fragments": len(damaged),
        "fsck_restored": restored,
    }
    return report


def replay_check(seed: int, **kwargs) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run a seed twice; True when the runs are bit-identical.

    Identical means the same fault schedule (event by event) and the
    same recovered-state digest — the property that makes any chaos
    failure reproducible from its seed.
    """
    first = run_chaos(seed, **kwargs)
    second = run_chaos(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical


def run_kill_server(seed: int, ops: Optional[Sequence[Op]] = None,
                    spec: Optional[FaultSpec] = None,
                    num_servers: Optional[int] = None,
                    fragment_size: int = 1 << 12,
                    flush_every: int = 4,
                    victims: int = 1,
                    log_overrides: Optional[Dict[str, object]] = None,
                    ) -> ChaosReport:
    """The self-healing scenario: crash members, never restart them.

    ``victims`` servers of the stripe group are crashed simultaneously
    mid-workload *and stay down*; with ``victims > 1`` the log is
    configured with Reed–Solomon coding carrying ``m = victims`` parity
    members per stripe (and one spare per victim), so even a stripe
    that lost a member to every kill stays recoverable. Everything that
    follows must happen without operator intervention:

    1. the failure detector declares the member dead from RPC outcomes
       alone (retry exhaustions and failed probes);
    2. the dead verdict reforms the stripe group onto the configured
       spare automatically — the harness never calls ``reform_group``;
    3. the repair daemon re-materializes every fragment the dead
       server held onto the spare, throttled, while wire faults are
       still being injected on the survivors;
    4. with the victim *still crashed*: mid-run reads matched a
       fault-free oracle, fsck reports every stripe fully healthy (no
       degraded stripe left — full redundancy restored), and a fresh
       client recovers the exact oracle state.

    The write-availability gap — ops applied between the crash and the
    last automatic reform — is measured and reported in ``stats``.
    """
    if victims < 1:
        raise ValueError("victims must be >= 1")
    if num_servers is None:
        num_servers = 5 if victims == 1 else 2 * victims + 4
    overrides = dict(log_overrides or {})
    if victims > 1:
        # Surviving a simultaneous multi-kill needs one parity member
        # per victim in every stripe: Reed–Solomon with m = victims.
        overrides.setdefault("coding", "rs")
        overrides.setdefault("parity_fragments", victims)
    ops = list(ops) if ops is not None else generate_ops(seed, n_ops=64)
    expected = oracle_state(ops)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    all_servers = sorted(cluster.servers)
    group_servers, spares = all_servers[:-victims], all_servers[-victims:]
    kill_list = choose_kill_victims(seed, group_servers, victims)
    victim = kill_list[0]
    # Pin durable damage to the first server that is going to die: its
    # torn / flipped fragments vanish with it, so the scenario proves
    # repair rebuilds them from survivors rather than quietly
    # re-reading them.
    base_spec = spec if spec is not None else FaultSpec()
    plan = FaultPlan(seed, dataclasses.replace(base_spec,
                                               pinned_victim=victim))
    injector = FailureInjector(cluster)
    faulty = FaultyTransport(cluster.transport, plan)
    monitor = HealthMonitor(seed=seed)
    log = LogLayer(faulty, cluster.stripe_group(group_servers),
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size,
                             spare_servers=tuple(spares),
                             **overrides),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True,
                   health_monitor=monitor)
    stack = ServiceStack(log)
    disk = stack.push(LogicalDiskService(SERVICE_DISK))

    model: Dict[int, bytes] = {}
    flush_failures = 0
    reads_checked = 0

    def apply_op(op: Op) -> None:
        nonlocal reads_checked
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            disk.write(block_no, data)
            model[block_no] = data
        elif kind == "trim":
            disk.trim(block_no)
            model.pop(block_no, None)
        else:
            reads_checked += 1
            if disk.exists(block_no) != (block_no in model):
                report.problems.append(
                    "block %d existence diverged mid-run" % block_no)
            elif block_no in model and disk.read(block_no) != model[block_no]:
                report.problems.append(
                    "read of block %d diverged mid-run" % block_no)

    def flush_degraded() -> None:
        nonlocal flush_failures
        ticket = stack.flush()
        ticket.wait(allow_degraded=True)
        flush_failures += len(ticket.failures())

    # Phase 1: first third of the workload under wire faults only.
    crash_at = len(ops) // 3
    for op in ops[:crash_at]:
        apply_op(op)
    flush_degraded()

    # Phase 2: kill the victims — they never come back. Keep the
    # workload flowing in small flushed chunks: the flushes' failed
    # stores and the reads' failed retrieves are exactly the evidence
    # the failure detector needs. Measure how many ops land before the
    # automatic reforms complete.
    for dead in kill_list:
        injector.crash_server(dead)
    reform_gap_ops: Optional[int] = None
    daemon: Optional[RepairDaemon] = None
    ops_since_crash = 0
    for index, op in enumerate(ops[crash_at:]):
        apply_op(op)
        ops_since_crash += 1
        if (index + 1) % flush_every == 0:
            flush_degraded()
        if len(log.reforms) >= victims and reform_gap_ops is None:
            reform_gap_ops = ops_since_crash
            # Phase 3 (overlapped): the moment the group has reformed
            # away from every victim, start background repair onto the
            # spares and interleave it with the remaining foreground
            # ops — wire faults still on.
            daemon = RepairDaemon(log.transport, CLIENT_ID,
                                  replacement=list(spares),
                                  principal=log.config.principal,
                                  locations=log.locations)
            daemon.discover(dead_server=victim)
        if daemon is not None:
            daemon.step()
    flush_degraded()
    ticket = stack.checkpoint(disk)
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())

    if not log.reforms:
        report.problems.append(
            "no automatic reform: %s died but the group never changed"
            % victim)
    elif len(log.reforms) < victims:
        report.problems.append(
            "only %d reforms for %d killed servers"
            % (len(log.reforms), victims))
    else:
        for dead in kill_list:
            if dead in log.group.servers:
                report.problems.append(
                    "dead server %s still in the stripe group after reform"
                    % dead)
        for spare in spares:
            if spare not in log.group.servers:
                report.problems.append(
                    "spare %s was not drafted into the reformed group"
                    % spare)
    for dead in kill_list:
        if monitor.status(dead) != "dead":
            report.problems.append(
                "detector verdict for crashed %s is %r, expected dead"
                % (dead, monitor.status(dead)))

    # Drain the repair queue (a final sweep catches stripes flushed
    # after the first discovery), still under wire faults.
    if daemon is None and log.reforms:
        daemon = RepairDaemon(log.transport, CLIENT_ID,
                              replacement=list(spares),
                              principal=log.config.principal,
                              locations=log.locations)
    repaired = 0
    if daemon is not None:
        daemon.discover(dead_server=victim)
        while not daemon.done:
            daemon.step()
        repaired = daemon.fragments_repaired

    # Phase 4: faults off, victim still crashed. Full redundancy must
    # be back: every stripe healthy — not merely readable-degraded.
    plan.stop()
    fsck = check_client_log(cluster.transport, CLIENT_ID)
    if not fsck.healthy:
        report.problems.append(
            "fsck not fully healthy after repair (victim down): %s"
            % fsck.summary())

    # Phase 5: a fresh client recovers from the log alone — with every
    # victim still dead — and must reproduce the oracle exactly.
    fresh_log = LogLayer(cluster.transport, log.group,
                         LogConfig(client_id=CLIENT_ID,
                                   fragment_size=fragment_size,
                                   **overrides))
    fresh_stack = ServiceStack(fresh_log)
    fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
    fresh_stack.recover_all()
    recovered: Dict[int, bytes] = {}
    for block_no in fresh_disk.block_numbers():
        recovered[block_no] = fresh_disk.read(block_no)
    if set(recovered) != set(expected):
        report.problems.append(
            "recovered block set %r != oracle %r"
            % (sorted(recovered), sorted(expected)))
    else:
        for block_no in sorted(expected):
            if recovered[block_no] != expected[block_no]:
                report.problems.append(
                    "recovered block %d differs from oracle" % block_no)

    retrying = log.transport
    monitor_report = monitor.health_report()
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest(recovered)
    report.stats = {
        "ops": len(ops),
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": retrying.retries,
        "backoff_charged_s": retrying.backoff_charged_s,
        "exhausted": retrying.exhausted,
        "ambiguous_resolutions": retrying.ambiguous_resolutions,
        "flush_failures": flush_failures,
        "reform_gap_ops": -1 if reform_gap_ops is None else reform_gap_ops,
        "victims_killed": len(kill_list),
        "fragments_repaired": repaired,
        "bytes_repaired": 0 if daemon is None else daemon.bytes_repaired,
        "repair_throttle_s": 0.0 if daemon is None
        else daemon.throttle_charged_s,
        "probes": sum(entry["probes"] for entry
                      in monitor_report["servers"].values()),
        "health_transitions": len(monitor_report["transitions"]),
    }
    return report


def replay_kill_check(seed: int, **kwargs,
                      ) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run the kill-server scenario twice; True when bit-identical."""
    first = run_kill_server(seed, **kwargs)
    second = run_kill_server(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical


def run_cleaner_churn(seed: int, ops: Optional[Sequence[Op]] = None,
                      spec: Optional[FaultSpec] = None, num_servers: int = 4,
                      fragment_size: int = 1 << 12,
                      clean_every: int = 16,
                      utilization_threshold: float = 0.9,
                      log_overrides: Optional[Dict[str, object]] = None,
                      ) -> ChaosReport:
    """Cleaner-under-churn scenario: clean live stripes mid-chaos.

    A heavily overwriting workload (small block-number space, so early
    stripes die fast) runs under wire faults with a cleaner in the
    stack. Every ``clean_every`` ops the harness flushes, checkpoints
    every service, and runs a cleaning pass — the cleaner's batched
    multi-range harvest and pipelined re-append therefore execute while
    faults are still being injected. Invariants: mid-run reads match the
    fault-free oracle, cleaning actually reclaims stripes, fsck comes
    back healthy once faults stop, and a fresh client (cleaner included)
    recovers the oracle state exactly — no block lost to a move.
    """
    ops = (list(ops) if ops is not None
           else generate_ops(seed, n_ops=64, max_blocks=12))
    expected = oracle_state(ops)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    plan = FaultPlan(seed, spec)
    faulty = FaultyTransport(cluster.transport, plan)
    log = LogLayer(faulty, cluster.stripe_group(),
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size,
                             **(log_overrides or {})),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True)
    stack = ServiceStack(log)
    cleaner = stack.push(CleanerService(
        SERVICE_CLEANER, utilization_threshold=utilization_threshold))
    disk = stack.push(LogicalDiskService(SERVICE_DISK))

    model: Dict[int, bytes] = {}
    flush_failures = 0
    reads_checked = 0
    clean_passes = 0

    def checkpoint_degraded() -> None:
        nonlocal flush_failures
        for service in stack.layers:
            ticket = stack.checkpoint(service)
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())

    for index, op in enumerate(ops):
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            disk.write(block_no, data)
            model[block_no] = data
        elif kind == "trim":
            disk.trim(block_no)
            model.pop(block_no, None)
        else:
            reads_checked += 1
            if disk.exists(block_no) != (block_no in model):
                report.problems.append(
                    "block %d existence diverged mid-run" % block_no)
            elif block_no in model and disk.read(block_no) != model[block_no]:
                report.problems.append(
                    "read of block %d diverged mid-run" % block_no)
        if (index + 1) % clean_every == 0:
            ticket = stack.flush()
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())
            checkpoint_degraded()
            cleaner.clean(target_stripes=4)
            clean_passes += 1
            # Cleaning must never disturb the logical state.
            for block_no in sorted(model):
                if disk.read(block_no) != model[block_no]:
                    report.problems.append(
                        "block %d diverged after cleaning pass %d"
                        % (block_no, clean_passes))
                    break

    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())
    checkpoint_degraded()
    cleaner.clean(target_stripes=4)
    clean_passes += 1

    # Faults off: the surviving log must be fully repairable and a
    # fresh client (with its own cleaner, so cleaner-state recovery is
    # exercised too) must reproduce the oracle.
    plan.stop()
    fsck = check_client_log(cluster.transport, CLIENT_ID)
    restored = 0
    if not fsck.healthy:
        if fsck.by_status("lost"):
            report.problems.append("data loss before repair: %s"
                                   % fsck.summary())
        restored = repair_client_log(
            cluster.transport, CLIENT_ID,
            target_server=sorted(cluster.servers)[0])
        fsck = check_client_log(cluster.transport, CLIENT_ID)
    if not fsck.healthy:
        report.problems.append("fsck unhealthy after repair: %s"
                               % fsck.summary())

    fresh_log = LogLayer(cluster.transport, cluster.stripe_group(),
                         LogConfig(client_id=CLIENT_ID,
                                   fragment_size=fragment_size,
                                   **(log_overrides or {})))
    fresh_stack = ServiceStack(fresh_log)
    fresh_cleaner = fresh_stack.push(CleanerService(
        SERVICE_CLEANER, utilization_threshold=utilization_threshold))
    fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
    fresh_stack.recover_all()

    recovered: Dict[int, bytes] = {}
    for block_no in fresh_disk.block_numbers():
        recovered[block_no] = fresh_disk.read(block_no)
    if set(recovered) != set(expected):
        report.problems.append(
            "recovered block set %r != oracle %r"
            % (sorted(recovered), sorted(expected)))
    else:
        for block_no in sorted(expected):
            if recovered[block_no] != expected[block_no]:
                report.problems.append(
                    "recovered block %d differs from oracle" % block_no)
    if fresh_cleaner._live != cleaner._live:
        report.problems.append("cleaner liveness map did not recover")

    retrying = log.transport
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest(recovered)
    report.stats = {
        "ops": len(ops),
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": retrying.retries,
        "backoff_charged_s": retrying.backoff_charged_s,
        "exhausted": retrying.exhausted,
        "ambiguous_resolutions": retrying.ambiguous_resolutions,
        "flush_failures": flush_failures,
        "clean_passes": clean_passes,
        "stripes_cleaned": cleaner.stripes_cleaned,
        "blocks_moved": cleaner.blocks_moved,
        "bytes_moved": cleaner.bytes_moved,
        "deletes_requeued": cleaner.deletes_requeued,
        "fsck_restored": restored,
    }
    return report


def replay_cleaner_check(seed: int, **kwargs,
                         ) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run the cleaner-churn scenario twice; True when bit-identical."""
    first = run_cleaner_churn(seed, **kwargs)
    second = run_cleaner_churn(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical
