"""Chaos-run harness: one seed, one hostile workload, hard invariants.

:func:`run_chaos` drives a logical-disk workload against a cluster whose
transport is wrapped in a :class:`~repro.chaos.transport.FaultyTransport`,
with the client stack configured the way a production deployment would
be: a retry policy over the transport and checksum-verified reads that
fall back to parity reconstruction. Mid-run it also damages committed
fragments durably (a bit flip and a torn image, via the failure
injector) and crashes/restarts the damaged server.

The run then asserts end-to-end invariants:

1. every read issued *during* the chaos matches a fault-free oracle
   (the same seeded op sequence applied to an in-memory model);
2. after the faults stop, ``swarm-fsck`` can bring the log back to
   fully healthy (no stripe is *lost* — zero data loss);
3. a fresh client recovering from the log alone reproduces exactly the
   oracle's final state;
4. the run is deterministic: the same seed yields the identical fault
   schedule and the identical recovered-state digest, so every failure
   is reproducible from one integer.

Violations are reported, not raised, so a test can print the seed with
the failure — rerunning with that seed replays the exact schedule.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import dataclasses

from repro.chaos.crashpoints import CRASH_POINTS, ClientCrash, CrashInjector
from repro.chaos.plan import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    choose_kill_victims,
)
from repro.chaos.transport import FaultyTransport
from repro.cluster.cluster import build_local_cluster
from repro.cluster.failures import FailureInjector
from repro.health import HealthMonitor, RepairDaemon
from repro.log.config import LogConfig
from repro.log.fragment import HEADER_SIZE, MAX_STRIPE_WIDTH
from repro.log.layer import LogLayer
from repro.placement import SequentialCheckingPlacement
from repro.errors import SwarmError
from repro.rpc import messages as m
from repro.rpc.retry import RetryPolicy
from repro.services.cleaner import CleanerService
from repro.services.logical_disk import LogicalDiskService
from repro.services.stack import ServiceStack
from repro.tools.fsck import check_client_log, repair_client_log
from repro.util.packing import unpack_fids

SERVICE_CLEANER = 9
SERVICE_DISK = 17
CLIENT_ID = 1

Op = Tuple[str, int, int, int]  # (kind, block_no, payload_seed, size)


def generate_ops(seed: int, n_ops: int = 48, max_blocks: int = 24,
                 max_size: int = 2048) -> List[Op]:
    """A seeded logical-disk op sequence (writes, overwrites, trims,
    reads). Same seed, same sequence."""
    rng = random.Random(seed ^ 0x5EED)
    ops: List[Op] = []
    for _ in range(n_ops):
        roll = rng.random()
        block_no = rng.randrange(max_blocks)
        if roll < 0.65:
            ops.append(("write", block_no, rng.randrange(1 << 30),
                        rng.randrange(16, max_size)))
        elif roll < 0.80:
            ops.append(("trim", block_no, 0, 0))
        else:
            ops.append(("read", block_no, 0, 0))
    return ops


def _payload(payload_seed: int, size: int) -> bytes:
    return random.Random(payload_seed).randbytes(size)


def oracle_state(ops: Sequence[Op]) -> Dict[int, bytes]:
    """Final logical-disk state of a fault-free run: the oracle."""
    state: Dict[int, bytes] = {}
    for kind, block_no, payload_seed, size in ops:
        if kind == "write":
            state[block_no] = _payload(payload_seed, size)
        elif kind == "trim":
            state.pop(block_no, None)
    return state


def _digest(state: Dict[int, bytes]) -> str:
    acc = hashlib.sha256()
    for block_no in sorted(state):
        acc.update(b"%d:%d:" % (block_no, len(state[block_no])))
        acc.update(state[block_no])
    return acc.hexdigest()


def _digest_many(states: Sequence[Dict[int, bytes]]) -> str:
    """Combined digest across clients.

    A single client keeps the historical single-state digest, so every
    pinned seed digest and replay baseline stays byte-identical.
    """
    if len(states) == 1:
        return _digest(states[0])
    acc = hashlib.sha256()
    for index, state in enumerate(states):
        acc.update(b"client%d:" % index)
        acc.update(_digest(state).encode("ascii"))
    return acc.hexdigest()


@dataclass
class _ChaosClient:
    """One client's full stack inside a (possibly multi-client) run.

    All clients share the same :class:`FaultyTransport` — one seeded
    fault schedule drives the whole fleet's wire — but each owns its
    log, services, oracle model, and (in the kill scenario) its own
    failure detector and repair daemon, exactly like independent Swarm
    clients sharing a cluster.
    """

    index: int
    client_id: int
    log: LogLayer
    stack: ServiceStack
    disk: LogicalDiskService
    ops: List[Op] = field(default_factory=list)
    model: Dict[int, bytes] = field(default_factory=dict)
    monitor: Optional[HealthMonitor] = None
    daemon: Optional[RepairDaemon] = None


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    problems: List[str] = field(default_factory=list)
    fault_history: Tuple[FaultEvent, ...] = ()
    state_digest: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.problems

    def summary(self) -> str:
        """One-line human summary (always names the seed)."""
        status = "OK" if self.ok else "FAILED (%d problems)" % len(self.problems)
        return ("chaos seed=%d: %s — %d faults, %d retries, "
                "%d ambiguous stores resolved, digest %s"
                % (self.seed, status, len(self.fault_history),
                   int(self.stats.get("retries", 0)),
                   int(self.stats.get("ambiguous_resolutions", 0)),
                   self.state_digest[:12]))


def run_chaos(seed: int, ops: Optional[Sequence[Op]] = None,
              spec: Optional[FaultSpec] = None, num_servers: int = 4,
              fragment_size: int = 1 << 12,
              damage_fragments: int = 2,
              log_overrides: Optional[Dict[str, object]] = None,
              num_clients: int = 1,
              wire: str = "local",
              ) -> ChaosReport:
    """Execute one seeded chaos run; see the module docstring.

    ``log_overrides`` merges extra :class:`LogConfig` fields into the
    chaos clients' configuration (e.g. a wider ``max_inflight_stripes``
    window, or group commit off) so the determinism and oracle
    invariants can be asserted across write-path configurations.

    With ``num_clients > 1`` the seeded op sequence is dealt round-robin
    across that many independent clients sharing one faulty wire; each
    client is checked against its own oracle and the report digest
    combines the per-client digests (a single client keeps the
    historical digest byte for byte).

    ``wire`` selects the plane under the fault injector: ``"local"``
    (direct function calls, the historical harness) or ``"tcp"`` (the
    same servers hosted on loopback sockets, reached through a
    :class:`~repro.rpc.net.TcpTransport`). The fault plan draws its
    decisions in plan order either way and the retry jitter is seeded,
    so the same seed must produce the same fault schedule *and* the
    same recovered-state digest on both wires — asserted by the net
    test suite, and the acceptance proof that chaos semantics survive
    the move to real sockets.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if wire not in ("local", "tcp"):
        raise ValueError("wire must be 'local' or 'tcp'")
    ops = list(ops) if ops is not None else generate_ops(seed)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers,
                                  num_clients=num_clients,
                                  fragment_size=fragment_size)
    injector = FailureInjector(cluster)
    plan = FaultPlan(seed, spec)
    host = tcp = None
    if wire == "tcp":
        # Same in-process servers, but the chaos clients' every RPC now
        # crosses a real socket; durable damage, fsck, and fresh-client
        # recovery keep direct access (they model out-of-band repair).
        host, tcp = cluster.serve_tcp()
    faulty = FaultyTransport(tcp if tcp is not None else cluster.transport,
                             plan)
    clients: List[_ChaosClient] = []
    for index in range(num_clients):
        client_id = CLIENT_ID + index
        log = LogLayer(faulty, cluster.stripe_group(),
                       LogConfig(client_id=client_id,
                                 fragment_size=fragment_size,
                                 **(log_overrides or {})),
                       retry_policy=RetryPolicy(seed=seed + index),
                       verify_reads=True)
        stack = ServiceStack(log)
        disk = stack.push(LogicalDiskService(SERVICE_DISK))
        clients.append(_ChaosClient(index=index, client_id=client_id,
                                    log=log, stack=stack, disk=disk))
    for position, op in enumerate(ops):
        clients[position % num_clients].ops.append(op)
    victim = plan.durable_victim

    flush_failures = 0
    reads_checked = 0

    def tag(client: _ChaosClient) -> str:
        return "" if num_clients == 1 else "client %d: " % client.index

    def apply_op(client: _ChaosClient, op: Op) -> None:
        nonlocal reads_checked
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            client.disk.write(block_no, data)
            client.model[block_no] = data
        elif kind == "trim":
            client.disk.trim(block_no)
            client.model.pop(block_no, None)
        else:
            reads_checked += 1
            if client.disk.exists(block_no) != (block_no in client.model):
                report.problems.append(
                    "%sblock %d existence diverged mid-run"
                    % (tag(client), block_no))
            elif (block_no in client.model
                    and client.disk.read(block_no) != client.model[block_no]):
                report.problems.append(
                    "%sread of block %d diverged mid-run"
                    % (tag(client), block_no))

    def flush_all() -> None:
        nonlocal flush_failures
        for client in clients:
            ticket = client.stack.flush()
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())

    # Phase 1: first half of the workload under wire faults.
    half = len(ops) // 2
    for position, op in enumerate(ops[:half]):
        apply_op(clients[position % num_clients], op)
    flush_all()

    # Phase 2: durable damage on the durable victim's committed
    # fragments — one silent payload bit flip, one torn image.
    victim_server = (cluster.servers[victim] if victim in cluster.servers
                     else None)
    damaged: List[int] = []
    if victim_server is not None:
        committed = [fid for fid in sorted(victim_server.slots.fids())
                     if not (victim_server.slots.info_of(fid) or {})
                     .get("preallocated")]
        damaged = committed[:damage_fragments]
        for index, fid in enumerate(damaged):
            if index % 2 == 0:
                injector.corrupt_fragment(victim, fid,
                                          bit_index=8 * HEADER_SIZE + 5)
            else:
                injector.tear_fragment(victim, fid, keep_fraction=0.5)

    # Phase 3: rest of the workload — reads of damaged fragments must
    # come back correct through verification + reconstruction.
    for position, op in enumerate(ops[half:], start=half):
        apply_op(clients[position % num_clients], op)
    flush_all()
    for client in clients:
        ticket = client.stack.checkpoint(client.disk)
        ticket.wait(allow_degraded=True)
        flush_failures += len(ticket.failures())

    # Phase 4: crash the damaged server outright; every live block must
    # still read back correctly (degraded reads). Then bring it back.
    injector.crash_server(victim)
    for client in clients:
        for block_no in sorted(client.model):
            if client.disk.read(block_no) != client.model[block_no]:
                report.problems.append(
                    "%sread of block %d diverged with %s down"
                    % (tag(client), block_no, victim))
    injector.restart_server(victim)

    # Phase 5: faults off; fsck must be able to restore full health for
    # every client's log.
    plan.stop()
    restored = 0
    for client in clients:
        fsck = check_client_log(cluster.transport, client.client_id)
        if not fsck.healthy:
            if fsck.by_status("lost"):
                report.problems.append("%sdata loss before repair: %s"
                                       % (tag(client), fsck.summary()))
            restored += repair_client_log(cluster.transport, client.client_id,
                                          target_server=victim)
            fsck = check_client_log(cluster.transport, client.client_id)
        if not fsck.healthy:
            report.problems.append("%sfsck unhealthy after repair: %s"
                                   % (tag(client), fsck.summary()))

    # Phase 6: fresh clients (simulated client crash — all in-memory
    # state lost) recover from the log alone and must reproduce each
    # oracle exactly.
    recovered_states: List[Dict[int, bytes]] = []
    for client in clients:
        expected = oracle_state(client.ops)
        fresh_log = LogLayer(cluster.transport, cluster.stripe_group(),
                             LogConfig(client_id=client.client_id,
                                       fragment_size=fragment_size,
                                       **(log_overrides or {})))
        fresh_stack = ServiceStack(fresh_log)
        fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
        fresh_stack.recover_all()

        recovered: Dict[int, bytes] = {}
        for block_no in fresh_disk.block_numbers():
            recovered[block_no] = fresh_disk.read(block_no)
        recovered_states.append(recovered)
        if set(recovered) != set(expected):
            report.problems.append(
                "%srecovered block set %r != oracle %r"
                % (tag(client), sorted(recovered), sorted(expected)))
        else:
            for block_no in sorted(expected):
                if recovered[block_no] != expected[block_no]:
                    report.problems.append(
                        "%srecovered block %d differs from oracle"
                        % (tag(client), block_no))

    report.fault_history = tuple(plan.history)
    report.state_digest = _digest_many(recovered_states)
    report.stats = {
        "ops": len(ops),
        "clients": num_clients,
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": sum(c.log.transport.retries for c in clients),
        "backoff_charged_s": sum(c.log.transport.backoff_charged_s
                                 for c in clients),
        "exhausted": sum(c.log.transport.exhausted for c in clients),
        "ambiguous_resolutions": sum(c.log.transport.ambiguous_resolutions
                                     for c in clients),
        "flush_failures": flush_failures,
        "damaged_fragments": len(damaged),
        "fsck_restored": restored,
    }
    if tcp is not None:
        tcp.close()
        host.close()
    return report


def replay_check(seed: int, **kwargs) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run a seed twice; True when the runs are bit-identical.

    Identical means the same fault schedule (event by event) and the
    same recovered-state digest — the property that makes any chaos
    failure reproducible from its seed.
    """
    first = run_chaos(seed, **kwargs)
    second = run_chaos(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical


def run_kill_server(seed: int, ops: Optional[Sequence[Op]] = None,
                    spec: Optional[FaultSpec] = None,
                    num_servers: Optional[int] = None,
                    fragment_size: int = 1 << 12,
                    flush_every: int = 4,
                    victims: int = 1,
                    log_overrides: Optional[Dict[str, object]] = None,
                    num_clients: int = 1,
                    placement: Optional[str] = None,
                    stripe_width: int = 8,
                    restart: bool = False,
                    ) -> ChaosReport:
    """The self-healing scenario: crash members, never restart them.

    ``victims`` servers of the stripe group are crashed simultaneously
    mid-workload *and stay down*; with ``victims > 1`` the log is
    configured with Reed–Solomon coding carrying ``m = victims`` parity
    members per stripe (and one spare per victim), so even a stripe
    that lost a member to every kill stays recoverable. Everything that
    follows must happen without operator intervention:

    1. the failure detector declares the member dead from RPC outcomes
       alone (retry exhaustions and failed probes);
    2. the dead verdict reforms the stripe group onto the configured
       spare automatically — the harness never calls ``reform_group``;
    3. the repair daemon re-materializes every fragment the dead
       server held onto the spare, throttled, while wire faults are
       still being injected on the survivors;
    4. with the victim *still crashed*: mid-run reads matched a
       fault-free oracle, fsck reports every stripe fully healthy (no
       degraded stripe left — full redundancy restored), and a fresh
       client recovers the exact oracle state.

    ``placement`` selects the distribution layer: ``"static"`` (one
    :class:`StripeGroup`, the historical scenario), ``"sequential"``
    (a :class:`SequentialCheckingPlacement` of ``stripe_width`` over
    the whole fleet), or ``None`` to pick sequential automatically
    whenever the fleet exceeds ``MAX_STRIPE_WIDTH`` — which is what
    makes the 64- and 256-server versions of this scenario runnable at
    all. ``num_clients > 1`` deals the op stream round-robin across
    independent clients, each with its own detector, daemon, and
    placement instance, all sharing one faulty wire.

    The write-availability gap — ops applied between the crash and the
    last automatic reform across every client — is measured and
    reported in ``stats``.

    With ``restart=True`` the scenario gains a readmission epilogue:
    after repair completes and fsck passes (victims still down), every
    victim is restarted *with its pre-crash disk state intact*. Each
    client's failure detector must walk it back through the probation
    path — dead → probation → healthy, never straight to trusted — and
    the stale fragments it still serves (including any torn by faults
    mid-store) must be caught by checksum verification and answered
    from the repaired copies instead. The final fresh-client recovery
    then runs with the victims *up*, so the rollforward scan itself may
    be handed stale images and must reject them.
    """
    if victims < 1:
        raise ValueError("victims must be >= 1")
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if num_servers is None:
        num_servers = 5 if victims == 1 else 2 * victims + 4
    if placement is None:
        placement = ("sequential" if num_servers > MAX_STRIPE_WIDTH
                     else "static")
    if placement not in ("static", "sequential"):
        raise ValueError("placement must be 'static' or 'sequential'")
    overrides = dict(log_overrides or {})
    if victims > 1:
        # Surviving a simultaneous multi-kill needs one parity member
        # per victim in every stripe: Reed–Solomon with m = victims.
        overrides.setdefault("coding", "rs")
        overrides.setdefault("parity_fragments", victims)
    ops = list(ops) if ops is not None else generate_ops(seed, n_ops=64)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers,
                                  num_clients=num_clients,
                                  fragment_size=fragment_size)
    all_servers = sorted(cluster.servers)
    group_servers, spares = all_servers[:-victims], all_servers[-victims:]
    eff_width = min(stripe_width, len(group_servers))
    if placement == "static":
        kill_list = choose_kill_victims(seed, group_servers, victims)
        victim: Optional[str] = kill_list[0]
    else:
        # Reallocation-free placement: a stripe only touches
        # ``stripe_width`` of the view's servers, so a randomly chosen
        # fleet member would likely never be in any client's write path
        # — and a detector fed purely by its own traffic would (rightly)
        # never indict it. The victims are instead chosen at crash time
        # from the view positions every client is about to rotate
        # through; the rotation cursor is seed-deterministic, so the
        # choice replays bit-identically.
        kill_list = []
        victim = None

    def make_group():
        """Fresh placement (or the shared static group) for one client.

        Sequential policies carry per-client view history, so every
        client — and every fresh-recovery client — gets its own
        instance over the same fleet.
        """
        if placement == "static":
            return cluster.stripe_group(group_servers)
        return SequentialCheckingPlacement(
            tuple(all_servers), stripe_width=eff_width,
            parity_fragments=overrides.get("parity_fragments", 1),
            spare_servers=tuple(spares),
            view_servers=tuple(group_servers))

    # Pin durable damage to the first server that is going to die: its
    # torn / flipped fragments vanish with it, so the scenario proves
    # repair rebuilds them from survivors rather than quietly
    # re-reading them. (Sequential placement picks its victims at crash
    # time, so there the durable victim stays the plan's own seeded
    # draw.)
    base_spec = spec if spec is not None else FaultSpec()
    if victim is not None:
        base_spec = dataclasses.replace(base_spec, pinned_victim=victim)
    plan = FaultPlan(seed, base_spec)
    injector = FailureInjector(cluster)
    faulty = FaultyTransport(cluster.transport, plan)
    clients: List[_ChaosClient] = []
    for index in range(num_clients):
        client_id = CLIENT_ID + index
        monitor = HealthMonitor(seed=seed + index)
        log = LogLayer(faulty, make_group(),
                       LogConfig(client_id=client_id,
                                 fragment_size=fragment_size,
                                 spare_servers=tuple(spares),
                                 **overrides),
                       retry_policy=RetryPolicy(seed=seed + index),
                       verify_reads=True,
                       health_monitor=monitor)
        stack = ServiceStack(log)
        disk = stack.push(LogicalDiskService(SERVICE_DISK))
        clients.append(_ChaosClient(index=index, client_id=client_id,
                                    log=log, stack=stack, disk=disk,
                                    monitor=monitor))
    for position, op in enumerate(ops):
        clients[position % num_clients].ops.append(op)

    flush_failures = 0
    reads_checked = 0

    def tag(client: _ChaosClient) -> str:
        return "" if num_clients == 1 else "client %d: " % client.index

    def apply_op(client: _ChaosClient, op: Op) -> None:
        nonlocal reads_checked
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            client.disk.write(block_no, data)
            client.model[block_no] = data
        elif kind == "trim":
            client.disk.trim(block_no)
            client.model.pop(block_no, None)
        else:
            reads_checked += 1
            if client.disk.exists(block_no) != (block_no in client.model):
                report.problems.append(
                    "%sblock %d existence diverged mid-run"
                    % (tag(client), block_no))
            elif (block_no in client.model
                    and client.disk.read(block_no) != client.model[block_no]):
                report.problems.append(
                    "%sread of block %d diverged mid-run"
                    % (tag(client), block_no))

    def flush_degraded() -> None:
        nonlocal flush_failures
        for client in clients:
            ticket = client.stack.flush()
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())

    # Phase 1: first third of the workload under wire faults only.
    crash_at = len(ops) // 3
    for position, op in enumerate(ops[:crash_at]):
        apply_op(clients[position % num_clients], op)
    flush_degraded()

    # Phase 2: kill the victims — they never come back. Keep the
    # workload flowing in small flushed chunks: the flushes' failed
    # stores and the reads' failed retrieves are exactly the evidence
    # every client's failure detector needs. Measure how many ops land
    # before the automatic reforms complete on every client.
    if placement == "sequential":
        view = clients[0].log.placement.current_servers()
        cursor = max(c.log.next_stripe_number for c in clients)
        kill_list.extend(sorted(view[(cursor + 1 + j) % len(view)]
                                for j in range(victims)))
        victim = kill_list[0]
    for dead in kill_list:
        injector.crash_server(dead)
    reform_gap_ops: Optional[int] = None
    ops_since_crash = 0
    for position, op in enumerate(ops[crash_at:], start=crash_at):
        apply_op(clients[position % num_clients], op)
        ops_since_crash += 1
        if (position - crash_at + 1) % flush_every == 0:
            flush_degraded()
        for client in clients:
            if (client.daemon is None
                    and len(client.log.reforms) >= victims):
                # Phase 3 (overlapped): the moment this client's group
                # has reformed away from every victim, start its
                # background repair onto the spares and interleave it
                # with the remaining foreground ops — wire faults on.
                client.daemon = RepairDaemon(
                    client.log.transport, client.client_id,
                    replacement=list(spares),
                    principal=client.log.config.principal,
                    locations=client.log.locations)
                client.daemon.discover(dead_server=victim)
        if (reform_gap_ops is None
                and all(len(c.log.reforms) >= victims for c in clients)):
            reform_gap_ops = ops_since_crash
        for client in clients:
            if client.daemon is not None:
                client.daemon.step()
    flush_degraded()
    for client in clients:
        ticket = client.stack.checkpoint(client.disk)
        ticket.wait(allow_degraded=True)
        flush_failures += len(ticket.failures())

    for client in clients:
        if not client.log.reforms:
            report.problems.append(
                "%sno automatic reform: %s died but the group never changed"
                % (tag(client), victim))
        elif len(client.log.reforms) < victims:
            report.problems.append(
                "%sonly %d reforms for %d killed servers"
                % (tag(client), len(client.log.reforms), victims))
        else:
            for dead in kill_list:
                if dead in client.log.group.servers:
                    report.problems.append(
                        "%sdead server %s still in the stripe group "
                        "after reform" % (tag(client), dead))
            for spare in spares:
                if spare not in client.log.group.servers:
                    report.problems.append(
                        "%sspare %s was not drafted into the reformed "
                        "group" % (tag(client), spare))
        for dead in kill_list:
            if client.monitor.status(dead) != "dead":
                report.problems.append(
                    "%sdetector verdict for crashed %s is %r, expected dead"
                    % (tag(client), dead, client.monitor.status(dead)))

    # Drain the repair queues (a final sweep catches stripes flushed
    # after the first discovery), still under wire faults.
    repaired = 0
    for client in clients:
        if client.daemon is None and client.log.reforms:
            client.daemon = RepairDaemon(
                client.log.transport, client.client_id,
                replacement=list(spares),
                principal=client.log.config.principal,
                locations=client.log.locations)
        if client.daemon is not None:
            client.daemon.discover(dead_server=victim)
            while not client.daemon.done:
                client.daemon.step()
            repaired += client.daemon.fragments_repaired

    # Phase 4: faults off, victim still crashed. Full redundancy must
    # be back: every stripe of every client's log healthy — not merely
    # readable-degraded.
    plan.stop()
    for client in clients:
        fsck = check_client_log(cluster.transport, client.client_id)
        if not fsck.healthy:
            report.problems.append(
                "%sfsck not fully healthy after repair (victim down): %s"
                % (tag(client), fsck.summary()))

    # Phase 4.5 (restart variant): the victims return with their
    # pre-crash state. Readmission must go through probation — a
    # restarted server is evidence, not trust — and the stale copies it
    # still serves must lose to checksum verification, never win a read.
    readmitted = 0
    stale_reads_checked = 0
    if restart:
        for dead in kill_list:
            injector.restart_server(dead)
        for client in clients:
            for dead in kill_list:
                for _ in range(4 * client.monitor.config.readmit_probes):
                    if client.monitor.status(dead) == "healthy":
                        break
                    client.monitor.probe(dead)
                if client.monitor.status(dead) != "healthy":
                    report.problems.append(
                        "%srestarted %s never readmitted (status %r)"
                        % (tag(client), dead, client.monitor.status(dead)))
                elif ((dead, "dead", "probation")
                        not in client.monitor.transitions):
                    report.problems.append(
                        "%srestarted %s was readmitted without probation"
                        % (tag(client), dead))
                else:
                    readmitted += 1
            # Forget every placement for a fragment a victim still
            # holds, so the next read has to re-locate it — and may be
            # offered the victim's stale (possibly torn) copy. Verified
            # reads must reject it and fall back to the repaired one.
            for dead in kill_list:
                try:
                    response = cluster.transport.call(
                        dead, m.ListFidsRequest(
                            client_id=client.client_id,
                            principal=client.log.config.principal))
                except SwarmError:
                    continue
                stale_fids, _end = unpack_fids(response.payload)
                for fid in stale_fids:
                    client.log.locations.evict(fid)
            for block_no in sorted(client.model):
                stale_reads_checked += 1
                if client.disk.read(block_no) != client.model[block_no]:
                    report.problems.append(
                        "%sread of block %d diverged after %d restarts"
                        % (tag(client), block_no, len(kill_list)))

    # Phase 5: fresh clients recover from the log alone — with every
    # victim still dead (or, in the restart variant, back up and
    # serving stale copies) — and must reproduce each oracle exactly. A
    # sequential-placement fresh client starts from the *initial* view
    # and must roll its view history forward from the log.
    recovered_states: List[Dict[int, bytes]] = []
    for client in clients:
        expected = oracle_state(client.ops)
        fresh_group = (client.log.group if placement == "static"
                       else make_group())
        fresh_log = LogLayer(cluster.transport, fresh_group,
                             LogConfig(client_id=client.client_id,
                                       fragment_size=fragment_size,
                                       spare_servers=tuple(spares),
                                       **overrides))
        fresh_stack = ServiceStack(fresh_log)
        fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
        fresh_stack.recover_all()
        if (placement == "sequential" and client.log.reforms
                and fresh_log.placement.view_epoch
                < client.log.placement.view_epoch):
            report.problems.append(
                "%splacement view history did not recover: fresh epoch "
                "%d < writer epoch %d"
                % (tag(client), fresh_log.placement.view_epoch,
                   client.log.placement.view_epoch))
        recovered: Dict[int, bytes] = {}
        for block_no in fresh_disk.block_numbers():
            recovered[block_no] = fresh_disk.read(block_no)
        recovered_states.append(recovered)
        if set(recovered) != set(expected):
            report.problems.append(
                "%srecovered block set %r != oracle %r"
                % (tag(client), sorted(recovered), sorted(expected)))
        else:
            for block_no in sorted(expected):
                if recovered[block_no] != expected[block_no]:
                    report.problems.append(
                        "%srecovered block %d differs from oracle"
                        % (tag(client), block_no))

    monitor_reports = [c.monitor.health_report() for c in clients]
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest_many(recovered_states)
    report.stats = {
        "ops": len(ops),
        "clients": num_clients,
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": sum(c.log.transport.retries for c in clients),
        "backoff_charged_s": sum(c.log.transport.backoff_charged_s
                                 for c in clients),
        "exhausted": sum(c.log.transport.exhausted for c in clients),
        "ambiguous_resolutions": sum(c.log.transport.ambiguous_resolutions
                                     for c in clients),
        "flush_failures": flush_failures,
        "reform_gap_ops": -1 if reform_gap_ops is None else reform_gap_ops,
        "victims_killed": len(kill_list),
        "fragments_repaired": repaired,
        "bytes_repaired": sum(c.daemon.bytes_repaired for c in clients
                              if c.daemon is not None),
        "repair_throttle_s": sum(c.daemon.throttle_charged_s
                                 for c in clients if c.daemon is not None),
        "probes": sum(entry["probes"]
                      for monitor_report in monitor_reports
                      for entry in monitor_report["servers"].values()),
        "health_transitions": sum(len(monitor_report["transitions"])
                                  for monitor_report in monitor_reports),
        "restarted": len(kill_list) if restart else 0,
        "readmitted": readmitted,
        "stale_reads_checked": stale_reads_checked,
    }
    return report


def replay_kill_check(seed: int, **kwargs,
                      ) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run the kill-server scenario twice; True when bit-identical."""
    first = run_kill_server(seed, **kwargs)
    second = run_kill_server(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical


def run_cleaner_churn(seed: int, ops: Optional[Sequence[Op]] = None,
                      spec: Optional[FaultSpec] = None, num_servers: int = 4,
                      fragment_size: int = 1 << 12,
                      clean_every: int = 16,
                      utilization_threshold: float = 0.9,
                      log_overrides: Optional[Dict[str, object]] = None,
                      ) -> ChaosReport:
    """Cleaner-under-churn scenario: clean live stripes mid-chaos.

    A heavily overwriting workload (small block-number space, so early
    stripes die fast) runs under wire faults with a cleaner in the
    stack. Every ``clean_every`` ops the harness flushes, checkpoints
    every service, and runs a cleaning pass — the cleaner's batched
    multi-range harvest and pipelined re-append therefore execute while
    faults are still being injected. Invariants: mid-run reads match the
    fault-free oracle, cleaning actually reclaims stripes, fsck comes
    back healthy once faults stop, and a fresh client (cleaner included)
    recovers the oracle state exactly — no block lost to a move.
    """
    ops = (list(ops) if ops is not None
           else generate_ops(seed, n_ops=64, max_blocks=12))
    expected = oracle_state(ops)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    plan = FaultPlan(seed, spec)
    faulty = FaultyTransport(cluster.transport, plan)
    log = LogLayer(faulty, cluster.stripe_group(),
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size,
                             **(log_overrides or {})),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True)
    stack = ServiceStack(log)
    cleaner = stack.push(CleanerService(
        SERVICE_CLEANER, utilization_threshold=utilization_threshold))
    disk = stack.push(LogicalDiskService(SERVICE_DISK))

    model: Dict[int, bytes] = {}
    flush_failures = 0
    reads_checked = 0
    clean_passes = 0

    def checkpoint_degraded() -> None:
        nonlocal flush_failures
        for service in stack.layers:
            ticket = stack.checkpoint(service)
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())

    for index, op in enumerate(ops):
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            disk.write(block_no, data)
            model[block_no] = data
        elif kind == "trim":
            disk.trim(block_no)
            model.pop(block_no, None)
        else:
            reads_checked += 1
            if disk.exists(block_no) != (block_no in model):
                report.problems.append(
                    "block %d existence diverged mid-run" % block_no)
            elif block_no in model and disk.read(block_no) != model[block_no]:
                report.problems.append(
                    "read of block %d diverged mid-run" % block_no)
        if (index + 1) % clean_every == 0:
            ticket = stack.flush()
            ticket.wait(allow_degraded=True)
            flush_failures += len(ticket.failures())
            checkpoint_degraded()
            cleaner.clean(target_stripes=4)
            clean_passes += 1
            # Cleaning must never disturb the logical state.
            for block_no in sorted(model):
                if disk.read(block_no) != model[block_no]:
                    report.problems.append(
                        "block %d diverged after cleaning pass %d"
                        % (block_no, clean_passes))
                    break

    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())
    checkpoint_degraded()
    cleaner.clean(target_stripes=4)
    clean_passes += 1

    # Faults off: the surviving log must be fully repairable and a
    # fresh client (with its own cleaner, so cleaner-state recovery is
    # exercised too) must reproduce the oracle.
    plan.stop()
    fsck = check_client_log(cluster.transport, CLIENT_ID)
    restored = 0
    if not fsck.healthy:
        if fsck.by_status("lost"):
            report.problems.append("data loss before repair: %s"
                                   % fsck.summary())
        restored = repair_client_log(
            cluster.transport, CLIENT_ID,
            target_server=sorted(cluster.servers)[0])
        fsck = check_client_log(cluster.transport, CLIENT_ID)
    if not fsck.healthy:
        report.problems.append("fsck unhealthy after repair: %s"
                               % fsck.summary())

    fresh_log = LogLayer(cluster.transport, cluster.stripe_group(),
                         LogConfig(client_id=CLIENT_ID,
                                   fragment_size=fragment_size,
                                   **(log_overrides or {})))
    fresh_stack = ServiceStack(fresh_log)
    fresh_cleaner = fresh_stack.push(CleanerService(
        SERVICE_CLEANER, utilization_threshold=utilization_threshold))
    fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
    fresh_stack.recover_all()

    recovered: Dict[int, bytes] = {}
    for block_no in fresh_disk.block_numbers():
        recovered[block_no] = fresh_disk.read(block_no)
    if set(recovered) != set(expected):
        report.problems.append(
            "recovered block set %r != oracle %r"
            % (sorted(recovered), sorted(expected)))
    else:
        for block_no in sorted(expected):
            if recovered[block_no] != expected[block_no]:
                report.problems.append(
                    "recovered block %d differs from oracle" % block_no)
    if fresh_cleaner._live != cleaner._live:
        report.problems.append("cleaner liveness map did not recover")

    retrying = log.transport
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest(recovered)
    report.stats = {
        "ops": len(ops),
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": retrying.retries,
        "backoff_charged_s": retrying.backoff_charged_s,
        "exhausted": retrying.exhausted,
        "ambiguous_resolutions": retrying.ambiguous_resolutions,
        "flush_failures": flush_failures,
        "clean_passes": clean_passes,
        "stripes_cleaned": cleaner.stripes_cleaned,
        "blocks_moved": cleaner.blocks_moved,
        "bytes_moved": cleaner.bytes_moved,
        "deletes_requeued": cleaner.deletes_requeued,
        "fsck_restored": restored,
    }
    return report


def replay_cleaner_check(seed: int, **kwargs,
                         ) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run the cleaner-churn scenario twice; True when bit-identical."""
    first = run_cleaner_churn(seed, **kwargs)
    second = run_cleaner_churn(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical


# ----------------------------------------------------------------------
# Crash-point sweep: kill the client at every instrumented write-path
# step, recover a fresh one, and hold it to a durability oracle.
# ----------------------------------------------------------------------

#: Record type for the small "note" records the sweep episode appends
#: through :meth:`LogLayer.write_record`. They exist to keep the
#: group-commit buffer busy (so ``group_commit_flush`` fires often and
#: mid-batch kills are exercised); the logical-disk service ignores any
#: record type it does not know, so they are invisible to the oracle.
CRASH_NOTE_RTYPE = 96


def _run_crash_episode(seed: int, ops: Sequence[Op],
                       injector: CrashInjector, num_servers: int,
                       fragment_size: int, stripe_width: int):
    """Drive the scripted crash-sweep episode against a fresh cluster.

    The script is deliberately eventful so every named crash point
    fires several times: group-commit fences and note records, three
    checkpoint generations (each re-embedding the placement view
    history), a mid-run ``grow_fleet`` view change, a deterministic
    full-rewrite pass that guarantees the cleaner has dead stripes to
    reclaim for *any* seed, and one cleaning pass.

    Returns ``(cluster, applied, acked, crashed)``: the cluster (left
    exactly as the crash found it), every op *attempted* in order, the
    length of the prefix of ``applied`` known durable (acked by a fence
    or checkpoint), and whether the injector fired.

    An op is appended to ``applied`` before it executes: a kill inside
    the op leaves it attempted-but-unacked, which is exactly the window
    the durability oracle must treat as "may or may not have happened —
    but never torn".
    """
    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    all_servers = sorted(cluster.servers)
    initial_view = tuple(all_servers[:-1])
    extra = all_servers[-1]
    placement = SequentialCheckingPlacement(
        tuple(all_servers), stripe_width=stripe_width,
        parity_fragments=1, spare_servers=(),
        view_servers=initial_view)
    log = LogLayer(cluster.transport, placement,
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size),
                   verify_reads=True, crash_injector=injector)
    stack = ServiceStack(log)
    cleaner = stack.push(CleanerService(SERVICE_CLEANER,
                                        utilization_threshold=0.95))
    disk = stack.push(LogicalDiskService(SERVICE_DISK))

    applied: List[Op] = []
    acked = 0
    crashed = False

    def fence() -> None:
        nonlocal acked
        stack.flush().wait()
        acked = len(applied)

    def checkpoint_all() -> None:
        nonlocal acked
        for service in stack.layers:
            stack.checkpoint(service).wait()
        acked = len(applied)

    def apply_op(op: Op) -> None:
        applied.append(op)
        kind, block_no, payload_seed, size = op
        if kind == "write":
            disk.write(block_no, _payload(payload_seed, size))
        elif kind == "trim":
            disk.trim(block_no)
        elif disk.exists(block_no):
            disk.read(block_no)

    def run_slice(chunk: Sequence[Op], base: int) -> None:
        for position, op in enumerate(chunk, start=base):
            apply_op(op)
            if (position + 1) % 6 == 0:
                fence()
            if (position + 1) % 7 == 0:
                log.write_record(SERVICE_DISK, CRASH_NOTE_RTYPE,
                                 b"note-%d" % position)

    third = len(ops) // 3
    try:
        run_slice(ops[:third], 0)
        fence()
        checkpoint_all()
        log.grow_fleet([extra])
        run_slice(ops[third:2 * third], third)
        fence()
        checkpoint_all()
        # Deterministic rewrite pass: overwriting every live block kills
        # the blocks' old log copies, so the stripes holding them decay
        # below the cleaner's utilization threshold for any seed — the
        # cleaning pass below always has real work, and the cleaner
        # crash points always fire.
        for block_no in sorted(disk.block_numbers()):
            payload_seed = (seed * 1000003 + block_no) & 0x7FFFFFFF
            apply_op(("write", block_no, payload_seed, 512))
        fence()
        checkpoint_all()
        cleaner.clean(target_stripes=4)
        fence()
        run_slice(ops[2 * third:], 2 * third)
        fence()
        checkpoint_all()
    except ClientCrash:
        crashed = True
    return cluster, applied, acked, crashed


def _recover_crash_state(cluster, fragment_size: int,
                         stripe_width: int) -> Dict[int, bytes]:
    """Fresh-client recovery against whatever the crash left behind.

    The recovering client starts from the *initial* placement view
    (the view history rolls forward from the log's VIEW_CHANGE records)
    and an empty location cache — nothing survives from the dead client
    but the servers' contents.
    """
    all_servers = sorted(cluster.servers)
    placement = SequentialCheckingPlacement(
        tuple(all_servers), stripe_width=stripe_width,
        parity_fragments=1, spare_servers=(),
        view_servers=tuple(all_servers[:-1]))
    log = LogLayer(cluster.transport, placement,
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size))
    stack = ServiceStack(log)
    stack.push(CleanerService(SERVICE_CLEANER, utilization_threshold=0.95))
    disk = stack.push(LogicalDiskService(SERVICE_DISK))
    stack.recover_all()
    return {block_no: disk.read(block_no)
            for block_no in disk.block_numbers()}


def _check_crash_oracle(report, ptag: str, recovered: Dict[int, bytes],
                        applied: Sequence[Op], acked: int) -> None:
    """The durability oracle for one crash.

    * Every op acked before the kill must be readable after recovery —
      the recovered value of each block starts from the acked state.
    * Ops attempted after the last ack may have happened or not
      (rollforward stops wherever the durable prefix ends), but each
      block must read back as *some* value it was actually assigned —
      never a torn hybrid, never a value from a later op without the
      earlier ones' effects on that block.
    * A block may be absent only if the acked state did not contain it
      or an unacked trim could have removed it.
    """
    acked_state = oracle_state(applied[:acked])
    candidates: Dict[int, set] = {
        block_no: {value} for block_no, value in acked_state.items()}
    for kind, block_no, payload_seed, size in applied[acked:]:
        if kind == "write":
            candidates.setdefault(block_no, {acked_state.get(block_no)})
            candidates[block_no].add(_payload(payload_seed, size))
        elif kind == "trim":
            candidates.setdefault(block_no, {acked_state.get(block_no)})
            candidates[block_no].add(None)
    for block_no in sorted(recovered):
        allowed = candidates.get(block_no)
        if allowed is None:
            report.problems.append(
                "%srecovered block %d was never written" % (ptag, block_no))
        elif recovered[block_no] not in allowed:
            report.problems.append(
                "%srecovered block %d matches no applied value (torn write "
                "survived recovery)" % (ptag, block_no))
    for block_no, allowed in candidates.items():
        if block_no not in recovered and None not in allowed:
            report.problems.append(
                "%sacked block %d lost by the crash" % (ptag, block_no))


def _pick_occurrences(hits: int, cap: int) -> List[int]:
    """Which k-th occurrences of a point to arm, given it fired ``hits``
    times in the census. All of them when few; an evenly spaced sample
    (always including the first and last) when many."""
    if hits <= 0:
        return []
    if cap <= 1 or hits <= cap:
        return list(range(1, hits + 1)) if hits <= cap else [1]
    return sorted({1 + ((hits - 1) * i) // (cap - 1) for i in range(cap)})


@dataclass
class CrashSweepReport:
    """Outcome of one crash-point sweep."""

    seed: int
    problems: List[str] = field(default_factory=list)
    census: Dict[str, int] = field(default_factory=dict)
    pairs: List[Tuple[str, int, str, int]] = field(default_factory=list)
    """One ``(point, occurrence, recovered-state digest, fragments
    restored by repair)`` tuple per armed run, in sweep order."""
    state_digest: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every crash survived its oracle."""
        return not self.problems

    def summary(self) -> str:
        """One-line human summary (always names the seed)."""
        status = ("OK" if self.ok
                  else "FAILED (%d problems)" % len(self.problems))
        return ("crash-sweep seed=%d: %s — %d points, %d (point, occurrence) "
                "pairs, %d fragments repaired, digest %s"
                % (self.seed, status,
                   sum(1 for count in self.census.values() if count),
                   len(self.pairs), int(self.stats.get("repaired", 0)),
                   self.state_digest[:12]))


def run_crash_sweep(seed: int, ops: Optional[Sequence[Op]] = None,
                    num_servers: int = 6, fragment_size: int = 1 << 12,
                    stripe_width: int = 4, occ_cap: int = 4,
                    point: Optional[str] = None,
                    occurrence: Optional[int] = None,
                    ) -> CrashSweepReport:
    """Kill the client at every instrumented crash point; verify recovery.

    The sweep runs the scripted episode once with an unarmed injector
    (the *census*: identical traffic, counting how often each point
    fires), then re-runs it from a fresh cluster for each chosen
    ``(point, occurrence)`` pair with the injector armed to raise
    :class:`ClientCrash` at exactly that hit. After each kill a fresh
    client recovers from the servers alone and four invariants are
    checked:

    1. **durability** — every op acked (fenced or checkpointed) before
       the kill is readable; every unacked op is atomic: present with
       one of its actually-applied values, or absent, never torn;
    2. **idempotence** — recovering twice from the untouched post-crash
       cluster yields byte-identical states;
    3. **fsck** — the log the crash left behind is healthy or
       repairable (never *lost*), repairing it reaches full health, and
       recovery after repair still equals recovery before it;
    4. **determinism** — the armed run's hook trace is a prefix of the
       census trace (the kill changed nothing before the kill), which
       is what makes any pair replayable from ``(seed, point, k)``.

    ``point``/``occurrence`` restrict the sweep to one point (and
    optionally one k-th hit) — the replay knob for debugging a single
    failing triple. ``occ_cap`` bounds the occurrences armed per point;
    within the cap they are evenly spaced across the census count,
    always including the first and last hit.
    """
    if point is not None and point not in CRASH_POINTS:
        raise ValueError("unknown crash point %r (have: %s)"
                         % (point, ", ".join(CRASH_POINTS)))
    if occurrence is not None and point is None:
        raise ValueError("occurrence requires a crash point")
    ops = (list(ops) if ops is not None
           else generate_ops(seed, n_ops=36, max_blocks=12))
    report = CrashSweepReport(seed=seed)

    # Census: the same episode end to end, no kill. Establishes the
    # per-point hit counts, the hook trace armed runs must prefix, and
    # a clean baseline (its recovery must equal the oracle exactly).
    census_injector = CrashInjector()
    cluster, applied, acked, crashed = _run_crash_episode(
        seed, ops, census_injector, num_servers, fragment_size, stripe_width)
    report.census = census_injector.census()
    if crashed:
        report.problems.append("census run crashed with an unarmed injector")
        return report
    if acked != len(applied):
        report.problems.append("census run ended with unacked ops "
                               "(episode script bug)")
    census_ops = len(applied)
    expected = oracle_state(applied)
    census_state = _recover_crash_state(cluster, fragment_size, stripe_width)
    if census_state != expected:
        report.problems.append("census recovery diverged from the oracle")
    missing = [name for name in CRASH_POINTS
               if not report.census.get(name)]
    if missing:
        report.problems.append(
            "crash points never fired in the census: %s"
            % ", ".join(missing))

    if point is not None:
        occurrences = ([occurrence] if occurrence is not None
                       else _pick_occurrences(report.census.get(point, 0),
                                              occ_cap))
        targets = [(point, k) for k in occurrences]
    else:
        targets = [(name, k) for name in CRASH_POINTS
                   for k in _pick_occurrences(report.census.get(name, 0),
                                              occ_cap)]

    crashes = 0
    repaired_total = 0
    for name, k in targets:
        ptag = "%s@%d: " % (name, k)
        armed = CrashInjector(point=name, occurrence=k)
        cluster, applied, acked, crashed = _run_crash_episode(
            seed, ops, armed, num_servers, fragment_size, stripe_width)
        if not crashed:
            report.problems.append(ptag + "armed injector never fired")
            continue
        crashes += 1
        if armed.trace != census_injector.trace[:len(armed.trace)]:
            report.problems.append(
                ptag + "pre-kill hook trace diverged from the census")
        try:
            first = _recover_crash_state(cluster, fragment_size, stripe_width)
            second = _recover_crash_state(cluster, fragment_size,
                                          stripe_width)
        except SwarmError as exc:
            report.problems.append(ptag + "recovery failed: %s" % (exc,))
            continue
        if first != second:
            report.problems.append(
                ptag + "recovery is not idempotent (two recoveries of the "
                "same log differ)")
        _check_crash_oracle(report, ptag, first, applied, acked)
        fsck = check_client_log(cluster.transport, CLIENT_ID)
        pair_repaired = 0
        if not fsck.healthy:
            if not fsck.repairable:
                report.problems.append(
                    ptag + "crash left the log unrepairable: %s"
                    % fsck.summary())
            else:
                pair_repaired = repair_client_log(
                    cluster.transport, CLIENT_ID,
                    target_server=sorted(cluster.servers)[0])
                fsck = check_client_log(cluster.transport, CLIENT_ID)
                if not fsck.healthy:
                    report.problems.append(
                        ptag + "fsck still unhealthy after repair: %s"
                        % fsck.summary())
                else:
                    third = _recover_crash_state(cluster, fragment_size,
                                                 stripe_width)
                    if third != first:
                        report.problems.append(
                            ptag + "repair changed the recovered state")
        report.pairs.append((name, k, _digest(first), pair_repaired))
        repaired_total += pair_repaired

    acc = hashlib.sha256()
    for name, k, digest, pair_repaired in report.pairs:
        acc.update(b"%s:%d:%s:%d;"
                   % (name.encode("ascii"), k, digest.encode("ascii"),
                      pair_repaired))
    report.state_digest = acc.hexdigest()
    report.stats = {
        "ops": census_ops,
        "points_fired": sum(1 for count in report.census.values() if count),
        "pairs": len(targets),
        "crashes": crashes,
        "repaired": repaired_total,
    }
    return report


def replay_crash_sweep(seed: int, **kwargs,
                       ) -> Tuple[CrashSweepReport, CrashSweepReport, bool]:
    """Run a crash sweep twice; True when the runs are bit-identical.

    Identical means the same census counts, the same (point, occurrence,
    digest, repaired) tuple for every pair, and the same problem list —
    the property that makes any sweep failure reproducible from its
    ``(seed, point, occurrence)`` triple alone.
    """
    first = run_crash_sweep(seed, **kwargs)
    second = run_crash_sweep(seed, **kwargs)
    identical = (first.census == second.census
                 and first.pairs == second.pairs
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical
