"""Chaos-run harness: one seed, one hostile workload, hard invariants.

:func:`run_chaos` drives a logical-disk workload against a cluster whose
transport is wrapped in a :class:`~repro.chaos.transport.FaultyTransport`,
with the client stack configured the way a production deployment would
be: a retry policy over the transport and checksum-verified reads that
fall back to parity reconstruction. Mid-run it also damages committed
fragments durably (a bit flip and a torn image, via the failure
injector) and crashes/restarts the damaged server.

The run then asserts end-to-end invariants:

1. every read issued *during* the chaos matches a fault-free oracle
   (the same seeded op sequence applied to an in-memory model);
2. after the faults stop, ``swarm-fsck`` can bring the log back to
   fully healthy (no stripe is *lost* — zero data loss);
3. a fresh client recovering from the log alone reproduces exactly the
   oracle's final state;
4. the run is deterministic: the same seed yields the identical fault
   schedule and the identical recovered-state digest, so every failure
   is reproducible from one integer.

Violations are reported, not raised, so a test can print the seed with
the failure — rerunning with that seed replays the exact schedule.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import FaultEvent, FaultPlan, FaultSpec
from repro.chaos.transport import FaultyTransport
from repro.cluster.cluster import build_local_cluster
from repro.cluster.failures import FailureInjector
from repro.log.config import LogConfig
from repro.log.fragment import HEADER_SIZE
from repro.log.layer import LogLayer
from repro.rpc.retry import RetryPolicy
from repro.services.logical_disk import LogicalDiskService
from repro.services.stack import ServiceStack
from repro.tools.fsck import check_client_log, repair_client_log

SERVICE_DISK = 17
CLIENT_ID = 1

Op = Tuple[str, int, int, int]  # (kind, block_no, payload_seed, size)


def generate_ops(seed: int, n_ops: int = 48, max_blocks: int = 24,
                 max_size: int = 2048) -> List[Op]:
    """A seeded logical-disk op sequence (writes, overwrites, trims,
    reads). Same seed, same sequence."""
    rng = random.Random(seed ^ 0x5EED)
    ops: List[Op] = []
    for _ in range(n_ops):
        roll = rng.random()
        block_no = rng.randrange(max_blocks)
        if roll < 0.65:
            ops.append(("write", block_no, rng.randrange(1 << 30),
                        rng.randrange(16, max_size)))
        elif roll < 0.80:
            ops.append(("trim", block_no, 0, 0))
        else:
            ops.append(("read", block_no, 0, 0))
    return ops


def _payload(payload_seed: int, size: int) -> bytes:
    return random.Random(payload_seed).randbytes(size)


def oracle_state(ops: Sequence[Op]) -> Dict[int, bytes]:
    """Final logical-disk state of a fault-free run: the oracle."""
    state: Dict[int, bytes] = {}
    for kind, block_no, payload_seed, size in ops:
        if kind == "write":
            state[block_no] = _payload(payload_seed, size)
        elif kind == "trim":
            state.pop(block_no, None)
    return state


def _digest(state: Dict[int, bytes]) -> str:
    acc = hashlib.sha256()
    for block_no in sorted(state):
        acc.update(b"%d:%d:" % (block_no, len(state[block_no])))
        acc.update(state[block_no])
    return acc.hexdigest()


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    problems: List[str] = field(default_factory=list)
    fault_history: Tuple[FaultEvent, ...] = ()
    state_digest: str = ""
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.problems

    def summary(self) -> str:
        """One-line human summary (always names the seed)."""
        status = "OK" if self.ok else "FAILED (%d problems)" % len(self.problems)
        return ("chaos seed=%d: %s — %d faults, %d retries, "
                "%d ambiguous stores resolved, digest %s"
                % (self.seed, status, len(self.fault_history),
                   int(self.stats.get("retries", 0)),
                   int(self.stats.get("ambiguous_resolutions", 0)),
                   self.state_digest[:12]))


def run_chaos(seed: int, ops: Optional[Sequence[Op]] = None,
              spec: Optional[FaultSpec] = None, num_servers: int = 4,
              fragment_size: int = 1 << 12,
              damage_fragments: int = 2) -> ChaosReport:
    """Execute one seeded chaos run; see the module docstring."""
    ops = list(ops) if ops is not None else generate_ops(seed)
    expected = oracle_state(ops)
    report = ChaosReport(seed=seed)

    cluster = build_local_cluster(num_servers=num_servers, num_clients=1,
                                  fragment_size=fragment_size)
    injector = FailureInjector(cluster)
    plan = FaultPlan(seed, spec)
    faulty = FaultyTransport(cluster.transport, plan)
    log = LogLayer(faulty, cluster.stripe_group(),
                   LogConfig(client_id=CLIENT_ID,
                             fragment_size=fragment_size),
                   retry_policy=RetryPolicy(seed=seed), verify_reads=True)
    stack = ServiceStack(log)
    disk = stack.push(LogicalDiskService(SERVICE_DISK))
    victim = plan.durable_victim

    model: Dict[int, bytes] = {}
    flush_failures = 0
    reads_checked = 0

    def apply_op(op: Op) -> None:
        nonlocal reads_checked
        kind, block_no, payload_seed, size = op
        if kind == "write":
            data = _payload(payload_seed, size)
            disk.write(block_no, data)
            model[block_no] = data
        elif kind == "trim":
            disk.trim(block_no)
            model.pop(block_no, None)
        else:
            reads_checked += 1
            if disk.exists(block_no) != (block_no in model):
                report.problems.append(
                    "block %d existence diverged mid-run" % block_no)
            elif block_no in model and disk.read(block_no) != model[block_no]:
                report.problems.append(
                    "read of block %d diverged mid-run" % block_no)

    # Phase 1: first half of the workload under wire faults.
    half = len(ops) // 2
    for op in ops[:half]:
        apply_op(op)
    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())

    # Phase 2: durable damage on the durable victim's committed
    # fragments — one silent payload bit flip, one torn image.
    victim_server = (cluster.servers[victim] if victim in cluster.servers
                     else None)
    damaged: List[int] = []
    if victim_server is not None:
        committed = [fid for fid in sorted(victim_server.slots.fids())
                     if not (victim_server.slots.info_of(fid) or {})
                     .get("preallocated")]
        damaged = committed[:damage_fragments]
        for index, fid in enumerate(damaged):
            if index % 2 == 0:
                injector.corrupt_fragment(victim, fid,
                                          bit_index=8 * HEADER_SIZE + 5)
            else:
                injector.tear_fragment(victim, fid, keep_fraction=0.5)

    # Phase 3: rest of the workload — reads of damaged fragments must
    # come back correct through verification + reconstruction.
    for op in ops[half:]:
        apply_op(op)
    ticket = stack.flush()
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())
    ticket = stack.checkpoint(disk)
    ticket.wait(allow_degraded=True)
    flush_failures += len(ticket.failures())

    # Phase 4: crash the damaged server outright; every live block must
    # still read back correctly (degraded reads). Then bring it back.
    injector.crash_server(victim)
    for block_no in sorted(model):
        if disk.read(block_no) != model[block_no]:
            report.problems.append(
                "read of block %d diverged with %s down" % (block_no, victim))
    injector.restart_server(victim)

    # Phase 5: faults off; fsck must be able to restore full health.
    plan.stop()
    fsck = check_client_log(cluster.transport, CLIENT_ID)
    restored = 0
    if not fsck.healthy:
        if fsck.by_status("lost"):
            report.problems.append("data loss before repair: %s"
                                   % fsck.summary())
        restored = repair_client_log(cluster.transport, CLIENT_ID,
                                     target_server=victim)
        fsck = check_client_log(cluster.transport, CLIENT_ID)
    if not fsck.healthy:
        report.problems.append("fsck unhealthy after repair: %s"
                               % fsck.summary())

    # Phase 6: a fresh client (simulated client crash — all in-memory
    # state lost) recovers from the log alone and must reproduce the
    # oracle exactly.
    fresh_log = LogLayer(cluster.transport, cluster.stripe_group(),
                         LogConfig(client_id=CLIENT_ID,
                                   fragment_size=fragment_size))
    fresh_stack = ServiceStack(fresh_log)
    fresh_disk = fresh_stack.push(LogicalDiskService(SERVICE_DISK))
    fresh_stack.recover_all()

    recovered: Dict[int, bytes] = {}
    for block_no in fresh_disk.block_numbers():
        recovered[block_no] = fresh_disk.read(block_no)
    if set(recovered) != set(expected):
        report.problems.append(
            "recovered block set %r != oracle %r"
            % (sorted(recovered), sorted(expected)))
    else:
        for block_no in sorted(expected):
            if recovered[block_no] != expected[block_no]:
                report.problems.append(
                    "recovered block %d differs from oracle" % block_no)

    retrying = log.transport  # the RetryingTransport the layer installed
    report.fault_history = tuple(plan.history)
    report.state_digest = _digest(recovered)
    report.stats = {
        "ops": len(ops),
        "reads_checked": reads_checked,
        "faults_applied": faulty.faults_applied,
        "retries": retrying.retries,
        "backoff_charged_s": retrying.backoff_charged_s,
        "exhausted": retrying.exhausted,
        "ambiguous_resolutions": retrying.ambiguous_resolutions,
        "flush_failures": flush_failures,
        "damaged_fragments": len(damaged),
        "fsck_restored": restored,
    }
    return report


def replay_check(seed: int, **kwargs) -> Tuple[ChaosReport, ChaosReport, bool]:
    """Run a seed twice; True when the runs are bit-identical.

    Identical means the same fault schedule (event by event) and the
    same recovered-state digest — the property that makes any chaos
    failure reproducible from its seed.
    """
    first = run_chaos(seed, **kwargs)
    second = run_chaos(seed, **kwargs)
    identical = (first.fault_history == second.fault_history
                 and first.state_digest == second.state_digest
                 and first.problems == second.problems)
    return first, second, identical
