"""Seeded fault plans: one integer → one reproducible fault schedule.

A :class:`FaultPlan` is consulted once per transport call and decides —
from a seeded RNG and nothing else — whether that call is faulted and
how. Replaying the same seed against the same workload therefore
replays the identical schedule, which is what makes chaos failures
debuggable: the plan also records every decision in :attr:`FaultPlan.history`
so two runs can be diffed event by event.

Two structural rules keep chaos runs *survivable by construction*, so
the runner can assert zero data loss instead of "usually fine":

* **Durable damage is confined to one server.** Torn stores and silent
  bit flips (the faults that damage or misreport committed bytes) only
  ever hit the plan's ``durable_victim``. Stripes place one member per
  server, so at most one member of any stripe is ever damaged — always
  within reach of single-parity reconstruction.
* **Fault bursts are bounded.** After ``max_consecutive`` consecutive
  faulted calls to one server the next call is forced clean. With the
  bound below a retry policy's attempt limit, a retried operation
  against a live server always succeeds eventually.

Wire faults (drops, delays, duplicates) rotate across servers: every
``victim_window`` decisions the targeted server advances, so the whole
cluster gets exercised over a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ConfigError
from repro.rpc import messages as m

#: Request types the plan may fault. Mutating-but-not-idempotent
#: operations (ACL management, scripts) are excluded: duplicating or
#: tearing them has no safe client-side resolution, and none of them is
#: on the data path the chaos engine is probing.
FAULTABLE_REQUESTS = (
    m.StoreRequest,
    m.RetrieveRequest,
    m.MultiRetrieveRequest,
    m.DeleteRequest,
    m.PreallocateRequest,
    m.HoldsRequest,
    m.LastMarkedRequest,
)

WIRE_FAULTS = ("drop_request", "drop_response", "delay", "duplicate")
DURABLE_FAULTS = ("torn_store", "bit_flip")


def choose_kill_victims(seed: int, candidates: Sequence[str],
                        count: int = 1) -> List[str]:
    """Pick the servers a kill-server scenario will crash.

    Drawn from a dedicated RNG stream (not the plan's), so adding the
    kill decision never perturbs the wire-fault schedule of the same
    seed — the property replay checks depend on. Candidates are sorted
    first: the choice depends on the seed and the membership, never on
    dict ordering. ``count == 1`` reproduces the draw historical
    single-kill seeds were pinned against; larger counts sample without
    replacement and return the victims sorted.
    """
    pool = sorted(candidates)
    if count < 1:
        raise ConfigError("kill-victim count must be >= 1")
    if count > len(pool):
        raise ConfigError("cannot kill %d of %d candidate servers"
                          % (count, len(pool)))
    rng = random.Random(seed ^ 0xD1ED)
    if count == 1:
        return [rng.choice(pool)]
    return sorted(rng.sample(pool, count))


def choose_kill_victim(seed: int, candidates: Sequence[str]) -> str:
    """Single-victim compatibility wrapper for :func:`choose_kill_victims`."""
    return choose_kill_victims(seed, candidates, 1)[0]


@dataclass(frozen=True)
class FaultSpec:
    """Fault rates and shape knobs for a :class:`FaultPlan`.

    Rates are per-call probabilities; the four wire rates are compared
    against one draw cumulatively, so their sum is the overall wire
    fault rate and must stay ≤ 1.
    """

    drop_request: float = 0.10
    drop_response: float = 0.08
    delay: float = 0.08
    duplicate: float = 0.05
    torn_store: float = 0.20
    bit_flip: float = 0.25
    delay_s: float = 0.005
    victim_window: int = 16
    max_consecutive: int = 3
    pinned_victim: Optional[str] = None

    def validate(self) -> None:
        rates = (self.drop_request, self.drop_response, self.delay,
                 self.duplicate, self.torn_store, self.bit_flip)
        if any(not 0.0 <= rate <= 1.0 for rate in rates):
            raise ConfigError("fault rates must be in [0, 1]")
        wire = (self.drop_request + self.drop_response + self.delay
                + self.duplicate)
        if wire > 1.0:
            raise ConfigError("wire fault rates sum to %.3f > 1" % wire)
        if self.victim_window < 1:
            raise ConfigError("victim_window must be >= 1")
        if self.max_consecutive < 1:
            raise ConfigError("max_consecutive must be >= 1")


DEFAULT_SPEC = FaultSpec()


@dataclass(frozen=True)
class FaultEvent:
    """One fault decision, recorded for replay comparison."""

    index: int
    kind: str
    server_id: str
    request: str
    fid: int = -1
    arg: int = 0
    """Fault-specific argument (the bit index for ``bit_flip``)."""


class FaultPlan:
    """Seed-driven per-call fault schedule.

    Construct with a seed, :meth:`attach` the server set (done by
    :class:`~repro.chaos.transport.FaultyTransport`), then
    :meth:`decide` is consulted once per call. :meth:`stop` disables
    all further faults — the runner uses it before fsck and recovery.
    """

    def __init__(self, seed: int, spec: Optional[FaultSpec] = None) -> None:
        self.seed = seed
        self.spec = spec if spec is not None else DEFAULT_SPEC
        self.spec.validate()
        self._rng = random.Random(seed)
        self.history: List[FaultEvent] = []
        self.durable_victim: Optional[str] = None
        self._servers: List[str] = []
        self._consecutive: Dict[str, int] = {}
        self._torn_fids: Set[int] = set()
        self._decisions = 0
        self._active = True

    def attach(self, server_ids: Sequence[str]) -> None:
        """Bind the plan to a server set (sorted for determinism)."""
        self._servers = sorted(server_ids)
        if not self._servers:
            raise ConfigError("fault plan needs at least one server")
        self._consecutive = {sid: 0 for sid in self._servers}
        if self.spec.pinned_victim is not None:
            if self.spec.pinned_victim not in self._servers:
                raise ConfigError("pinned victim %r is not a server"
                                  % self.spec.pinned_victim)
            self.durable_victim = self.spec.pinned_victim
        else:
            self.durable_victim = self._rng.choice(self._servers)

    def stop(self) -> None:
        """Disable all further faults (history is kept)."""
        self._active = False

    @property
    def active(self) -> bool:
        """Whether the plan is still injecting faults."""
        return self._active

    @property
    def current_victim(self) -> Optional[str]:
        """Server currently targeted by wire faults (rotates)."""
        if not self._servers:
            return None
        window = self._decisions // self.spec.victim_window
        return self._servers[window % len(self._servers)]

    # ------------------------------------------------------------------

    def decide(self, server_id: str, request) -> Optional[FaultEvent]:
        """Fault decision for one call; None means the call runs clean."""
        if not self._active or self.durable_victim is None:
            return None
        if not isinstance(request, FAULTABLE_REQUESTS):
            return None
        victim = self.current_victim
        self._decisions += 1
        if self._consecutive.get(server_id, 0) >= self.spec.max_consecutive:
            # Budget spent: force a clean call so bounded retries always
            # reach a live server.
            self._consecutive[server_id] = 0
            return None
        kind = self._choose(server_id, victim, request)
        if kind is None:
            self._consecutive[server_id] = 0
            return None
        self._consecutive[server_id] = self._consecutive.get(server_id, 0) + 1
        fid = getattr(request, "fid", -1)
        arg = 0
        if kind == "bit_flip":
            arg = self._rng.randrange(1 << 30)
        if kind == "torn_store":
            self._torn_fids.add(fid)
        event = FaultEvent(index=len(self.history), kind=kind,
                           server_id=server_id,
                           request=type(request).__name__, fid=fid, arg=arg)
        self.history.append(event)
        return event

    def _choose(self, server_id: str, victim: Optional[str],
                request) -> Optional[str]:
        spec = self.spec
        roll = self._rng.random()
        if server_id == self.durable_victim:
            if (isinstance(request, m.StoreRequest)
                    and request.fid not in self._torn_fids
                    and roll < spec.torn_store):
                return "torn_store"
            if isinstance(request, m.RetrieveRequest) and roll < spec.bit_flip:
                return "bit_flip"
        if server_id != victim:
            return None
        threshold = 0.0
        for kind, rate in (("drop_request", spec.drop_request),
                           ("drop_response", spec.drop_response),
                           ("delay", spec.delay),
                           ("duplicate", spec.duplicate)):
            threshold += rate
            if roll < threshold:
                if kind == "drop_response" and isinstance(
                        request, (m.RetrieveRequest, m.MultiRetrieveRequest)):
                    # A lost retrieve reply is indistinguishable from a
                    # dropped request to the client and has no durable
                    # side effect; keep the cheaper shape.
                    return "drop_request"
                return kind
        return None
