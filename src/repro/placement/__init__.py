"""Placement policies mapping stripes onto a (possibly huge) fleet.

See :mod:`repro.placement.policy` for the model: a policy answers
"which servers hold stripe *n*", a versioned view history makes fleet
grow/shrink reallocation-free, and :class:`StaticPlacement` keeps every
pre-policy config bit-identical.
"""

from repro.placement.policy import (
    PlacementPolicy,
    PlacementView,
    SequentialCheckingPlacement,
    StaticPlacement,
    as_placement,
    decode_views,
    encode_views,
)

__all__ = [
    "PlacementPolicy",
    "PlacementView",
    "SequentialCheckingPlacement",
    "StaticPlacement",
    "as_placement",
    "decode_views",
    "encode_views",
]
