"""Placement policies: which servers hold which stripe.

The original prototype striped every client over one static
:class:`~repro.log.stripe.StripeGroup` chosen at config time, which caps
a deployment at ``MAX_STRIPE_WIDTH`` servers. A *placement policy*
separates the two sizes the group conflated:

* the **stripe width** — fragments per stripe, a real on-disk limit
  (fragment headers embed ``MAX_STRIPE_WIDTH`` server-name slots);
* the **fleet size** — servers the client may place stripes on, which
  has no such limit.

Policies map a stripe (by its per-client stripe sequence number) onto
servers. Two are provided:

:class:`StaticPlacement`
    The original behavior, bit for bit: one group, rotation
    ``servers[(stripe_number + i) % size]``, rotation restarting on
    reform. Every existing config builds this policy implicitly.

:class:`SequentialCheckingPlacement`
    Reallocation-free scale-out in the style of the Sequential
    Checking data-distribution scheme: the fleet is presented to the
    striper through a *view* (an ordered subset of servers), and every
    view change — grow, shrink, reform away from a dead member — is
    recorded in a **view history keyed by stripe sequence number**.
    Stripe ``n`` is governed by the newest view whose ``first_stripe``
    does not exceed ``n``, so a view change only affects stripes written
    *after* it: growing 16 -> 64 servers moves zero pre-existing
    fragments. The history is tiny (one entry per epoch), is persisted
    in VIEW_CHANGE log records and re-embedded in every checkpoint, and
    is recovered by rollforward — so a restarting client resolves
    stripes written under any past epoch.

Resolution of *reads* never needs the policy at all: every fragment
header embeds its stripe's full server list, and the broadcast ``holds``
query locates anything else — exactly why view changes are free of data
movement.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.log.fragment import MAX_STRIPE_WIDTH
from repro.log.stripe import StripeGroup, StripeLayout
from repro.util.packing import pack_bytes, unpack_bytes


@dataclass(frozen=True)
class PlacementView:
    """One epoch of a policy's view history.

    ``first_stripe`` is the stripe sequence number from which this view
    governs placement; the view stays in force until a later view's
    ``first_stripe``. Epochs are strictly increasing across changes.
    """

    epoch: int
    first_stripe: int
    servers: Tuple[str, ...]

    @property
    def size(self) -> int:
        """Number of servers in the view."""
        return len(self.servers)

    @property
    def supports_parity(self) -> bool:
        """Parity requires at least two servers (one data + one parity)."""
        return self.size >= 2


# ---------------------------------------------------------------------------
# View-history serialization (VIEW_CHANGE record / checkpoint payload)
# ---------------------------------------------------------------------------

_VIEW_HEAD = struct.Struct(">IQH")


def encode_views(views: Sequence[PlacementView]) -> bytes:
    """Serialize a whole view history.

    Always the *full* history, never a delta: the newest VIEW_CHANGE
    record by LSN wins wholesale during recovery, which keeps the
    history recoverable even after the cleaner reclaims the stripes
    holding earlier records (every checkpoint re-embeds it).
    """
    out = [struct.pack(">I", len(views))]
    for view in views:
        out.append(_VIEW_HEAD.pack(view.epoch, view.first_stripe,
                                   len(view.servers)))
        for name in view.servers:
            out.append(pack_bytes(name.encode("utf-8")))
    return b"".join(out)


def decode_views(payload: bytes) -> List[PlacementView]:
    """Inverse of :func:`encode_views`."""
    (count,) = struct.unpack_from(">I", payload, 0)
    pos = 4
    views: List[PlacementView] = []
    for _ in range(count):
        epoch, first_stripe, nservers = _VIEW_HEAD.unpack_from(payload, pos)
        pos += _VIEW_HEAD.size
        servers = []
        for _ in range(nservers):
            raw, pos = unpack_bytes(payload, pos)
            servers.append(raw.decode("utf-8"))
        views.append(PlacementView(epoch, first_stripe, tuple(servers)))
    return views


class PlacementPolicy:
    """Interface every placement policy implements.

    The log layer asks the policy four kinds of questions:

    * stripe geometry — :meth:`width_for`, :meth:`max_data_fragments`,
      :meth:`parity_index`, :attr:`parity_fragments`;
    * placement — :meth:`servers_for_stripe`,
      :meth:`initial_stripe_number`;
    * membership changes — :meth:`change_view` (manual reform, grow,
      shrink) and :meth:`plan_reform` (spare selection when the failure
      detector declares a member dead);
    * introspection/persistence — :attr:`group`, :meth:`views`,
      :meth:`encode_views` / :meth:`adopt_views`, :meth:`describe`.

    ``persist_views`` controls whether the log layer writes VIEW_CHANGE
    records (False for :class:`StaticPlacement`, whose on-disk output
    must stay bit-identical to the pre-policy code); ``resets_rotation``
    controls whether the stripe rotation restarts after a view change
    (True only for static, again for bit-compatibility).
    """

    kind = "abstract"
    persist_views = False
    resets_rotation = False

    def __init__(self) -> None:
        self._views: List[PlacementView] = []
        self.spare_servers: Tuple[str, ...] = ()
        self.spares_used: List[str] = []

    # -- geometry ------------------------------------------------------------

    @property
    def parity_fragments(self) -> int:
        """Effective parity members per stripe (clamped)."""
        raise NotImplementedError

    def width_for(self, data_fragments: int) -> int:
        """Total stripe width for ``data_fragments`` data members."""
        raise NotImplementedError

    def max_data_fragments(self) -> int:
        """Most data fragments a full-width stripe can carry."""
        raise NotImplementedError

    def parity_index(self, width: int) -> int:
        """Stripe index of the first parity member."""
        return width - self.parity_fragments

    # -- placement -----------------------------------------------------------

    def servers_for_stripe(self, stripe_number: int,
                           width: int) -> Tuple[str, ...]:
        """Server names, in stripe-index order, for one stripe."""
        raise NotImplementedError

    def initial_stripe_number(self, client_id: int) -> int:
        """Where this client's stripe rotation starts.

        Staggered by client id so concurrent clients do not advance
        across the servers in lockstep.
        """
        return client_id % max(1, len(self.current_servers()))

    # -- views ---------------------------------------------------------------

    def current_servers(self) -> Tuple[str, ...]:
        """Servers of the newest view (where the *next* stripe lands)."""
        return self._views[-1].servers

    def fleet(self) -> Tuple[str, ...]:
        """Every server this policy knows about (view + standbys)."""
        extra = tuple(s for s in self.spare_servers
                      if s not in self.current_servers())
        return self.current_servers() + extra

    @property
    def group(self):
        """The current view, shaped like a stripe group (``.servers``,
        ``.size``). Static placement returns its real
        :class:`StripeGroup`."""
        return self._views[-1]

    @property
    def view_epoch(self) -> int:
        """Epoch of the newest view (0 until the first change)."""
        return self._views[-1].epoch

    def views(self) -> Tuple[PlacementView, ...]:
        """The whole view history, oldest first."""
        return tuple(self._views)

    def view_for_stripe(self, stripe_number: int) -> PlacementView:
        """The view governing ``stripe_number``: the newest view whose
        ``first_stripe`` does not exceed it — the *sequential check*
        that names the scheme."""
        governing = self._views[0]
        for view in self._views:
            if view.first_stripe <= stripe_number:
                governing = view
            else:
                break
        return governing

    def change_view(self, servers: Sequence[str],
                    first_stripe: int = 0) -> PlacementView:
        """Install a new view effective from stripe ``first_stripe``."""
        raise NotImplementedError

    # -- failure handling ----------------------------------------------------

    def plan_reform(self, dead_server: str, monitor=None,
                    ) -> Tuple[Optional[Tuple[str, ...]], Optional[str], bool]:
        """Decide how to reform away from a dead member.

        Returns ``(new_servers, replacement, kept_group)``:
        ``new_servers`` is the successor view (None when the view must
        be kept), ``replacement`` the drafted standby (None when the
        view shrinks), ``kept_group`` True when no safe successor
        exists and the current view is retained.
        """
        raise NotImplementedError

    def _pick_replacement(self, candidates: Sequence[str],
                          monitor=None) -> Optional[str]:
        current = set(self.current_servers())
        for candidate in candidates:
            if candidate in current or candidate in self.spares_used:
                continue
            if monitor is not None and not monitor.is_usable(candidate):
                continue
            return candidate
        return None

    def spares_remaining(self) -> List[str]:
        """Configured standbys not yet drafted."""
        return [s for s in self.spare_servers if s not in self.spares_used]

    # -- persistence ---------------------------------------------------------

    def encode_views(self) -> bytes:
        """The view history as a VIEW_CHANGE record payload."""
        return encode_views(self._views)

    def adopt_views(self, views: Sequence[PlacementView]) -> bool:
        """Replace the history with one recovered from the log.

        The recovered history wins wholesale when it is at least as new
        (by epoch) as what this policy already holds — the caller hands
        in the newest VIEW_CHANGE payload by LSN, so this makes a fresh
        client converge on exactly the epochs the crashed client wrote.
        Returns whether the handed-in history was adopted.
        """
        views = list(views)
        if not views:
            return False
        if self._views and views[-1].epoch < self._views[-1].epoch:
            return False
        self._views = views
        return True

    def describe(self) -> Dict[str, object]:
        """One structured snapshot for ``health_report()`` and tests."""
        return {
            "policy": self.kind,
            "epoch": self.view_epoch,
            "views": len(self._views),
            "view_size": len(self.current_servers()),
            "fleet_size": len(self.fleet()),
        }


class StaticPlacement(PlacementPolicy):
    """The original single-group placement, bit-identical.

    Delegates all geometry and rotation to :class:`StripeLayout`, so
    stripe ``k`` still lands on ``servers[(k + i) % size]`` and the
    on-disk output of every existing config is unchanged. View changes
    replace the whole group and restart the rotation (what
    ``reform_group`` always did); the view history exists only for
    introspection and is never persisted.
    """

    kind = "static"
    persist_views = False
    resets_rotation = True

    def __init__(self, group: StripeGroup, parity_fragments: int = 1,
                 spare_servers: Sequence[str] = ()) -> None:
        super().__init__()
        if not isinstance(group, StripeGroup):
            group = StripeGroup(tuple(group))
        # The *configured* parity count survives reforms: a shrunken
        # group may clamp it, a later larger group un-clamps it.
        self._configured_parity = parity_fragments
        self.layout = StripeLayout(group, parity_fragments)
        self.spare_servers = tuple(spare_servers)
        self._views = [PlacementView(0, 0, group.servers)]

    # -- geometry (delegated) ------------------------------------------------

    @property
    def parity_fragments(self) -> int:
        return self.layout.parity_fragments

    def width_for(self, data_fragments: int) -> int:
        return self.layout.width_for(data_fragments)

    def max_data_fragments(self) -> int:
        return self.layout.max_data_fragments()

    def parity_index(self, width: int) -> int:
        return self.layout.parity_index(width)

    def servers_for_stripe(self, stripe_number: int,
                           width: int) -> Tuple[str, ...]:
        return self.layout.servers_for_stripe(stripe_number, width)

    @property
    def group(self) -> StripeGroup:
        return self.layout.group

    def change_view(self, servers: Sequence[str],
                    first_stripe: int = 0) -> PlacementView:
        group = StripeGroup(tuple(servers))
        self.layout = StripeLayout(group, self._configured_parity)
        view = PlacementView(self._views[-1].epoch + 1, first_stripe,
                             group.servers)
        self._views.append(view)
        return view

    def plan_reform(self, dead_server: str, monitor=None,
                    ) -> Tuple[Optional[Tuple[str, ...]], Optional[str], bool]:
        replacement = self._pick_replacement(self.spare_servers, monitor)
        if replacement is not None:
            self.spares_used.append(replacement)
            return (tuple(replacement if sid == dead_server else sid
                          for sid in self.current_servers()),
                    replacement, False)
        new_servers = tuple(sid for sid in self.current_servers()
                            if sid != dead_server)
        # Never below one data member plus full *configured* parity:
        # writes stay degraded-but-recoverable rather than unprotected.
        if len(new_servers) < max(2, self._configured_parity + 1):
            return None, None, True
        return new_servers, None, False

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        doc["stripe_width"] = self.layout.group.size
        return doc


class SequentialCheckingPlacement(PlacementPolicy):
    """Reallocation-free placement over a large fleet.

    Parameters
    ----------
    fleet:
        Every server this client may ever place stripes on. Size is
        unbounded — the per-stripe width limit does not apply to it.
    stripe_width:
        Fragments per stripe (``k + m``); must not exceed
        ``MAX_STRIPE_WIDTH`` (the fragment header's descriptor
        capacity) nor the view size.
    parity_fragments:
        Parity members ``m`` per stripe; clamped to ``stripe_width - 1``
        so every stripe keeps a data member.
    spare_servers:
        Preferred standbys for :meth:`plan_reform`; after these, any
        fleet member outside the current view may be drafted.
    view_servers:
        The initial view (defaults to the fleet minus the spares).

    Stripe ``n`` rotates over its governing view exactly the way
    :class:`StripeLayout` rotates over a group —
    ``view.servers[(n + i) % view_size]`` — so growing the view only
    *appends* servers and leaves every already-written stripe's
    placement untouched: zero data movement on scale-out.
    """

    kind = "sequential"
    persist_views = True
    resets_rotation = False

    def __init__(self, fleet: Sequence[str], stripe_width: int = 8,
                 parity_fragments: int = 1,
                 spare_servers: Sequence[str] = (),
                 view_servers: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        fleet = tuple(fleet)
        if not fleet:
            raise ConfigError("placement fleet needs at least one server")
        if len(set(fleet)) != len(fleet):
            raise ConfigError("duplicate server in placement fleet")
        self.spare_servers = tuple(spare_servers)
        if view_servers is not None:
            view = tuple(view_servers)
        else:
            held_out = set(self.spare_servers)
            view = tuple(sid for sid in fleet if sid not in held_out)
        if not view:
            raise ConfigError("placement view needs at least one server")
        if len(set(view)) != len(view):
            raise ConfigError("duplicate server in placement view")
        if stripe_width < 1:
            raise ConfigError("stripe_width must be >= 1")
        if stripe_width > MAX_STRIPE_WIDTH:
            raise ConfigError(
                "stripe_width %d exceeds MAX_STRIPE_WIDTH (%d); the width "
                "is the per-stripe fragment count — an on-disk limit of the "
                "fragment header — and is independent of the fleet size: a "
                "256-server fleet still stripes at most %d fragments wide"
                % (stripe_width, MAX_STRIPE_WIDTH, MAX_STRIPE_WIDTH))
        if stripe_width > len(view):
            raise ConfigError(
                "stripe_width %d exceeds the view of %d servers: every "
                "stripe member must land on a distinct server"
                % (stripe_width, len(view)))
        if parity_fragments < 0:
            raise ConfigError("parity_fragments must be >= 0")
        self.stripe_width = stripe_width
        self._parity = min(parity_fragments, stripe_width - 1)
        self._known = set(fleet) | set(view) | set(self.spare_servers)
        self._fleet = list(fleet)
        for sid in view + self.spare_servers:
            if sid not in fleet:
                self._fleet.append(sid)
        self._views = [PlacementView(0, 0, view)]

    # -- geometry ------------------------------------------------------------

    @property
    def parity_fragments(self) -> int:
        return self._parity

    def width_for(self, data_fragments: int) -> int:
        if data_fragments < 1:
            raise ValueError("a stripe needs at least one data fragment")
        return data_fragments + self._parity

    def max_data_fragments(self) -> int:
        return max(1, self.stripe_width - self._parity)

    def servers_for_stripe(self, stripe_number: int,
                           width: int) -> Tuple[str, ...]:
        view = self.view_for_stripe(stripe_number)
        size = view.size
        if width > size:
            raise ValueError("stripe wider than its placement view")
        return tuple(view.servers[(stripe_number + i) % size]
                     for i in range(width))

    def fleet(self) -> Tuple[str, ...]:
        return tuple(self._fleet)

    # -- view changes --------------------------------------------------------

    def change_view(self, servers: Sequence[str],
                    first_stripe: int = 0) -> PlacementView:
        """Install a new view effective from stripe ``first_stripe``.

        Two changes inside the same stripe window (no stripe closed in
        between) collapse into one history entry — the newer server set
        wins — but still consume an epoch each, so every reform is
        observable. History must advance by stripe number; shrinking
        the view below the stripe width is refused (a stripe's members
        must land on distinct servers).
        """
        servers = tuple(servers)
        if len(set(servers)) != len(servers):
            raise ConfigError("duplicate server in placement view")
        if len(servers) < self.stripe_width:
            raise ConfigError(
                "view of %d servers cannot hold width-%d stripes (k+m=%d): "
                "refusing to shrink below the stripe width"
                % (len(servers), self.stripe_width, self.stripe_width))
        for sid in servers:
            if sid not in self._known:
                self._known.add(sid)
                self._fleet.append(sid)
        last = self._views[-1]
        if first_stripe < last.first_stripe:
            raise ConfigError("view history must advance by stripe number")
        view = PlacementView(last.epoch + 1, first_stripe, servers)
        if first_stripe == last.first_stripe:
            self._views[-1] = view
        else:
            self._views.append(view)
        return view

    def grow(self, new_servers: Sequence[str],
             first_stripe: int) -> PlacementView:
        """Append servers to the view (absorbing them into the fleet)."""
        current = self.current_servers()
        added = tuple(sid for sid in new_servers if sid not in current)
        return self.change_view(current + added, first_stripe)

    def shrink(self, remove_servers: Sequence[str],
               first_stripe: int) -> PlacementView:
        """Drop servers from the view (future stripes avoid them; their
        already-written stripes stay where they are and stay readable)."""
        gone = set(remove_servers)
        return self.change_view(
            tuple(sid for sid in self.current_servers() if sid not in gone),
            first_stripe)

    def plan_reform(self, dead_server: str, monitor=None,
                    ) -> Tuple[Optional[Tuple[str, ...]], Optional[str], bool]:
        """Spare selection over the whole fleet.

        Preference order: the configured spares first, then any fleet
        member outside the current view. With no usable candidate the
        view shrinks — unless that would drop it below the stripe
        width, in which case the view is kept (degraded writes beat a
        stripe that cannot place its members on distinct servers).
        """
        candidates = tuple(self.spare_servers) + tuple(self._fleet)
        replacement = self._pick_replacement(candidates, monitor)
        if replacement is not None:
            self.spares_used.append(replacement)
            return (tuple(replacement if sid == dead_server else sid
                          for sid in self.current_servers()),
                    replacement, False)
        remaining = tuple(sid for sid in self.current_servers()
                          if sid != dead_server)
        if len(remaining) < self.stripe_width:
            return None, None, True
        return remaining, None, False

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        doc["stripe_width"] = self.stripe_width
        return doc


def as_placement(group, config) -> PlacementPolicy:
    """Coerce the log layer's ``group`` argument into a policy.

    Accepts a ready-made :class:`PlacementPolicy`, a
    :class:`StripeGroup` (the original API — wrapped in a
    :class:`StaticPlacement` built from the config's parity and spares,
    preserving behavior bit for bit), or a bare server sequence.
    """
    if isinstance(group, PlacementPolicy):
        return group
    if not isinstance(group, StripeGroup):
        group = StripeGroup(tuple(group))
    return StaticPlacement(group, config.parity_fragments,
                           config.spare_servers)
