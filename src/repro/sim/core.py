"""Discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events. A :class:`Process` wraps a Python generator: every value the
generator yields must be an :class:`Event`; the process suspends until
that event triggers, then resumes with the event's value. This is the
same execution model as SimPy, reimplemented here because the
environment is offline and the kernel needs only a small feature set.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(2.5)
...     return "done at %.1f" % sim.now
>>> proc = sim.process(hello(sim))
>>> sim.run()
>>> proc.value
'done at 2.5'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; exactly once, it either *succeeds* with a
    value or *fails* with an exception. Callbacks registered before the
    trigger run when the simulator dispatches the event; callbacks added
    after the trigger run immediately.
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_dispatched", "value", "exception")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[[Event], None]] = []
        self._triggered = False
        self._dispatched = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self._triggered and self.exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        self.sim._queue_dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event sees the exception raised at its
        ``yield`` statement.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.exception = exception
        self.sim._queue_dispatch(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is dispatched."""
        if self._dispatched:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        if self._dispatched:
            return
        self._dispatched = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % delay)
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self.value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running simulation process.

    Wraps a generator; the process itself is an event that triggers when
    the generator returns (success, value = return value) or raises
    (failure). Processes therefore compose: one process can ``yield``
    another to wait for its completion.
    """

    __slots__ = ("generator", "name")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._triggered = True
        bootstrap.add_callback(self._resume)
        sim._schedule_at(sim.now, bootstrap)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        while True:
            try:
                if event is not None and event.exception is not None:
                    target = self.generator.throw(event.exception)
                else:
                    value = event.value if event is not None else None
                    target = self.generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate into event
                self.fail(exc)
                return
            if not isinstance(target, Event):
                self.fail(SimulationError(
                    "process %r yielded %r, expected an Event"
                    % (self.name, target)))
                return
            if target._dispatched:
                # Already resolved: loop and feed it straight back in,
                # avoiding unbounded recursion through callbacks.
                event = target
                continue
            target.add_callback(self._resume)
            return


class AllOf(Event):
    """Triggers when every child event has triggered.

    Succeeds with the list of child values (in the order given). Fails
    with the first child exception observed.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self.events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self.events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    Succeeds with ``(index, value)`` of the first successful child, or
    fails with the first child exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self.events):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Event) -> None:
        if self._triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
        else:
            self.succeed((index, child.value))


class Simulator:
    """The discrete-event engine: virtual clock plus event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List = []
        self._sequence = 0
        self._dispatch_queue: List[Event] = []
        self._running = False

    # -- scheduling -------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, event))

    def _queue_dispatch(self, event: Event) -> None:
        """Dispatch a just-triggered event at the current time."""
        self._schedule_at(self.now, event)

    # -- public API -------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue is empty or ``until`` is reached.

        Process exceptions that nothing waited on are re-raised here so
        that bugs in simulated code fail tests instead of vanishing.
        """
        self._running = True
        try:
            while self._heap:
                when, _seq, event = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    return
                heapq.heappop(self._heap)
                self.now = when
                had_waiters = bool(event.callbacks)
                event._dispatch()
                if (isinstance(event, Process) and event.exception is not None
                        and not had_waiters):
                    raise event.exception
            if until is not None:
                self.now = until
        finally:
            self._running = False

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Convenience: start ``generator``, run to completion, return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                "process %r never completed (deadlock?)" % proc.name)
        if proc.exception is not None:
            raise proc.exception
        return proc.value
