"""Switched-Ethernet network model.

The prototype's testbed was 100 Mb/s switched Ethernet. The model here
captures what matters for the figures:

* each node has a full-duplex NIC — independent transmit and receive
  channels, each serialized at the link bandwidth;
* the switch is non-blocking (no shared backplane contention), so two
  disjoint node pairs transfer at full rate concurrently;
* every message pays a small fixed latency (propagation + switch
  forwarding) plus per-byte serialization on the sender's TX channel and
  the receiver's RX channel;
* broadcast delivers a copy of the message to every attached node, used
  by fragment reconstruction to locate stripe neighbors without any
  central metadata service.

Messages carry opaque payload objects; ``size_bytes`` drives timing so
the functional payloads need not be serialized for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource, Store


@dataclass(frozen=True)
class NetworkParams:
    """Link characteristics.

    Defaults model the paper's 100 Mb/s switched Ethernet. Bandwidth is
    expressed in bytes/second of goodput; ``per_message_latency`` covers
    propagation plus switch forwarding; ``frame_overhead_fraction``
    accounts for Ethernet/IP/TCP header bytes so that goodput tops out
    below the raw line rate.
    """

    bandwidth_bytes_per_s: float = 100e6 / 8
    per_message_latency_s: float = 100e-6
    frame_overhead_fraction: float = 0.06
    fabric_bandwidth_bytes_per_s: float = 21e6
    """Aggregate forwarding capacity of the switch fabric.

    Calibrated, not nameplate: it folds together the 1999 switch's
    backplane limits and multi-connection TCP contention, which is what
    capped the paper's 4-client/8-server configuration at 19.3 MB/s
    (well below 4 x the single-client rate). Flows only feel it when
    their aggregate approaches this value.
    """

    def wire_time(self, size_bytes: int) -> float:
        """Seconds to serialize ``size_bytes`` through one NIC channel."""
        effective = size_bytes * (1.0 + self.frame_overhead_fraction)
        return effective / self.bandwidth_bytes_per_s


@dataclass
class Message:
    """A network message between two simulated nodes."""

    source: str
    destination: str
    payload: Any
    size_bytes: int
    reply_to: Any = None
    kind: str = "request"
    trace: Dict[str, float] = field(default_factory=dict)


class Nic:
    """A full-duplex network interface attached to one node."""

    def __init__(self, sim: Simulator, node_id: str, params: NetworkParams) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.tx = Resource(sim, 1, name="%s.tx" % node_id)
        self.rx = Resource(sim, 1, name="%s.rx" % node_id)
        self.inbox: Store = Store(sim, name="%s.inbox" % node_id)
        self.bytes_sent = 0
        self.bytes_received = 0


class Switch:
    """A non-blocking switch connecting named nodes.

    Use :meth:`attach` to register a node and get its NIC; a node process
    sends with ``yield switch.send(msg)`` (returns when the message has
    been fully delivered to the destination inbox) or fire-and-forget via
    :meth:`post`.
    """

    def __init__(self, sim: Simulator, params: NetworkParams = NetworkParams()) -> None:
        self.sim = sim
        self.params = params
        self.nics: Dict[str, Nic] = {}
        self.fabric = Resource(sim, 1, name="switch.fabric")

    def attach(self, node_id: str) -> Nic:
        """Register ``node_id`` on the switch and return its NIC."""
        if node_id in self.nics:
            raise SimulationError("node %r already attached" % node_id)
        nic = Nic(self.sim, node_id, self.params)
        self.nics[node_id] = nic
        return nic

    def detach(self, node_id: str) -> None:
        """Remove a node (e.g. crashed server) from the network."""
        self.nics.pop(node_id, None)

    def node_ids(self) -> List[str]:
        """All currently attached node ids."""
        return list(self.nics)

    # -- transfer mechanics -------------------------------------------------

    def _transfer(self, message: Message) -> Generator[Event, Any, None]:
        """Process: move ``message`` from source NIC to destination inbox."""
        sender = self.nics.get(message.source)
        if sender is None:
            raise SimulationError("unknown sender %r" % message.source)
        wire = self.params.wire_time(message.size_bytes)
        # Serialize on the sender's transmit channel.
        yield sender.tx.request()
        try:
            yield self.sim.timeout(wire)
        finally:
            sender.tx.release()
        sender.bytes_sent += message.size_bytes
        # Shared switch fabric, then propagation + forwarding latency.
        yield from self.fabric.use(
            message.size_bytes / self.params.fabric_bandwidth_bytes_per_s)
        yield self.sim.timeout(self.params.per_message_latency_s)
        receiver = self.nics.get(message.destination)
        if receiver is None:
            # Destination crashed mid-flight: the message is dropped.
            # Callers time out / see unavailability at the RPC layer.
            return
        # Serialize on the receiver's receive channel.
        yield receiver.rx.request()
        try:
            yield self.sim.timeout(wire)
        finally:
            receiver.rx.release()
        receiver.bytes_received += message.size_bytes
        receiver.inbox.put(message)

    def send(self, message: Message) -> Event:
        """Start delivering ``message``; the returned event triggers when
        it has been placed in the destination inbox (or dropped)."""
        return self.sim.process(self._transfer(message),
                                name="xfer %s->%s" % (message.source,
                                                      message.destination))

    def post(self, message: Message) -> None:
        """Fire-and-forget variant of :meth:`send`."""
        self.send(message)

    def broadcast(self, source: str, payload: Any, size_bytes: int,
                  kind: str = "broadcast") -> Event:
        """Deliver a copy of ``payload`` to every other attached node.

        Returns an event that triggers when all copies are delivered.
        Modeled as a unicast to each destination (a switched network
        replicates broadcast frames per port; the sender also pays per
        copy here, a conservative approximation that only affects the
        rare reconstruction path).
        """
        deliveries = []
        for node_id in list(self.nics):
            if node_id == source:
                continue
            deliveries.append(self.send(Message(
                source=source, destination=node_id, payload=payload,
                size_bytes=size_bytes, kind=kind)))
        return self.sim.all_of(deliveries)
