"""Disk timing model.

The prototype's servers used one Quantum Viking II SCSI disk dedicated
to log fragments; the paper reports that the server writes fragment-
sized (1 MB) blocks at 10.3 MB/s, which it calls the upper bound on
server performance. A late-90s 7200 RPM SCSI disk had roughly:

* average seek ~8 ms, single-track seek ~1 ms,
* rotational latency ~4.17 ms average (7200 RPM),
* media transfer rate just above 10 MB/s on outer tracks.

The model charges seek + rotation per *positioning* operation and
per-byte transfer time, with sequential accesses paying only the
transfer. The default parameters are calibrated so a sequential 1 MB
write costs ~97 µs/KB ⇒ 10.3 MB/s, matching the paper's stated bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class DiskParams:
    """Mechanical characteristics of the simulated disk."""

    media_bandwidth_bytes_per_s: float = 10.6e6
    average_seek_s: float = 0.008
    track_to_track_seek_s: float = 0.001
    average_rotation_s: float = 0.00417  # half a revolution at 7200 RPM
    per_request_overhead_s: float = 0.0003  # controller + SCSI command


class DiskModel:
    """Pure timing arithmetic for one disk (no simulator required)."""

    def __init__(self, params: DiskParams = DiskParams()) -> None:
        self.params = params

    def access_time(self, size_bytes: int, sequential: bool = True,
                    nearby: bool = False) -> float:
        """Seconds to service one request.

        ``sequential`` requests pay no positioning cost (the head is
        already there); ``nearby`` requests pay a track-to-track seek
        plus rotation; everything else pays an average seek plus
        rotation. All requests pay controller overhead and transfer time.
        """
        p = self.params
        time = p.per_request_overhead_s
        if not sequential:
            seek = p.track_to_track_seek_s if nearby else p.average_seek_s
            time += seek + p.average_rotation_s
        time += size_bytes / p.media_bandwidth_bytes_per_s
        return time

    def sequential_bandwidth(self, request_bytes: int) -> float:
        """Steady-state bytes/second for back-to-back sequential requests."""
        return request_bytes / self.access_time(request_bytes, sequential=True)


class SimDisk:
    """A disk attached to the simulator: one arm, FIFO service.

    Tracks the last accessed position so that consecutive accesses to
    adjacent slots are charged as sequential.
    """

    def __init__(self, sim: Simulator, name: str = "disk",
                 params: DiskParams = DiskParams()) -> None:
        self.sim = sim
        self.name = name
        self.model = DiskModel(params)
        self.arm = Resource(sim, 1, name="%s.arm" % name)
        self._last_position: float = -1.0
        self.bytes_written = 0
        self.bytes_read = 0
        self.requests = 0

    def access(self, size_bytes: int, position: float, write: bool = True,
               ) -> Generator[Event, Any, None]:
        """Process generator: perform one disk request.

        ``position`` is an abstract linear disk coordinate (slot index
        works fine); it exists only to decide whether the request is
        sequential with its predecessor.
        """
        yield self.arm.request()
        try:
            # Small forward skips (metadata interleaved with blocks)
            # still count as sequential: track-buffer read-ahead and the
            # drive's write coalescing absorb them.
            sequential = (self._last_position >= 0
                          and -1e-9 <= position - self._last_position < 0.05)
            nearby = (self._last_position >= 0
                      and abs(position - self._last_position) <= 1.0)
            service = self.model.access_time(size_bytes, sequential=sequential,
                                             nearby=nearby)
            yield self.sim.timeout(service)
            self._last_position = position + size_bytes / (1 << 20)
            self.requests += 1
            if write:
                self.bytes_written += size_bytes
            else:
                self.bytes_read += size_bytes
        finally:
            self.arm.release()

    def positioned_access(self, size_bytes: int, position: float,
                          write: bool = True) -> Generator[Event, Any, None]:
        """Like :meth:`access`, but classifies sequentiality while the
        arm is held, so interleaved requests see realistic seeks."""
        yield from self.access(size_bytes, position, write)

    def busy(self, seconds: float) -> Generator[Event, Any, None]:
        """Occupy the disk arm for a precomputed service time."""
        if seconds <= 0:
            return
        yield self.arm.request()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.arm.release()

    def utilization(self) -> float:
        """Fraction of simulated time the disk arm was busy."""
        return self.arm.utilization()
