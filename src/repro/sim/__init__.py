"""Discrete-event simulation substrate.

The paper's evaluation ran on a 1999 testbed: 200 MHz Pentium Pro
machines with 128 MB of RAM, 100 Mb/s switched Ethernet, and Quantum
Viking II SCSI disks that write 1 MB fragments at 10.3 MB/s. That
hardware is not available, so benchmarks run the *functional* Swarm code
inside a discrete-event simulation whose network, disk, and CPU models
are calibrated to those rates. The figures' shapes — which resource
saturates first, and where — are reproduced by construction.

The kernel is a small SimPy-style engine: processes are Python
generators that ``yield`` events; resources serialize access to NICs,
disks, and CPUs.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.network import Message, NetworkParams, Nic, Switch
from repro.sim.disk import DiskModel, DiskParams, SimDisk
from repro.sim.cpu import CpuModel, CpuParams, SimCpu
from repro.sim.stats import UtilizationTracker

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "Message",
    "NetworkParams",
    "Nic",
    "Switch",
    "DiskModel",
    "DiskParams",
    "SimDisk",
    "CpuModel",
    "CpuParams",
    "SimCpu",
    "UtilizationTracker",
]
