"""Measurement helpers for simulated experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class UtilizationTracker:
    """Accumulates named busy intervals and reports utilization.

    Used for figure 5's CPU-utilization comparison (Sting 93 % vs
    ext2fs 57 %): components report how long they kept the CPU busy,
    and the tracker divides by elapsed time.
    """

    def __init__(self) -> None:
        self._busy: Dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` of busy time for component ``name``."""
        self._busy[name] = self._busy.get(name, 0.0) + seconds

    def busy(self, name: str) -> float:
        """Total busy seconds recorded for ``name``."""
        return self._busy.get(name, 0.0)

    def utilization(self, name: str, elapsed: float) -> float:
        """Busy fraction of ``name`` over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy.get(name, 0.0) / elapsed)


@dataclass
class BandwidthSample:
    """One measured point of a bandwidth sweep."""

    clients: int
    servers: int
    bytes_moved: int
    elapsed_s: float

    @property
    def mb_per_s(self) -> float:
        """Bandwidth in decimal megabytes per second (as in the paper)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed_s / 1e6


@dataclass
class SweepResult:
    """A full sweep (one figure line): samples keyed by server count."""

    label: str
    samples: List[BandwidthSample] = field(default_factory=list)

    def add(self, sample: BandwidthSample) -> None:
        """Append one measured point."""
        self.samples.append(sample)

    def series(self) -> List[tuple]:
        """Return ``[(servers, MB/s), ...]`` sorted by server count."""
        return sorted((s.servers, s.mb_per_s) for s in self.samples)
