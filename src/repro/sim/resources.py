"""Shared-resource primitives for the simulation kernel.

:class:`Resource` models mutual exclusion with FIFO queueing (a NIC, a
disk arm, a CPU). :class:`Store` models a producer/consumer queue of
items (a server's inbox of requests). Both are built purely on
:class:`~repro.sim.core.Event`, so processes interact with them with
ordinary ``yield`` statements.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.core import Event, Simulator


class Resource:
    """A counted resource with FIFO request queueing.

    ``capacity`` concurrent holders are allowed (1 = mutex). A process
    acquires the resource by yielding :meth:`request` and must later call
    :meth:`release` exactly once per successful request.

    The common pattern of "hold the resource for a fixed service time" is
    packaged as :meth:`use`, which is itself a process generator::

        yield sim.process(nic_resource.use(transfer_time))
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Accounting for utilization reports.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        """Number of holders right now."""
        return self._in_use

    def request(self) -> Event:
        """Return an event that succeeds once the resource is granted."""
        grant = Event(self.sim)
        if self._in_use < self.capacity:
            self._grant(grant)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release one unit; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeError("release without matching request on %r" % self.name)
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, grant: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        grant.succeed(self)

    def use(self, hold_time: float) -> Generator[Event, Any, None]:
        """Process generator: acquire, hold for ``hold_time``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(hold_time)
        finally:
            self.release()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy.

        ``elapsed`` defaults to the current simulation time; pass the
        duration of the measured interval when the resource was created
        mid-run.
        """
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        total = self.sim.now if elapsed is None else elapsed
        if total <= 0:
            return 0.0
        return min(1.0, busy / total)


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks (servers accept all incoming requests and queue
    them); ``get`` returns an event that succeeds with the next item.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add ``item``; hands it directly to the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
