"""CPU cost model for 200 MHz Pentium Pro-class machines.

The paper's single-client raw write bandwidth is 6.1 MB/s — well under
both the 12.5 MB/s network and the 10.3 MB/s disk — so the client CPU
is the first bottleneck, exactly as the authors state ("this nearly
saturates the client"). Reproducing the figures' shape therefore
requires charging realistic CPU time for the work a Swarm client does
per byte and per operation:

* copying data into log fragments (memcpy on a ~528 MB/s memory bus,
  but with user-level TCP/IP protocol work the effective per-byte cost
  is far higher),
* XOR parity accumulation (read-modify-write over two streams),
* per-block log bookkeeping and per-RPC protocol overhead.

The default constants were fitted (see ``repro.bench.calibrate``) so a
single client writing 4 KB blocks through the full log layer sustains
≈6 MB/s raw, and the server-side per-fragment handling lets one server
sustain ≈7.7 MB/s under offered load from several clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class CpuParams:
    """Per-byte and per-operation CPU costs, in seconds.

    ``copy_per_byte`` covers moving application data into the log
    (memcpy + cache misses); ``xor_per_byte`` covers parity
    accumulation; ``network_per_byte`` covers TCP/IP protocol
    processing, paid for every byte sent or received; the per-op
    constants cover fixed log bookkeeping and RPC dispatch.
    """

    copy_per_byte: float = 15e-9
    xor_per_byte: float = 12e-9
    network_per_byte: float = 130e-9
    per_block_overhead_s: float = 25e-6
    per_rpc_overhead_s: float = 300e-6
    server_per_request_s: float = 400e-6
    server_per_byte: float = 28e-9


class CpuModel:
    """Pure cost arithmetic (usable without a simulator)."""

    def __init__(self, params: CpuParams = CpuParams()) -> None:
        self.params = params

    def copy_cost(self, nbytes: int) -> float:
        """Cost of appending ``nbytes`` of application data to the log."""
        return nbytes * self.params.copy_per_byte

    def xor_cost(self, nbytes: int) -> float:
        """Cost of XOR-ing ``nbytes`` into a parity accumulator."""
        return nbytes * self.params.xor_per_byte

    def send_cost(self, nbytes: int) -> float:
        """Client protocol cost of transmitting ``nbytes``."""
        return self.params.per_rpc_overhead_s + nbytes * self.params.network_per_byte

    def receive_cost(self, nbytes: int) -> float:
        """Client protocol cost of receiving ``nbytes``."""
        return self.params.per_rpc_overhead_s + nbytes * self.params.network_per_byte

    def server_request_cost(self, nbytes: int) -> float:
        """Server-side cost of handling a request carrying ``nbytes``."""
        return self.params.server_per_request_s + nbytes * self.params.server_per_byte


class SimCpu:
    """A single simulated CPU: one core, FIFO, utilization-tracked.

    Simulated node code charges computation with::

        yield from cpu.compute(model.copy_cost(len(data)))
    """

    def __init__(self, sim: Simulator, name: str = "cpu",
                 params: CpuParams = CpuParams()) -> None:
        self.sim = sim
        self.name = name
        self.model = CpuModel(params)
        self.core = Resource(sim, 1, name="%s.core" % name)

    def compute(self, seconds: float) -> Generator[Event, Any, None]:
        """Process generator: occupy the CPU for ``seconds``."""
        if seconds <= 0:
            return
        yield self.core.request()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.core.release()

    def utilization(self, elapsed: float = None) -> float:
        """Fraction of time the CPU was busy."""
        return self.core.utilization(elapsed)
